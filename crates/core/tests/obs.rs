//! End-to-end observability contract over the committed ingest corpus:
//! a shared registry observed across pipeline runs only ever grows
//! (mid-stream snapshots are prefixes of later ones), deterministic
//! snapshots are byte-identical across identical runs, and instrumented
//! runs produce the exact same clustering as unobserved ones.

use netclust_core::IngestPipeline;
use netclust_obs::Obs;
use netclust_rtable::{MergedTable, RoutingTable, TableKind};

const LOG: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/ingest_sample.clf"
));
const BGP: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/ingest_sample.bgp"
));
const DUMP: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/ingest_sample.dump"
));

fn merged() -> MergedTable {
    let (bgp, _) = RoutingTable::parse("oregon", "d0", TableKind::Bgp, BGP);
    let (dump, _) = RoutingTable::parse("arin", "d0", TableKind::NetworkDump, DUMP);
    MergedTable::merge([&bgp, &dump])
}

#[test]
fn mid_stream_snapshot_is_prefix_of_final_report() {
    // The pipeline is observed through a long-lived registry; snapshots
    // taken between runs stand in for snapshots taken mid-`run` by a
    // concurrent scraper: every later report must extend every earlier
    // one (counters only grow, no key ever disappears).
    let obs = Obs::enabled();
    let mut table = merged().compile();
    table.attach_obs(&obs);

    let empty = obs.snapshot(true);
    let mut snaps = vec![empty];
    for _ in 0..3 {
        IngestPipeline::new(&table)
            .obs(obs.clone())
            .run(LOG.as_bytes());
        snaps.push(obs.snapshot(true));
    }
    for pair in snaps.windows(2) {
        assert!(
            pair[0].is_prefix_of(&pair[1]),
            "snapshot stopped being a prefix:\n{}\nvs\n{}",
            pair[0].to_json(),
            pair[1].to_json()
        );
    }
    // Prefix is transitive down the whole chain, including from empty.
    assert!(snaps[0].is_prefix_of(snaps.last().unwrap()));

    // And the relation is a real check, not a tautology: a later snapshot
    // is NOT a prefix of an earlier one once counters moved.
    assert!(!snaps[3].is_prefix_of(&snaps[1]));
}

#[test]
fn deterministic_snapshots_are_byte_identical_across_runs() {
    let run = || {
        let obs = Obs::enabled();
        let mut table = merged().compile();
        table.attach_obs(&obs);
        let report = IngestPipeline::new(&table)
            .obs(obs.clone())
            .run(LOG.as_bytes());
        (obs.snapshot(true).to_json(), report)
    };
    let (a, report_a) = run();
    let (b, report_b) = run();
    assert_eq!(a, b, "deterministic OBS.json differed between runs");
    assert_eq!(report_a.counts, report_b.counts);

    // The deterministic snapshot still carries the data-derived facts.
    assert!(a.contains("\"ingest.lines\""));
    assert!(a.contains("\"ingest.chunk_bytes\""));
    assert!(a.contains("\"ingest.run\""));
    assert!(a.contains("\"lpm.lookups\""));

    // ...with every clock-derived span field zeroed.
    let obs = Obs::enabled();
    let mut table = merged().compile();
    table.attach_obs(&obs);
    IngestPipeline::new(&table)
        .obs(obs.clone())
        .run(LOG.as_bytes());
    for (path, sp) in &obs.snapshot(true).spans {
        assert_eq!((sp.total_ns, sp.min_ns, sp.max_ns), (0, 0, 0), "{path}");
        assert!(sp.count > 0, "{path}");
    }
}

#[test]
fn observation_is_passive() {
    // An instrumented run must produce the identical report to a bare one.
    let table = merged().compile();
    let bare = IngestPipeline::new(&table).run(LOG.as_bytes());

    let obs = Obs::enabled();
    let mut observed_table = merged().compile();
    observed_table.attach_obs(&obs);
    let observed = IngestPipeline::new(&observed_table)
        .obs(obs.clone())
        .run(LOG.as_bytes());

    assert_eq!(bare.counts, observed.counts);
    assert_eq!(bare.errors, observed.errors);
    assert_eq!(
        bare.clustering.total_requests,
        observed.clustering.total_requests
    );
    assert_eq!(bare.clustering.len(), observed.clustering.len());

    // The registry agrees with the report on the data-derived totals.
    let snap = obs.snapshot(true);
    assert_eq!(
        snap.counters.get("ingest.lines").copied(),
        Some(observed.counts.records)
    );
    assert_eq!(
        snap.counters.get("ingest.malformed").copied(),
        Some(observed.counts.malformed)
    );
}
