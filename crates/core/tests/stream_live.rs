//! Live-update integration tests for the streaming clustering: an 8-seed
//! fault sweep over [`failpoints::TABLE_PATCH`] proving every injected
//! mid-patch death leaves the old generation serving untouched, and a
//! multi-threaded reader test proving [`StreamHandle`] lookups proceed —
//! never blocking, never observing a torn table — while the owner applies
//! 1,000 delta batches under epoch-based reclamation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use netclust_bgpsim::{DeltaStream, DeltaStreamConfig};
use netclust_core::{failpoints, FaultPlan, StreamingClustering, SwapRejection};
use netclust_netgen::{standard_merged, Universe, UniverseConfig};
use netclust_obs::Obs;
use netclust_prefix::Ipv4Net;
use netclust_rtable::{MergedTable, RoutingTable, TableDelta, TableKind};
use netclust_weblog::{generate, LogSpec};

fn setup() -> (Universe, netclust_weblog::Log) {
    let u = Universe::generate(UniverseConfig::small(7));
    let mut spec = LogSpec::tiny("live", 13);
    spec.total_requests = 6_000;
    spec.target_clients = 250;
    let log = generate(&u, &spec);
    (u, log)
}

/// Deterministic probe addresses without ambient randomness: an LCG walk
/// plus the boundary addresses of every prefix in `nets`.
fn probes(nets: &[Ipv4Net]) -> Vec<u32> {
    let mut v = Vec::with_capacity(nets.len() * 2 + 64);
    let mut x = 0x2545_F491u32;
    for _ in 0..64 {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        v.push(x);
    }
    for n in nets {
        v.push(n.addr_u32());
        v.push(n.addr_u32() | !n.netmask_u32());
    }
    v
}

/// 8-seed sweep: drive a faulted stream and a fault-free mirror with the
/// same accepted batches; every `table.patch` trip must reject the batch
/// and leave version, view, and lookups untouched, and the survivor
/// lineage must equal the mirror's exactly.
#[test]
fn fault_sweep_rollback_leaves_old_generation_intact() {
    const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 0xBEEF, 0xFA17];
    let (u, log) = setup();
    for &seed in &SEEDS {
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        let mut mirror = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
            mirror.push(r);
        }
        let mut faults = FaultPlan::new(seed)
            .with(failpoints::TABLE_PATCH, 0.3)
            .injector();
        let mut feed = DeltaStream::new(
            seed,
            standard_merged(&u, 0).bgp_prefixes(),
            DeltaStreamConfig::default(),
        );
        let mut accepted_batches: Vec<Vec<TableDelta>> = Vec::new();
        for _ in 0..60 {
            let batch = feed.next_batch();
            let version_before = stream.table_version();
            let view_before = stream.top_k(usize::MAX);
            let coverage_before = stream.coverage();
            let report = stream.apply_deltas_with(&batch.deltas, &mut faults);
            if report.accepted {
                if !batch.deltas.is_empty() {
                    accepted_batches.push(batch.deltas.clone());
                }
            } else {
                // Rollback: the rejected candidate (faulted or gated) was
                // discarded without touching the serving generation.
                assert_eq!(stream.table_version(), version_before, "seed {seed}");
                assert_eq!(stream.top_k(usize::MAX), view_before, "seed {seed}");
                assert!((stream.coverage() - coverage_before).abs() < 1e-12);
                if report.rejection == Some(SwapRejection::PatchFault) {
                    assert!(faults.fired(failpoints::TABLE_PATCH) > 0);
                }
            }
        }
        // 60 draws at p=0.3 make a silent sweep astronomically unlikely —
        // a zero here means the failpoint came unwired.
        assert!(
            faults.fired(failpoints::TABLE_PATCH) >= 1,
            "seed {seed}: table.patch never fired"
        );
        assert!(stream.patch_stats().rejected >= faults.fired(failpoints::TABLE_PATCH));

        // The fault-free mirror accepts the same lineage and converges to
        // the identical view and serving table.
        for deltas in &accepted_batches {
            let r = mirror.apply_deltas(deltas);
            assert!(r.accepted, "seed {seed}: mirror rejected {:?}", r.rejection);
        }
        assert_eq!(
            stream.table_version(),
            mirror.table_version(),
            "seed {seed}"
        );
        assert_eq!(
            stream.top_k(usize::MAX),
            mirror.top_k(usize::MAX),
            "seed {seed}"
        );
        assert!((stream.coverage() - mirror.coverage()).abs() < 1e-12);
        let (h, hm) = (stream.handle(), mirror.handle());
        for addr in probes(&standard_merged(&u, 0).bgp_prefixes()) {
            assert_eq!(h.net_for_u32(addr), hm.net_for_u32(addr), "seed {seed}");
        }
    }
}

/// Acceptance criterion: reader threads keep resolving lookups — wait-free,
/// no torn reads — while the owner applies 1,000 patch batches, with epoch
/// reclamation bounding retired generations the whole way.
#[test]
fn readers_proceed_while_writer_applies_1k_batches() {
    // A churn pool the feed mutates freely, plus a canary prefix the feed
    // never touches: any lookup that sees a torn or half-patched table
    // would misresolve the canary or return a non-covering prefix.
    let canary: Ipv4Net = "203.0.113.0/24".parse().unwrap();
    let canary_probe = canary.addr_u32() | 0x4D;
    let mut feed = DeltaStream::synthetic(
        0xFEED,
        2_000,
        DeltaStreamConfig {
            mean_batch_size: 4,
            reset_period: 0,
            ..DeltaStreamConfig::default()
        },
    );
    let mut prefixes = feed.live_prefixes();
    prefixes.push(canary);
    let bgp = RoutingTable::new("live", "d0", TableKind::Bgp, prefixes);
    let obs = Obs::enabled();
    let mut stream = StreamingClustering::builder(MergedTable::merge([&bgp]))
        .obs(obs.clone())
        .build();
    // All clients live under the canary, so churn in the pool can never
    // collapse coverage and every batch passes the gates.
    let mut clf = String::new();
    for host in 1..=20u32 {
        clf.push_str(&format!(
            "203.0.113.{host} - - [13/Feb/1998:07:00:00 +0000] \"GET /x HTTP/1.0\" 200 100\n"
        ));
    }
    assert!(stream.push_clf(clf.as_bytes()).is_empty());
    assert_eq!(stream.coverage(), 1.0);

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let h = stream.handle();
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut iterations = 0u64;
            let mut last_version = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // The canary always resolves to a prefix covering it (the
                // canary itself, or a longer match the feed announced).
                let net = h
                    .net_for_u32(canary_probe)
                    .expect("canary probe must always resolve");
                assert!(net.contains_u32(canary_probe), "torn read: {net}");
                // Versions observed through the handle never go backwards.
                let v = h.version();
                assert!(v >= last_version, "version regressed {last_version}->{v}");
                last_version = v;
                // Churn-pool probes either miss or resolve to a covering
                // prefix — a torn table would violate containment.
                let addr = 0x0A00_0000u32.wrapping_add((iterations as u32).wrapping_mul(8_191));
                if let Some(net) = h.net_for_u32(addr) {
                    assert!(net.contains_u32(addr), "torn read: {net} for {addr:#x}");
                }
                iterations += 1;
            }
            (iterations, last_version)
        }));
    }

    let mut accepted = 0u64;
    for _ in 0..1_000 {
        let batch = feed.next_batch();
        let report = stream.apply_deltas(&batch.deltas);
        assert!(report.accepted, "rejected: {:?}", report.rejection);
        if !batch.deltas.is_empty() {
            accepted += 1;
        }
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_reads = 0u64;
    for r in readers {
        let (iterations, last_version) = r.join().expect("reader thread panicked");
        total_reads += iterations;
        assert!(last_version <= stream.table_version());
    }
    assert!(total_reads > 0, "readers never made progress");
    assert_eq!(stream.table_version(), accepted);
    assert_eq!(stream.patch_stats().accepted, accepted);

    // Epoch reclamation kept the retired list bounded (steady state is one
    // recycling spare, transiently more while a reader pins an old epoch).
    let snap = obs.snapshot(true);
    let retired = snap
        .gauges
        .get("stream.epoch.retired")
        .copied()
        .unwrap_or(0);
    assert!(retired <= 8, "retired generations unbounded: {retired}");
    // The canary survives the entire run in the serving table.
    let h = stream.handle();
    assert!(h.net_for_u32(canary_probe).is_some());
}
