//! Property-based tests on clustering invariants.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use netclust_core::{cdf, cdf_at, threshold_busy, Clustering, Distributions, Summary};
use netclust_prefix::Ipv4Net;
use netclust_weblog::{Log, LogTruth, Request, UrlMeta};
use proptest::prelude::*;

/// Builds a log from arbitrary (client, url, time) triples.
fn log_from(reqs: &[(u32, u8, u16)]) -> Log {
    let mut requests: Vec<Request> = reqs
        .iter()
        .map(|&(client, url, time)| Request {
            time: time as u32,
            client,
            url: url as u32,
            bytes: 100 + url as u32,
            status: 200,
            ua: 0,
        })
        .collect();
    requests.sort_by_key(|r| r.time);
    Log {
        name: "prop".into(),
        requests,
        urls: (0..=255)
            .map(|i| UrlMeta {
                path: format!("/{i}"),
                size: 100 + i,
            })
            .collect(),
        user_agents: vec!["UA".into()],
        start_time: 0,
        duration_s: u16::MAX as u32,
        truth: LogTruth::default(),
    }
}

fn arb_reqs() -> impl Strategy<Value = Vec<(u32, u8, u16)>> {
    proptest::collection::vec((any::<u32>(), any::<u8>(), any::<u16>()), 1..300)
}

proptest! {
    /// Clustering is a partition: every client lands in exactly one
    /// cluster (or unclustered), and aggregates add up to log totals.
    #[test]
    fn clustering_partitions_clients(reqs in arb_reqs(), modulus in 1u32..5) {
        let log = log_from(&reqs);
        // An arbitrary assigner: cluster by client % modulus, with one
        // residue class unclusterable.
        let clustering = Clustering::build(&log, "prop", |addr| {
            let r = u32::from(addr) % (modulus + 1);
            if r == modulus {
                None
            } else {
                Some(Ipv4Net::new(r << 8, 24).unwrap())
            }
        });
        // Client partition.
        let mut seen: BTreeSet<Ipv4Addr> = BTreeSet::new();
        for cluster in &clustering.clusters {
            prop_assert!(!cluster.clients.is_empty(), "no empty clusters");
            for c in &cluster.clients {
                prop_assert!(seen.insert(c.addr), "client {} in two clusters", c.addr);
            }
        }
        for c in &clustering.unclustered {
            prop_assert!(seen.insert(c.addr), "unclustered client duplicated");
        }
        let expected: BTreeSet<Ipv4Addr> =
            log.requests.iter().map(|r| r.client_addr()).collect();
        prop_assert_eq!(seen, expected);
        // Request and byte conservation.
        let req_total: u64 = clustering.clusters.iter().map(|c| c.requests).sum::<u64>()
            + clustering.unclustered.iter().map(|c| c.requests).sum::<u64>();
        prop_assert_eq!(req_total, log.requests.len() as u64);
        let byte_total: u64 = clustering.clusters.iter().map(|c| c.bytes).sum::<u64>()
            + clustering.unclustered.iter().map(|c| c.bytes).sum::<u64>();
        prop_assert_eq!(byte_total, log.total_bytes());
        // unique_urls bounded by requests and by the URL space.
        for cluster in &clustering.clusters {
            prop_assert!(cluster.unique_urls as u64 <= cluster.requests);
            prop_assert!(cluster.unique_urls <= 256);
        }
    }

    /// simple24 never produces more clusters than clients and never fewer
    /// than ceil(clients / 256); classful clusters are coarser or equal.
    #[test]
    fn method_granularity_bounds(reqs in arb_reqs()) {
        let log = log_from(&reqs);
        let clients = log.client_count();
        let simple = Clustering::simple24(&log);
        prop_assert!(simple.len() <= clients);
        prop_assert!(simple.len() >= clients.div_ceil(256));
        let classful = Clustering::classful(&log);
        // Every classful cluster (A/B/C) covers whole /24s, so it cannot
        // outnumber the /24 clustering plus unclustered D/E space.
        prop_assert!(classful.len() <= simple.len());
    }

    /// Thresholding: busy set is minimal-by-construction and covers the
    /// target fraction.
    #[test]
    fn threshold_covers_fraction(reqs in arb_reqs(), pct in 1u32..=100) {
        let log = log_from(&reqs);
        let clustering = Clustering::simple24(&log);
        let fraction = pct as f64 / 100.0;
        let report = threshold_busy(&clustering, fraction);
        let total: u64 = clustering.clusters.iter().map(|c| c.requests).sum();
        let target = (total as f64 * fraction).ceil() as u64;
        prop_assert!(report.busy_requests >= target.min(total));
        // Minimality: removing the last (smallest) busy cluster drops
        // below the target.
        if !report.busy.is_empty() {
            prop_assert!(report.busy_requests - report.threshold < target);
        }
        // Ranges are consistent.
        let (lo, hi) = report.busy_request_range;
        prop_assert!(lo <= hi);
        prop_assert_eq!(report.threshold, lo);
    }

    /// Distribution series and orderings are consistent with the clusters.
    #[test]
    fn distributions_are_consistent(reqs in arb_reqs()) {
        let log = log_from(&reqs);
        let clustering = Clustering::simple24(&log);
        let d = Distributions::of(&clustering);
        prop_assert_eq!(d.clients.len(), clustering.len());
        // Orderings are permutations.
        let mut a = d.by_clients.clone();
        a.sort_unstable();
        prop_assert_eq!(&a, &(0..clustering.len()).collect::<Vec<_>>());
        let mut b = d.by_requests.clone();
        b.sort_unstable();
        prop_assert_eq!(&b, &(0..clustering.len()).collect::<Vec<_>>());
        // Reordered series are non-increasing.
        let by_c = Distributions::series_in(&d.clients, &d.by_clients);
        prop_assert!(by_c.windows(2).all(|w| w[0] >= w[1]));
        let by_r = Distributions::series_in(&d.requests, &d.by_requests);
        prop_assert!(by_r.windows(2).all(|w| w[0] >= w[1]));
        // Summary totals match.
        if let Some(s) = Summary::of(&d.requests) {
            prop_assert_eq!(s.total, clustering.clusters.iter().map(|c| c.requests).sum::<u64>());
            prop_assert!(s.min <= s.max);
        }
    }

    /// The CDF is a valid distribution function: non-decreasing, ends at
    /// 1.0, and cdf_at brackets every value correctly.
    #[test]
    fn cdf_is_valid(values in proptest::collection::vec(0u64..1000, 1..200)) {
        let points = cdf(&values);
        prop_assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
        prop_assert!(points.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        for &v in &values {
            let frac = cdf_at(&points, v);
            let expect = values.iter().filter(|&&x| x <= v).count() as f64
                / values.len() as f64;
            prop_assert!((frac - expect).abs() < 1e-12);
        }
    }
}
