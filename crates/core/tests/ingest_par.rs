//! Parallel-ingest determinism properties: the sharded work-stealing
//! scan must produce reports *byte-identical* to the serial reference
//! (`threads(1)`) over random corpora, chunk sizes, and thread counts —
//! including parse errors, quarantine byte ranges, and error counts —
//! and injected `ingest.chunk_io` faults must resolve to the same
//! outcome no matter how many workers the chunks land on.

use netclust_core::{failpoints, FaultPlan, IngestError, IngestPipeline, IngestReport};
use netclust_rtable::{CompiledMerged, MergedTable, RoutingTable, TableKind};
use proptest::prelude::*;

/// A routing table whose prefixes cover some — not all — of the corpus
/// base networks below, so clusterings mix clustered and unclustered
/// clients and both LPM tiers answer.
fn table() -> CompiledMerged {
    let bgp = RoutingTable::new(
        "B",
        "d0",
        TableKind::Bgp,
        vec![
            "10.0.0.0/8".parse().unwrap(),
            "10.1.0.0/16".parse().unwrap(),
            "172.16.0.0/13".parse().unwrap(),
            "192.168.0.0/17".parse().unwrap(),
        ],
    );
    let dump = RoutingTable::new(
        "D",
        "d0",
        TableKind::NetworkDump,
        vec![
            "203.0.0.0/10".parse().unwrap(),
            "12.65.128.0/19".parse().unwrap(),
        ],
    );
    MergedTable::merge([&bgp, &dump]).compile()
}

/// Base /16s the corpus draws client addresses from: mostly inside the
/// table's prefixes, a couple outside (unclustered), spread across the
/// top address bits so multiple merge partitions fill.
const BASES: [u32; 8] = [
    0x0A00_0000, // 10.0/16        → 10/8
    0x0A01_0000, // 10.1/16        → the longer 10.1/16
    0xAC11_0000, // 172.17/16      → 172.16/13
    0xC0A8_0000, // 192.168/16     → 192.168/17 (half covered)
    0xCB00_0000, // 203.0/16       → dump tier
    0x0C41_0000, // 12.65/16       → dump tier (partially)
    0x0808_0000, // 8.8/16         → miss
    0xDEAD_0000, // 222.173/16     → miss
];

/// One corpus line: a client in `BASES[base] | low`, a url, a byte
/// count, or a planted malformed line.
#[derive(Debug, Clone)]
enum Line {
    Request {
        base: u8,
        low: u16,
        url: u8,
        bytes: u16,
    },
    Garbage,
}

fn arb_lines() -> impl Strategy<Value = Vec<Line>> {
    // `pick` folds a ~10% garbage rate into an unweighted tuple draw.
    let line = (0u8..10, 0u8..8, any::<u16>(), any::<u8>(), any::<u16>()).prop_map(
        |(pick, base, low, url, bytes)| {
            if pick == 0 {
                Line::Garbage
            } else {
                Line::Request {
                    base,
                    low,
                    url,
                    bytes,
                }
            }
        },
    );
    proptest::collection::vec(line, 0..400)
}

fn render(lines: &[Line]) -> String {
    let mut out = String::new();
    for l in lines {
        match l {
            Line::Request {
                base,
                low,
                url,
                bytes,
            } => {
                let addr = std::net::Ipv4Addr::from(BASES[*base as usize] | *low as u32);
                out.push_str(&format!(
                    "{addr} - - [13/Feb/1998:07:00:00 +0000] \"GET /u{url} HTTP/1.0\" 200 {bytes}\n"
                ));
            }
            Line::Garbage => out.push_str("### torn line ###\n"),
        }
    }
    out
}

/// Full-report equality, down to per-client stats and quarantine byte
/// ranges: the Debug rendering covers every field of the clustering, so
/// equal strings ⇔ byte-identical reports.
fn assert_reports_identical(got: &IngestReport, want: &IngestReport, data: &[u8], ctx: &str) {
    assert_eq!(got.counts, want.counts, "{ctx}: counts");
    assert_eq!(got.errors, want.errors, "{ctx}: errors");
    assert_eq!(
        got.quarantine(data),
        want.quarantine(data),
        "{ctx}: quarantine"
    );
    assert_eq!(
        format!("{:?}", got.clustering),
        format!("{:?}", want.clustering),
        "{ctx}: clustering"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded scan is byte-identical to the serial reference across
    /// chunk sizes and thread counts, with and without work stealing.
    #[test]
    fn parallel_ingest_matches_serial(
        lines in arb_lines(),
        chunk_bytes in 24usize..2048,
        threads in 2usize..=4,
    ) {
        let table = table();
        let text = render(&lines);
        let data = text.as_bytes();
        let serial = IngestPipeline::new(&table)
            .chunk_bytes(chunk_bytes)
            .threads(1)
            .run(data);
        let stolen = IngestPipeline::new(&table)
            .chunk_bytes(chunk_bytes)
            .threads(threads)
            .run(data);
        assert_reports_identical(&stolen, &serial, data, &format!("stealing t={threads}"));
        // Static strided assignment (the `--deterministic` schedule)
        // must agree with both.
        let strided = IngestPipeline::new(&table)
            .chunk_bytes(chunk_bytes)
            .threads(threads)
            .deterministic(true)
            .run(data);
        assert_reports_identical(&strided, &serial, data, &format!("strided t={threads}"));
    }

    /// Disabling URL stats changes nothing but the unique-URL counts, in
    /// parallel exactly as in serial.
    #[test]
    fn parallel_url_stats_off_matches_serial(
        lines in arb_lines(),
        chunk_bytes in 24usize..1024,
    ) {
        let table = table();
        let text = render(&lines);
        let data = text.as_bytes();
        let serial = IngestPipeline::new(&table)
            .chunk_bytes(chunk_bytes)
            .threads(1)
            .url_stats(false)
            .run(data);
        let parallel = IngestPipeline::new(&table)
            .chunk_bytes(chunk_bytes)
            .threads(3)
            .url_stats(false)
            .run(data);
        assert_reports_identical(&parallel, &serial, data, "url_stats off");
        assert!(parallel.clustering.clusters.iter().all(|c| c.unique_urls == 0));
    }
}

/// Injected `ingest.chunk_io` faults land on whichever worker stole the
/// chunk, yet every seed must resolve to the same outcome as the serial
/// faulted run: recovered seeds byte-identical, exhausted seeds aborting
/// on the same chunk with the same attempt count.
#[test]
fn fault_sweep_is_thread_count_invariant() {
    const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 0xBEEF, 0xFA17];
    let table = table();
    let lines: Vec<Line> = (0..600)
        .map(|i| {
            if i % 37 == 0 {
                Line::Garbage
            } else {
                Line::Request {
                    base: (i % 8) as u8,
                    low: (i * 977 % 65_536) as u16,
                    url: (i % 50) as u8,
                    bytes: (i % 1500) as u16,
                }
            }
        })
        .collect();
    let text = render(&lines);
    let data = text.as_bytes();
    let clean = IngestPipeline::new(&table)
        .chunk_bytes(512)
        .threads(1)
        .run(data);
    let mut recovered = 0usize;
    let mut aborted = 0usize;
    for &seed in &SEEDS {
        let plan = FaultPlan::new(seed).with(failpoints::INGEST_CHUNK_IO, 0.4);
        // ~90 chunks at 0.4 loss: 5 retries puts per-chunk exhaustion at
        // 0.4⁶ ≈ 0.4%, so most seeds recover end to end while a few still
        // exercise the abort path.
        let run = |threads: usize| {
            IngestPipeline::new(&table)
                .chunk_bytes(512)
                .threads(threads)
                .fault_plan(plan.clone())
                .io_retries(5)
                .try_run(data)
        };
        let serial = run(1);
        let parallel = run(3);
        match (serial, parallel) {
            (Ok(s), Ok(p)) => {
                recovered += 1;
                assert!(p.io_faults > 0, "seed={seed}: plan fired nothing");
                assert_eq!(p.io_faults, s.io_faults, "seed={seed}");
                assert_eq!(p.chunks_retried, s.chunks_retried, "seed={seed}");
                assert_reports_identical(&p, &s, data, &format!("seed={seed}"));
                assert_reports_identical(&p, &clean, data, &format!("seed={seed} vs clean"));
            }
            (
                Err(IngestError::ChunkIo {
                    chunk: sc,
                    first_line: sl,
                    attempts: sa,
                }),
                Err(IngestError::ChunkIo {
                    chunk: pc,
                    first_line: pl,
                    attempts: pa,
                }),
            ) => {
                aborted += 1;
                assert_eq!((pc, pl, pa), (sc, sl, sa), "seed={seed}");
                assert_eq!(pa, 6, "seed={seed}");
            }
            (s, p) => panic!(
                "seed={seed}: outcome diverged across thread counts: serial {s:?} vs parallel {p:?}"
            ),
        }
    }
    // The sweep must exercise the recovery path; with 0.4 × 3 attempts
    // most seeds recover, and the keyed schedule makes this stable.
    assert!(recovered > 0, "no seed recovered");
    let _ = aborted;
}
