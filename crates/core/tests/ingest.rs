//! Equivalence of the fused zero-copy ingest pipeline with the classic
//! string-parser route, on the committed synthetic corpus under
//! `results/` (a generated CLF log with hand-planted malformed lines,
//! plus one BGP and one registry table dump).

use netclust_core::{Clustering, IngestPipeline};
use netclust_rtable::{MergedTable, RoutingTable, TableKind};
use netclust_weblog::{clf, clf_bytes};

const LOG: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/ingest_sample.clf"
));
const BGP: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/ingest_sample.bgp"
));
const DUMP: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/ingest_sample.dump"
));

fn merged() -> MergedTable {
    let (bgp, bad_bgp) = RoutingTable::parse("oregon", "d0", TableKind::Bgp, BGP);
    let (dump, bad_dump) = RoutingTable::parse("arin", "d0", TableKind::NetworkDump, DUMP);
    assert_eq!(bad_bgp, 0);
    assert_eq!(bad_dump, 0);
    MergedTable::merge([&bgp, &dump])
}

fn assert_clusterings_equal(got: &Clustering, expect: &Clustering, context: &str) {
    assert_eq!(got.method, expect.method, "{context}");
    assert_eq!(got.total_requests, expect.total_requests, "{context}");
    assert_eq!(got.clusters.len(), expect.clusters.len(), "{context}");
    for (g, e) in got.clusters.iter().zip(&expect.clusters) {
        assert_eq!(g.prefix, e.prefix, "{context}");
        assert_eq!(g.clients, e.clients, "{context} {}", e.prefix);
        assert_eq!(g.requests, e.requests, "{context} {}", e.prefix);
        assert_eq!(g.bytes, e.bytes, "{context} {}", e.prefix);
        assert_eq!(g.unique_urls, e.unique_urls, "{context} {}", e.prefix);
    }
    assert_eq!(got.unclustered, expect.unclustered, "{context}");
}

#[test]
fn byte_parser_log_is_identical_to_string_parser_log() {
    let (string_log, string_errors) = clf::from_clf("sample", LOG);
    let (byte_log, byte_errors) = clf_bytes::from_clf_bytes("sample", LOG.as_bytes());
    assert!(!string_errors.is_empty(), "corpus plants malformed lines");
    assert_eq!(string_errors, byte_errors);
    assert_eq!(string_log.name, byte_log.name);
    assert_eq!(string_log.requests, byte_log.requests);
    assert_eq!(string_log.urls, byte_log.urls);
    assert_eq!(string_log.user_agents, byte_log.user_agents);
    assert_eq!(string_log.start_time, byte_log.start_time);
    assert_eq!(string_log.duration_s, byte_log.duration_s);
}

#[test]
fn fused_pipeline_matches_string_parser_route() {
    let table = merged().compile();
    let (log, log_errors) = clf::from_clf("sample", LOG);
    let expect = Clustering::network_aware_compiled(&log, &table);

    // Full route through the byte-parsed Log too.
    let (byte_log, _) = clf_bytes::from_clf_bytes("sample", LOG.as_bytes());
    let via_bytes = Clustering::network_aware_compiled(&byte_log, &table);
    assert_clusterings_equal(&via_bytes, &expect, "byte-log route");

    // The fused pipeline, across chunk sizes spanning one-line-per-chunk
    // to single-chunk.
    for chunk_bytes in [64usize, 4096, 1 << 20] {
        let report = IngestPipeline::new(&table)
            .chunk_bytes(chunk_bytes)
            .run(LOG.as_bytes());
        assert_clusterings_equal(
            &report.clustering,
            &expect,
            &format!("fused chunk_bytes={chunk_bytes}"),
        );
        assert_eq!(report.errors, log_errors);
        assert_eq!(report.counts.records, LOG.lines().count() as u64);
        assert_eq!(report.counts.malformed, log_errors.len() as u64);
        assert_eq!(report.bytes, LOG.len());
    }
}

#[test]
fn corpus_exercises_real_clustering() {
    let table = merged().compile();
    let report = IngestPipeline::new(&table).run(LOG.as_bytes());
    // The corpus is meaningful: many clusters, high coverage, URL stats.
    assert!(report.clustering.len() > 20, "{}", report.clustering.len());
    assert!(report.clustering.coverage() > 0.9);
    assert!(report
        .clustering
        .clusters
        .iter()
        .any(|c| c.unique_urls > 1 && c.client_count() > 1));
    assert!(report.errors.len() >= 5);
}
