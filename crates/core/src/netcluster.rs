//! Second-level clustering: grouping client clusters into *network
//! clusters* (§3.6).
//!
//! "After identifying client clusters based on the BGP routing table
//! information, we can further cluster nearby client clusters into network
//! clusters. We use traceroute to do the higher level clustering" — run
//! traceroute on `r ≥ 1` random clients per cluster and suffix-match the
//! path *toward* each destination network (i.e. excluding the final
//! organization-gateway hop, so clusters behind the same upstream group
//! together). Useful for selective content distribution, proxy placement
//! and load balancing.

use netclust_netgen::{stream_rng, Universe};
use netclust_probe::Traceroute;
use rand::seq::SliceRandom;
use std::collections::HashMap;

use crate::cluster::Clustering;

/// A group of client clusters sharing upstream network infrastructure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkCluster {
    /// The shared upstream path suffix (router names, joined).
    pub key: String,
    /// Indices into `Clustering::clusters`.
    pub members: Vec<usize>,
    /// Total requests across member clusters.
    pub requests: u64,
    /// Total clients across member clusters.
    pub clients: u64,
}

/// Groups client clusters by the upstream path suffix of `r` sampled
/// clients each. `suffix_len` hops are compared after dropping the final
/// (organization-local) hop; the paper's choice corresponds to
/// `suffix_len = 2`. Clusters whose samples disagree are grouped by their
/// majority suffix.
pub fn network_clusters(
    universe: &Universe,
    clustering: &Clustering,
    r: usize,
    suffix_len: usize,
    seed: u64,
) -> Vec<NetworkCluster> {
    let mut tracer = Traceroute::optimized(universe);
    let mut rng = stream_rng(seed, &[0x2E7]);
    let mut groups: HashMap<String, NetworkCluster> = HashMap::new();
    for (idx, cluster) in clustering.clusters.iter().enumerate() {
        // A memberless cluster has nothing to traceroute; skipping it keeps
        // the empty suffix key from minting a bogus "" network cluster.
        if cluster.clients.is_empty() {
            continue;
        }
        let mut sample: Vec<std::net::Ipv4Addr> = cluster.clients.iter().map(|c| c.addr).collect();
        sample.shuffle(&mut rng);
        sample.truncate(r.max(1));
        // Majority vote over sampled upstream suffixes.
        let mut votes: HashMap<String, usize> = HashMap::new();
        for addr in sample {
            let outcome = tracer.trace(addr);
            let hops = outcome.hops();
            // Drop the final org-gateway hop; suffix-match what remains.
            let upstream = &hops[..hops.len().saturating_sub(1)];
            let start = upstream.len().saturating_sub(suffix_len);
            let key: String = upstream[start..]
                .iter()
                .map(|h| h.name.as_str())
                .collect::<Vec<_>>()
                .join(">");
            *votes.entry(key).or_default() += 1;
        }
        // analyze:allow(determinism) max_by with a total (count, key)
        // tie-break: iteration order cannot change the winner.
        let key = votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(k, _)| k)
            .unwrap_or_default();
        let entry = groups.entry(key.clone()).or_insert(NetworkCluster {
            key,
            members: Vec::new(),
            requests: 0,
            clients: 0,
        });
        entry.members.push(idx);
        entry.requests += cluster.requests;
        entry.clients += cluster.client_count() as u64;
    }
    let mut out: Vec<NetworkCluster> = groups.into_values().collect();
    out.sort_by(|a, b| b.requests.cmp(&a.requests).then(a.key.cmp(&b.key)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::UniverseConfig;
    use netclust_weblog::{generate, LogSpec};

    #[test]
    fn groups_clusters_by_upstream() {
        let u = Universe::generate(UniverseConfig::small(7));
        let log = generate(&u, &LogSpec::tiny("nc", 23));
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        let nets = network_clusters(&u, &clustering, 2, 2, 0xAB);
        // Grouping is a partition of the clusters.
        let total: usize = nets.iter().map(|n| n.members.len()).sum();
        assert_eq!(total, clustering.clusters.len());
        // Second-level clustering is strictly coarser (or equal).
        assert!(nets.len() <= clustering.clusters.len());
        // Orgs of one AS share a border router, so some group must hold
        // several clusters.
        assert!(
            nets.iter().any(|n| n.members.len() > 1),
            "expected at least one multi-cluster group"
        );
        // Sorted by requests descending.
        assert!(nets.windows(2).all(|w| w[0].requests >= w[1].requests));
        // Aggregates add up.
        let req_total: u64 = nets.iter().map(|n| n.requests).sum();
        let expect: u64 = clustering.clusters.iter().map(|c| c.requests).sum();
        assert_eq!(req_total, expect);
    }

    #[test]
    fn same_as_clusters_share_group() {
        let u = Universe::generate(UniverseConfig::small(9));
        let log = generate(&u, &LogSpec::tiny("nc2", 29));
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        let nets = network_clusters(&u, &clustering, 1, 2, 0xCD);
        // For every group with >1 member, all pure members' orgs must share
        // an AS (their upstream border router is per-AS).
        for group in nets.iter().filter(|g| g.members.len() > 1) {
            let ases: std::collections::BTreeSet<u32> = group
                .members
                .iter()
                .filter_map(|&i| u.owner(clustering.clusters[i].clients[0].addr))
                .map(|org| u.org(org).as_id)
                .collect();
            assert_eq!(ases.len(), 1, "group {} spans ASes {ases:?}", group.key);
        }
    }

    #[test]
    fn empty_clusters_are_skipped() {
        let u = Universe::generate(UniverseConfig::small(7));
        let log = generate(&u, &LogSpec::tiny("nc", 23));
        let merged = netclust_netgen::standard_merged(&u, 0);
        let mut clustering = Clustering::network_aware(&log, &merged);
        let baseline = network_clusters(&u, &clustering, 2, 2, 0xAB);
        // Splice in a memberless cluster; it must neither join a group nor
        // mint a bogus ""-keyed network cluster.
        clustering.clusters.push(crate::cluster::Cluster {
            prefix: "203.0.113.0/24".parse().unwrap(),
            clients: Vec::new(),
            requests: 0,
            bytes: 0,
            unique_urls: 0,
        });
        let nets = network_clusters(&u, &clustering, 2, 2, 0xAB);
        assert!(nets.iter().all(|n| !n.key.is_empty()));
        let members: usize = nets.iter().map(|n| n.members.len()).sum();
        assert_eq!(members, clustering.clusters.len() - 1);
        assert_eq!(nets.len(), baseline.len());
    }

    #[test]
    fn deterministic() {
        let u = Universe::generate(UniverseConfig::small(7));
        let log = generate(&u, &LogSpec::tiny("nc", 23));
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        let a = network_clusters(&u, &clustering, 2, 2, 1);
        let b = network_clusters(&u, &clustering, 2, 2, 1);
        assert_eq!(a, b);
    }
}
