//! Cluster metrics and distributions (Figures 3–7 of the paper).
//!
//! The paper characterizes a clustering through three per-cluster
//! quantities — number of clients, number of requests, number of unique
//! URLs — viewed as cumulative distributions (Figure 3) and as rank plots
//! sorted in reverse order of clients (Figure 4) or requests (Figure 5).
//! [`Distributions`] computes all of it once per clustering.

use crate::cluster::Clustering;

/// Summary statistics over a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest value.
    pub min: u64,
    /// Largest value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Sum of all values.
    pub total: u64,
}

impl Summary {
    /// Computes a summary; `None` on an empty series.
    pub fn of(values: &[u64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let total: u64 = values.iter().sum();
        let n = values.len() as f64;
        let mean = total as f64 / n;
        let variance = values
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        Some(Summary {
            min: *values.iter().min().expect("non-empty"),
            max: *values.iter().max().expect("non-empty"),
            mean,
            variance,
            total,
        })
    }
}

/// Cumulative distribution of a series: for each distinct value `x`, the
/// fraction of elements ≤ `x`. This is what Figure 3 plots.
pub fn cdf(values: &[u64]) -> Vec<(u64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < sorted.len() {
        let x = sorted[i];
        let mut j = i;
        while j < sorted.len() && sorted[j] == x {
            j += 1;
        }
        out.push((x, j as f64 / n));
        i = j;
    }
    out
}

/// Evaluates a CDF (as produced by [`cdf`]) at `x`.
pub fn cdf_at(points: &[(u64, f64)], x: u64) -> f64 {
    match points.binary_search_by_key(&x, |&(v, _)| v) {
        Ok(i) => points[i].1,
        Err(0) => 0.0,
        Err(i) => points[i - 1].1,
    }
}

/// Per-cluster series plus the two orderings the paper plots.
#[derive(Debug, Clone)]
pub struct Distributions {
    /// Clients per cluster, indexed like `Clustering::clusters`.
    pub clients: Vec<u64>,
    /// Requests per cluster.
    pub requests: Vec<u64>,
    /// Unique URLs per cluster.
    pub urls: Vec<u64>,
    /// Cluster indices in reverse (descending) order of clients (Figure 4's
    /// x axis; ties broken by requests then index for determinism).
    pub by_clients: Vec<usize>,
    /// Cluster indices in reverse order of requests (Figure 5's x axis).
    pub by_requests: Vec<usize>,
}

impl Distributions {
    /// Computes every series for a clustering.
    pub fn of(clustering: &Clustering) -> Self {
        let clients: Vec<u64> = clustering
            .clusters
            .iter()
            .map(|c| c.client_count() as u64)
            .collect();
        let requests: Vec<u64> = clustering.clusters.iter().map(|c| c.requests).collect();
        let urls: Vec<u64> = clustering
            .clusters
            .iter()
            .map(|c| c.unique_urls as u64)
            .collect();
        let mut by_clients: Vec<usize> = (0..clients.len()).collect();
        by_clients.sort_by(|&a, &b| {
            clients[b]
                .cmp(&clients[a])
                .then(requests[b].cmp(&requests[a]))
                .then(a.cmp(&b))
        });
        let mut by_requests: Vec<usize> = (0..requests.len()).collect();
        by_requests.sort_by(|&a, &b| {
            requests[b]
                .cmp(&requests[a])
                .then(clients[b].cmp(&clients[a]))
                .then(a.cmp(&b))
        });
        Distributions {
            clients,
            requests,
            urls,
            by_clients,
            by_requests,
        }
    }

    /// A series reordered by an ordering: `series_in(&d.requests,
    /// &d.by_clients)` is Figure 4(b)'s y values.
    pub fn series_in(series: &[u64], order: &[usize]) -> Vec<u64> {
        order.iter().map(|&i| series[i]).collect()
    }

    /// Fraction of clusters whose client count is below `x` — e.g. the
    /// paper's "more than 95 % of client clusters contain less than 100
    /// clients".
    pub fn fraction_clusters_with_clients_below(&self, x: u64) -> f64 {
        if self.clients.is_empty() {
            return 0.0;
        }
        self.clients.iter().filter(|&&c| c < x).count() as f64 / self.clients.len() as f64
    }

    /// Fraction of clusters issuing fewer than `x` requests — e.g. "around
    /// 90 % of the client clusters issued less than 1,000 requests".
    pub fn fraction_clusters_with_requests_below(&self, x: u64) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests.iter().filter(|&&r| r < x).count() as f64 / self.requests.len() as f64
    }

    /// A tail-heaviness index: the request share of the busiest 1 % of
    /// clusters (Figure 3(b) is "more heavy-tailed" than 3(a)).
    pub fn top_percent_share(series: &[u64], percent: f64) -> f64 {
        if series.is_empty() {
            return 0.0;
        }
        let mut sorted = series.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let k = ((sorted.len() as f64 * percent / 100.0).ceil() as usize).clamp(1, sorted.len());
        let top: u64 = sorted[..k].iter().sum();
        let all: u64 = sorted.iter().sum();
        if all == 0 {
            0.0
        } else {
            top as f64 / all as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use netclust_prefix::Ipv4Net;
    use netclust_weblog::{Log, LogTruth, Request, UrlMeta};

    fn log_with(clients_per_24: &[(u8, usize, u64)]) -> Log {
        // (third_octet, clients, requests_per_client)
        let mut requests = Vec::new();
        for &(octet, n, per) in clients_per_24 {
            for c in 0..n {
                let addr = u32::from_be_bytes([10, 0, octet, (c + 1) as u8]);
                for j in 0..per {
                    requests.push(Request {
                        time: j as u32,
                        client: addr,
                        url: (c % 4) as u32,
                        bytes: 10,
                        status: 200,
                        ua: 0,
                    });
                }
            }
        }
        requests.sort_by_key(|r| r.time);
        Log {
            name: "m".into(),
            requests,
            urls: (0..4)
                .map(|i| UrlMeta {
                    path: format!("/{i}"),
                    size: 10,
                })
                .collect(),
            user_agents: vec!["UA".into()],
            start_time: 0,
            duration_s: 1000,
            truth: LogTruth::default(),
        }
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1, 2, 3, 4]).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.total, 10);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn cdf_shape() {
        let points = cdf(&[1, 1, 2, 5]);
        assert_eq!(points, vec![(1, 0.5), (2, 0.75), (5, 1.0)]);
        assert_eq!(cdf_at(&points, 0), 0.0);
        assert_eq!(cdf_at(&points, 1), 0.5);
        assert_eq!(cdf_at(&points, 3), 0.75);
        assert_eq!(cdf_at(&points, 99), 1.0);
        assert!(cdf(&[]).is_empty());
    }

    #[test]
    fn orderings_are_descending() {
        let log = log_with(&[(1, 3, 10), (2, 10, 1), (3, 1, 100)]);
        let clustering = Clustering::simple24(&log);
        let d = Distributions::of(&clustering);
        // by_clients: 10-client cluster first.
        assert_eq!(d.clients[d.by_clients[0]], 10);
        assert_eq!(d.clients[d.by_clients[2]], 1);
        // by_requests: the 100-request cluster first.
        assert_eq!(d.requests[d.by_requests[0]], 100);
        let reordered = Distributions::series_in(&d.requests, &d.by_requests);
        assert!(reordered.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn fractions() {
        let log = log_with(&[(1, 3, 10), (2, 10, 1), (3, 1, 100)]);
        let clustering = Clustering::simple24(&log);
        let d = Distributions::of(&clustering);
        assert!((d.fraction_clusters_with_clients_below(10) - 2.0 / 3.0).abs() < 1e-12);
        assert!((d.fraction_clusters_with_requests_below(100) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.fraction_clusters_with_clients_below(1), 0.0);
    }

    #[test]
    fn top_percent_share_heavy_tail() {
        // One dominant value: top 1 % (= 1 element of 4) takes most.
        let share = Distributions::top_percent_share(&[1000, 1, 1, 1], 1.0);
        assert!((share - 1000.0 / 1003.0).abs() < 1e-12);
        assert_eq!(Distributions::top_percent_share(&[], 1.0), 0.0);
        assert_eq!(Distributions::top_percent_share(&[0, 0], 50.0), 0.0);
    }

    #[test]
    fn same_x_position_refers_to_same_cluster() {
        // The paper stresses Figures 4(a)-(c) share x positions: check the
        // orderings produce consistent parallel series.
        let log = log_with(&[(1, 5, 7), (2, 2, 50)]);
        let clustering = Clustering::simple24(&log);
        let d = Distributions::of(&clustering);
        let i = d.by_clients[0];
        assert_eq!(d.clients[i], 5);
        assert_eq!(d.requests[i], 35);
        // urls for that cluster: clients 0..5 access urls 0..4 → 4 unique.
        assert_eq!(d.urls[i], 4);
        let _net: Ipv4Net = clustering.clusters[i].prefix;
    }
}
