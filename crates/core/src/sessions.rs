//! Time-partitioned session analysis (§3.6).
//!
//! The paper splits the Nagano log into four 6-hour sessions, clusters
//! each, and finds the per-cluster request/URL patterns stable across
//! sessions — evidence that "simulations on a sample of server logs might
//! suffice". [`session_report`] reproduces that analysis for any log and
//! assigner.

use std::collections::HashMap;

use netclust_prefix::Ipv4Net;
use netclust_weblog::Log;

use crate::anomaly::correlation;
use crate::cluster::Clustering;

/// Per-session clustering summary.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Session label.
    pub name: String,
    /// Requests in the session.
    pub requests: u64,
    /// Clusters identified in the session.
    pub clusters: usize,
    /// Distinct clients.
    pub clients: usize,
    /// Requests per cluster prefix (for cross-session comparison).
    pub requests_by_prefix: HashMap<Ipv4Net, u64>,
}

/// Cross-session stability report.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// One entry per session.
    pub sessions: Vec<SessionStats>,
    /// Pearson correlations of per-cluster request volumes between each
    /// pair of consecutive sessions, over the union of prefixes.
    pub consecutive_correlations: Vec<f64>,
}

/// Clusters each of `n` equal time-slices of `log` with `assign` and
/// measures cross-session stability.
pub fn session_report<F>(log: &Log, n: u32, assign: F) -> SessionReport
where
    F: Fn(std::net::Ipv4Addr) -> Option<Ipv4Net> + Copy + Sync,
{
    let sessions: Vec<SessionStats> = log
        .sessions(n)
        .iter()
        .map(|s| {
            let clustering = Clustering::build(s, "session", assign);
            let requests_by_prefix = clustering
                .clusters
                .iter()
                .map(|c| (c.prefix, c.requests))
                .collect();
            SessionStats {
                name: s.name.clone(),
                requests: s.requests.len() as u64,
                clusters: clustering.len(),
                clients: clustering.client_count(),
                requests_by_prefix,
            }
        })
        .collect();

    let consecutive_correlations = sessions
        .windows(2)
        .map(|pair| {
            // analyze:allow(determinism) keys are collected, sorted, and
            // deduped before any use.
            let mut prefixes: Vec<Ipv4Net> = pair[0]
                .requests_by_prefix
                .keys()
                .chain(pair[1].requests_by_prefix.keys())
                .copied()
                .collect();
            prefixes.sort();
            prefixes.dedup();
            let a: Vec<u64> = prefixes
                .iter()
                .map(|p| pair[0].requests_by_prefix.get(p).copied().unwrap_or(0))
                .collect();
            let b: Vec<u64> = prefixes
                .iter()
                .map(|p| pair[1].requests_by_prefix.get(p).copied().unwrap_or(0))
                .collect();
            correlation(&a, &b)
        })
        .collect();

    SessionReport {
        sessions,
        consecutive_correlations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::{Universe, UniverseConfig};
    use netclust_weblog::{generate, LogSpec};

    #[test]
    fn sessions_are_stable_for_stationary_workloads() {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut spec = LogSpec::tiny("sess", 31);
        spec.total_requests = 40_000;
        let log = generate(&u, &spec);
        let merged = netclust_netgen::standard_merged(&u, 0);
        let report = session_report(&log, 4, |a| merged.lookup(a).map(|(n, _)| n));
        assert_eq!(report.sessions.len(), 4);
        assert_eq!(report.consecutive_correlations.len(), 3);
        let total: u64 = report.sessions.iter().map(|s| s.requests).sum();
        assert_eq!(total, log.requests.len() as u64);
        // Busy clusters stay busy across sessions: strong correlation.
        for (i, &c) in report.consecutive_correlations.iter().enumerate() {
            assert!(
                c > 0.5,
                "correlation {c} between sessions {i} and {}",
                i + 1
            );
        }
        // Diurnal profile: sessions differ in volume (afternoon > night).
        let volumes: Vec<u64> = report.sessions.iter().map(|s| s.requests).collect();
        assert!(volumes.iter().max() > volumes.iter().min());
    }

    #[test]
    fn single_session_is_whole_log() {
        let u = Universe::generate(UniverseConfig::small(7));
        let log = generate(&u, &LogSpec::tiny("one", 5));
        let merged = netclust_netgen::standard_merged(&u, 0);
        let report = session_report(&log, 1, |a| merged.lookup(a).map(|(n, _)| n));
        assert_eq!(report.sessions.len(), 1);
        assert!(report.consecutive_correlations.is_empty());
        assert_eq!(report.sessions[0].requests, log.requests.len() as u64);
    }
}
