//! Dependency-free FxHash-style hasher for the hot aggregation maps.
//!
//! The clustering and ingest paths hash millions of small keys — `u32`
//! client addresses and short path slices. `std`'s default SipHash is
//! DoS-resistant but pays for it per call; these maps hold transient
//! per-run aggregates keyed by data we are about to sort anyway, so the
//! classic rotate-xor-multiply scheme (rustc's `FxHasher`) is the right
//! trade. Vendored because the build environment is offline.

use std::collections::HashMap;
#[cfg(test)]
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Firefox/rustc Fx hash: a 64-bit odd constant with
/// well-mixed bits (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotate-xor-multiply hasher over input words.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let (chunks, rem) = bytes.as_chunks::<8>();
        for c in chunks {
            self.add(u64::from_le_bytes(*c));
        }
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "a" and "a\0" keys differ.
            self.add(u64::from_le_bytes(tail) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
#[cfg(test)]
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u32, u64> = FxHashMap::default();
        for i in 0..10_000u32 {
            m.insert(i.wrapping_mul(0x9E37_79B9), i as u64);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(m.get(&i.wrapping_mul(0x9E37_79B9)), Some(&(i as u64)));
        }
    }

    #[test]
    fn slice_keys_distinguish_length() {
        let mut s: FxHashSet<&[u8]> = FxHashSet::default();
        assert!(s.insert(b"a".as_slice()));
        assert!(s.insert(b"a\0".as_slice()));
        assert!(s.insert(b"".as_slice()));
        assert!(!s.insert(b"a".as_slice()));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn hashes_spread() {
        // Not a statistical test — just catch a degenerate implementation
        // that maps sequential keys to few distinct values.
        let mut seen = FxHashSet::default();
        for i in 0..1000u32 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000);
    }
}
