//! Real-time (streaming) cluster identification (§4).
//!
//! "The real-time client clustering information ... gives the service
//! provider a global view of where their customers are located and how
//! their demands change from time to time." [`StreamingClustering`]
//! consumes requests one at a time, maintains per-cluster aggregates
//! incrementally, and supports swapping in a fresh routing table
//! ([`StreamingClustering::try_swap`]) so the view adapts to routing
//! dynamics without replaying the past — the paper's "real-time cluster
//! identifying ... using real-time routing information".
//!
//! Table swaps are *validated*: BGP snapshots are scraped from noisy
//! sources and churn day to day (§3.4), so a candidate table is
//! sanity-checked (non-empty, parse noise under budget, coverage of the
//! currently-known clients not collapsing) and compiled off to the side
//! before it replaces the serving table. A rejected candidate leaves the
//! old table serving — degraded but correct — with the rejection and the
//! stale-table age recorded in [`SwapStats`].
//!
//! Between full swaps, live BGP churn lands **incrementally**:
//! [`StreamingClustering::apply_deltas`] patches a copy of the serving
//! table in place (`CompiledMerged::apply_delta`), re-resolves only the
//! clients a batch can affect, and publishes the patched generation
//! through an [`EpochTable`] — readers ([`StreamHandle`]) never block and
//! never observe a torn table, and superseded generations are recycled
//! (journal replay) instead of recompiled or recloned. The same
//! [`SwapPolicy`] entry/coverage gates are evaluated per patch batch, so a
//! desynchronized feed degrades the stream no further than a bad snapshot
//! would.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;

use netclust_obs::{Counter, ErrorCounts, Gauge, Histogram, Obs};
use netclust_prefix::Ipv4Net;
use netclust_rtable::{
    CompiledMerged, DeltaKind, MergedTable, PatchReport, RoutingTable, TableDelta, TableKind,
};
use netclust_weblog::clf::ClfError;
use netclust_weblog::clf_bytes;
use netclust_weblog::Request;

use crate::epoch::{EpochReader, EpochTable};
use crate::faults::{failpoints, FaultInjector};
use crate::persist::{CorrectionState, FeedProgress, StreamState};

/// Patch-journal depth: a retired generation older than this many batches
/// behind the serving one is cloned over instead of replayed.
const JOURNAL_CAP: usize = 32;

/// Resolved swap/patch-path observability handles (`stream.swap.*`,
/// `stream.patch.*`, `stream.epoch.*`); inert when the stream was built
/// without [`StreamingBuilder::obs`].
#[derive(Debug, Clone, Default)]
struct StreamObs {
    attempts: Counter,
    accepted: Counter,
    rejected: Counter,
    stale_age: Gauge,
    patch_batches: Counter,
    patch_rejected: Counter,
    patch_slot_writes: Counter,
    patch_group_rebuilds: Counter,
    patch_recompiles: Counter,
    patch_batch_deltas: Histogram,
    epoch_lag: Gauge,
    epoch_retired: Gauge,
}

impl StreamObs {
    fn resolve(obs: &Obs) -> Self {
        StreamObs {
            attempts: obs.counter("stream.swap.attempts"),
            accepted: obs.counter("stream.swap.accepted"),
            rejected: obs.counter("stream.swap.rejected"),
            stale_age: obs.gauge("stream.swap.stale_age"),
            patch_batches: obs.counter("stream.patch.batches"),
            patch_rejected: obs.counter("stream.patch.rejected"),
            patch_slot_writes: obs.counter("stream.patch.slot_writes"),
            patch_group_rebuilds: obs.counter("stream.patch.group_rebuilds"),
            patch_recompiles: obs.counter("stream.patch.recompiles"),
            patch_batch_deltas: obs.histogram("stream.patch.batch_deltas"),
            epoch_lag: obs.gauge("stream.epoch.lag"),
            epoch_retired: obs.gauge("stream.epoch.retired"),
        }
    }
}

/// One published generation of the serving table, tagged with its patch
/// lineage version so retired generations can be caught up by journal
/// replay instead of cloning.
#[derive(Clone)]
struct LiveTable {
    table: CompiledMerged,
    version: u64,
}

/// A wait-free lookup handle over the serving table, for reader threads
/// concurrent with [`StreamingClustering::apply_deltas`] /
/// [`try_swap`](StreamingClustering::try_swap) on the owner. Lookups pin an
/// epoch, never block the writer, and never observe a torn table; each
/// handle owns one of the epoch table's reader slots
/// ([`crate::epoch::MAX_READERS`]).
#[derive(Debug)]
pub struct StreamHandle {
    reader: EpochReader<LiveTable>,
}

impl StreamHandle {
    /// Longest-prefix cluster for `addr` under the current generation.
    pub fn net_for(&self, addr: Ipv4Addr) -> Option<Ipv4Net> {
        self.net_for_u32(u32::from(addr))
    }

    /// [`net_for`](Self::net_for) on a raw big-endian address.
    pub fn net_for_u32(&self, addr: u32) -> Option<Ipv4Net> {
        self.reader.with(|live| live.table.net_for_u32(addr))
    }

    /// Patch-lineage version of the generation currently serving (bumps on
    /// every accepted patch batch or full swap).
    pub fn version(&self) -> u64 {
        self.reader.with(|live| live.version)
    }

    /// Live prefix count of the serving generation (both tiers).
    pub fn table_len(&self) -> usize {
        self.reader
            .with(|live| live.table.bgp().len() + live.table.dump().len())
    }
}

impl Clone for StreamHandle {
    fn clone(&self) -> Self {
        StreamHandle {
            reader: self.reader.fork(),
        }
    }
}

/// Incremental per-cluster aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Distinct clients seen.
    pub clients: u64,
    /// Requests seen.
    pub requests: u64,
    /// Bytes served.
    pub bytes: u64,
}

/// Thresholds a candidate routing table must clear before it replaces the
/// serving one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapPolicy {
    /// Minimum prefix count across both tiers (an empty or near-empty
    /// snapshot is a scrape failure, not a routing change).
    pub min_entries: usize,
    /// Maximum tolerated parse-noise ratio of the candidate's source dump
    /// (see `netclust_rtable::ParseReport::noise_ratio`).
    pub max_noise_ratio: f64,
    /// The candidate's request-weighted coverage of the currently-known
    /// clients must be at least this fraction of the serving table's
    /// coverage (1.0 = no regression allowed, 0.0 = never reject).
    pub min_coverage_retention: f64,
}

impl Default for SwapPolicy {
    fn default() -> Self {
        SwapPolicy {
            min_entries: 1,
            max_noise_ratio: 0.05,
            min_coverage_retention: 0.8,
        }
    }
}

impl SwapPolicy {
    /// A policy that accepts any compilable candidate (the legacy
    /// unconditional swap).
    pub fn permissive() -> Self {
        SwapPolicy {
            min_entries: 0,
            max_noise_ratio: 1.0,
            min_coverage_retention: 0.0,
        }
    }
}

/// Why a candidate table was turned away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwapRejection {
    /// The candidate had fewer prefixes than the policy floor.
    TooFewEntries {
        /// Prefixes in the candidate.
        entries: usize,
        /// The policy's minimum.
        floor: usize,
    },
    /// The candidate's source dump was noisier than the budget allows.
    NoiseOverBudget {
        /// Observed malformed-line ratio.
        ratio: f64,
        /// The policy's budget.
        budget: f64,
    },
    /// Compiling the candidate failed (injected fault or real).
    CompileFault,
    /// Patching the candidate generation failed mid-apply (injected fault
    /// or real); the half-patched generation was discarded and the old one
    /// keeps serving.
    PatchFault,
    /// The candidate would drop coverage of the known clients too far.
    CoverageCollapse {
        /// Serving table's request-weighted coverage.
        before: f64,
        /// Candidate's request-weighted coverage.
        after: f64,
        /// Minimum acceptable `after` given the policy.
        floor: f64,
    },
}

/// Outcome of one [`StreamingClustering::try_swap`] attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapReport {
    /// Whether the candidate was installed.
    pub accepted: bool,
    /// The reason it was not (when `accepted` is false).
    pub rejection: Option<SwapRejection>,
    /// Prefix count of the candidate.
    pub candidate_entries: usize,
    /// Request-weighted coverage before the attempt.
    pub coverage_before: f64,
    /// Coverage after the attempt (the candidate's when accepted, the
    /// serving table's when rejected).
    pub coverage_after: f64,
}

/// Cumulative swap accounting, including the degraded-mode age counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Candidates installed.
    pub accepted: u64,
    /// Candidates rejected.
    pub rejected: u64,
    /// Rejections since the serving table was last replaced — how many
    /// refresh cycles stale the serving table is (0 = fresh). Non-zero
    /// means the stream is serving in degraded mode on an old table.
    pub stale_age: u64,
}

/// Outcome of one [`StreamingClustering::apply_deltas`] batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatchBatchReport {
    /// Whether the patched generation was published.
    pub accepted: bool,
    /// Why it was not (when `accepted` is false).
    pub rejection: Option<SwapRejection>,
    /// The table-layer patch accounting (slot writes, group rebuilds,
    /// recompile fallback). Populated even on rejection — the patch is
    /// applied off to the side before the gates run.
    pub patch: PatchReport,
    /// Live prefix count of the candidate generation (both tiers).
    pub candidate_entries: usize,
    /// Clients whose cluster assignment the batch changed (0 on rejection).
    pub reassigned_clients: usize,
    /// Request-weighted coverage before the batch.
    pub coverage_before: f64,
    /// Coverage after (the candidate's when accepted, the serving table's
    /// when rejected).
    pub coverage_after: f64,
    /// The epoch after the operation (unchanged when rejected).
    pub epoch: u64,
}

/// Cumulative [`apply_deltas`](StreamingClustering::apply_deltas)
/// accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Batches attempted.
    pub batches: u64,
    /// Batches published.
    pub accepted: u64,
    /// Batches rejected (gates or injected faults).
    pub rejected: u64,
    /// Direct slot writes across accepted and rejected batches.
    pub slot_writes: u64,
    /// Scoped overflow-group rebuilds.
    pub group_rebuilds: u64,
    /// Full-recompile fallbacks.
    pub recompiles: u64,
}

/// Consuming builder for [`StreamingClustering`], mirroring
/// [`IngestPipeline`](crate::IngestPipeline)'s `chunk_bytes(..)`-style
/// configuration surface: chain options, then [`build`](Self::build).
///
/// ```
/// # use netclust_core::{StreamingClustering, SwapPolicy};
/// # use netclust_netgen::{standard_merged, Universe, UniverseConfig};
/// # let u = Universe::generate(UniverseConfig::small(7));
/// let stream = StreamingClustering::builder(standard_merged(&u, 0))
///     .swap_policy(SwapPolicy::default())
///     .build();
/// # assert!(stream.is_empty());
/// ```
pub struct StreamingBuilder {
    table: MergedTable,
    policy: SwapPolicy,
    obs: Obs,
}

impl StreamingBuilder {
    /// Sets the validation thresholds every [`try_swap`]
    /// (`StreamingClustering::try_swap`) attempt is checked against
    /// (default: [`SwapPolicy::default`]).
    ///
    /// [`try_swap`]: StreamingClustering::try_swap
    pub fn swap_policy(mut self, policy: SwapPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches an observability registry: LPM lookup/miss counters on the
    /// compiled table (`lpm.*`) and swap accounting (`stream.swap.*`).
    /// Costs nothing when `obs` is disabled.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Compiles the table to the flat DIR-24-8 layout and builds the
    /// (empty) streaming clustering.
    pub fn build(self) -> StreamingClustering {
        let mut compiled = self.table.compile();
        compiled.attach_obs(&self.obs);
        let metrics = StreamObs::resolve(&self.obs);
        let table = EpochTable::new(LiveTable {
            table: compiled,
            version: 0,
        });
        let reader = table.reader();
        StreamingClustering {
            table,
            reader,
            version: 0,
            journal: VecDeque::new(),
            journal_base: 0,
            clusters: HashMap::new(),
            per_client: HashMap::new(),
            assignment: HashMap::new(),
            unclustered_requests: 0,
            total_requests: 0,
            clf_counts: ErrorCounts::default(),
            swap_stats: SwapStats::default(),
            patch_stats: PatchStats::default(),
            last_rejection: None,
            correction: None,
            policy: self.policy,
            obs: self.obs,
            metrics,
        }
    }
}

/// A recovered [`StreamState`] decoded cleanly but its integrity
/// invariants do not hold: a stored total disagrees with the value
/// recomputed from the per-client rows, so the snapshot was written by a
/// buggy or hostile producer and must not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreError {
    /// Which invariant failed.
    pub what: &'static str,
    /// The value the snapshot claims.
    pub stored: u64,
    /// The value recomputed from the snapshot's own rows.
    pub recomputed: u64,
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restored state mismatch: {} stored {} but recomputed {}",
            self.what, self.stored, self.recomputed
        )
    }
}

impl std::error::Error for RestoreError {}

/// An incrementally-maintained clustering over a request stream.
///
/// The routing table is compiled once at construction to the flat DIR-24-8
/// layout ([`CompiledMerged`]), so the per-request hot path does O(1)–O(2)
/// array lookups; [`try_swap`](Self::try_swap) validates and recompiles,
/// and [`apply_deltas`](Self::apply_deltas) patches incrementally. The
/// serving table lives behind an [`EpochTable`], so [`handle`](Self::handle)
/// lookups on other threads proceed wait-free through either.
///
/// Construct with [`builder`](Self::builder):
/// `StreamingClustering::builder(table).swap_policy(..).obs(..).build()`.
pub struct StreamingClustering {
    /// The serving table generations (epoch-reclaimed).
    table: EpochTable<LiveTable>,
    /// The owner's own lookup handle into `table`.
    reader: EpochReader<LiveTable>,
    /// Patch-lineage version of the serving generation.
    version: u64,
    /// Recently accepted delta batches; `journal[i]` advances version
    /// `journal_base + i` to `journal_base + i + 1`. Replayed into recycled
    /// generations so a patch batch does not clone the serving table.
    journal: VecDeque<Vec<TableDelta>>,
    /// Version the front of `journal` applies to.
    journal_base: u64,
    /// Per-cluster aggregates.
    clusters: HashMap<Ipv4Net, StreamStats>,
    /// Per-client totals (kept so a table swap can rebuild assignments
    /// without replaying the stream).
    per_client: HashMap<u32, (u64, u64)>,
    /// Memoized client → prefix assignment under the current table.
    assignment: HashMap<u32, Option<Ipv4Net>>,
    /// Requests from unclusterable clients.
    unclustered_requests: u64,
    total_requests: u64,
    /// Raw-CLF ingest accounting: lines consumed by
    /// [`push_clf`](Self::push_clf) vs lines quarantined as malformed.
    clf_counts: ErrorCounts,
    /// Swap acceptance/rejection accounting.
    swap_stats: SwapStats,
    /// Patch-batch accounting.
    patch_stats: PatchStats,
    /// The most recent rejection, for operators polling stats.
    last_rejection: Option<SwapRejection>,
    /// Durable residue of the last self-correction pass, carried so
    /// snapshots preserve it across restarts.
    correction: Option<CorrectionState>,
    /// Thresholds applied by [`try_swap`](Self::try_swap).
    policy: SwapPolicy,
    /// Registry swapped-in tables resolve their LPM counters against.
    obs: Obs,
    /// Resolved swap-path counters/gauge.
    metrics: StreamObs,
}

impl StreamingClustering {
    /// Starts building a streaming clustering over `table`; finish with
    /// [`StreamingBuilder::build`].
    pub fn builder(table: MergedTable) -> StreamingBuilder {
        StreamingBuilder {
            table,
            policy: SwapPolicy::default(),
            obs: Obs::disabled(),
        }
    }

    /// A wait-free lookup handle for reader threads: sees every accepted
    /// swap and patch batch, never blocks on the writer, never observes a
    /// torn table.
    pub fn handle(&self) -> StreamHandle {
        StreamHandle {
            reader: self.table.reader(),
        }
    }

    /// Feeds one request.
    pub fn push(&mut self, request: &Request) {
        self.push_raw(request.client, request.bytes as u64);
    }

    /// Feeds a buffer of raw Common Log Format bytes through the
    /// zero-copy parser — no `Log` is built and nothing is interned.
    /// Malformed lines are skipped and returned (line numbers are
    /// 0-based within `data`, matching the batch parsers).
    pub fn push_clf(&mut self, data: &[u8]) -> Vec<ClfError> {
        let mut errors = Vec::new();
        let mut lines = 0u64;
        for item in clf_bytes::records(data, 0) {
            lines += 1;
            match item {
                Ok((_, r)) => self.push_raw(r.addr, r.bytes as u64),
                Err(e) => errors.push(e),
            }
        }
        self.clf_counts
            .merge(ErrorCounts::new(lines, errors.len() as u64));
        errors
    }

    /// Cumulative [`push_clf`](Self::push_clf) accounting: every raw line
    /// consumed vs the lines quarantined as malformed. Quarantined lines
    /// never become requests, so they are reported here and excluded from
    /// [`coverage`](Self::coverage)'s denominator.
    pub fn clf_counts(&self) -> ErrorCounts {
        self.clf_counts
    }

    fn push_raw(&mut self, client: u32, bytes: u64) {
        self.total_requests += 1;
        let entry = self.per_client.entry(client).or_insert((0, 0));
        let is_new_client = entry.0 == 0;
        entry.0 += 1;
        entry.1 += bytes;
        let prefix = *self
            .assignment
            .entry(client)
            .or_insert_with(|| self.reader.with(|live| live.table.net_for_u32(client)));
        match prefix {
            Some(net) => {
                let stats = self.clusters.entry(net).or_default();
                if is_new_client {
                    stats.clients += 1;
                }
                stats.requests += 1;
                stats.bytes += bytes;
            }
            None => self.unclustered_requests += 1,
        }
    }

    /// Number of clusters with at least one request.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` before any clustered request arrives.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Total requests consumed.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Aggregates for one cluster prefix.
    pub fn stats(&self, prefix: Ipv4Net) -> Option<StreamStats> {
        self.clusters.get(&prefix).copied()
    }

    /// The cluster a client currently maps to.
    pub fn cluster_of(&self, addr: Ipv4Addr) -> Option<Ipv4Net> {
        self.assignment.get(&u32::from(addr)).copied().flatten()
    }

    /// The cluster `addr` maps to under the serving table, whether or not
    /// the client has been seen: a seen client answers from its memoized
    /// assignment (kept consistent across swaps and patches), an unseen
    /// address is resolved by a longest-prefix match against the current
    /// generation. This is the daemon's `/v1/cluster` primitive.
    pub fn lookup_net(&self, addr: Ipv4Addr) -> Option<Ipv4Net> {
        let client = u32::from(addr);
        match self.assignment.get(&client) {
            Some(&memo) => memo,
            None => self.reader.with(|live| live.table.net_for_u32(client)),
        }
    }

    /// Cumulative `(requests, bytes)` for one client address, `None` when
    /// the address has never been seen.
    pub fn client_totals(&self, addr: Ipv4Addr) -> Option<(u64, u64)> {
        self.per_client.get(&u32::from(addr)).copied()
    }

    /// Distinct client addresses seen.
    pub fn client_count(&self) -> usize {
        self.per_client.len()
    }

    /// Requests from clients that matched no table entry at the time they
    /// arrived.
    pub fn unclustered_requests(&self) -> u64 {
        self.unclustered_requests
    }

    #[cfg(test)]
    pub(crate) fn push_raw_for_tests(&mut self, client: u32, bytes: u64) {
        self.push_raw(client, bytes);
    }

    /// Fraction of *parsed* requests that were clusterable. Lines
    /// quarantined by [`push_clf`](Self::push_clf) never became requests
    /// and are excluded from the denominator — they are accounted in
    /// [`clf_counts`](Self::clf_counts), not as clustered misses — so log
    /// corruption cannot dilute coverage.
    pub fn coverage(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            1.0 - self.unclustered_requests as f64 / self.total_requests as f64
        }
    }

    /// The current top-`k` clusters by request count (ties broken by
    /// prefix for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(Ipv4Net, StreamStats)> {
        // analyze:allow(determinism) collected then sorted with a prefix
        // tie-break below.
        let mut v: Vec<(Ipv4Net, StreamStats)> =
            self.clusters.iter().map(|(&p, &s)| (p, s)).collect();
        v.sort_by(|a, b| b.1.requests.cmp(&a.1.requests).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Swap accounting: accepted/rejected counts and the stale-table age.
    pub fn swap_stats(&self) -> SwapStats {
        self.swap_stats
    }

    /// Patch-batch accounting: batches, acceptance, and the table-layer
    /// write mix.
    pub fn patch_stats(&self) -> PatchStats {
        self.patch_stats
    }

    /// Patch-lineage version of the serving generation (bumps on every
    /// accepted patch batch or full swap).
    pub fn table_version(&self) -> u64 {
        self.version
    }

    /// The most recent swap rejection, if any.
    pub fn last_rejection(&self) -> Option<SwapRejection> {
        self.last_rejection
    }

    /// Swaps in a fresh routing table unconditionally (adaptation to
    /// routing dynamics): recompiles it and rebuilds the cluster view from
    /// the retained per-client totals with one batch LPM sweep — no stream
    /// replay needed. Prefer [`try_swap`](Self::try_swap), which validates
    /// the candidate first.
    pub fn swap_table(&mut self, table: MergedTable) {
        let mut compiled = table.compile();
        compiled.attach_obs(&self.obs);
        // analyze:allow(determinism) install() aggregates commutatively per
        // cluster; client order cannot reach any output.
        let clients: Vec<u32> = self.per_client.keys().copied().collect();
        let nets = compiled.net_for_batch(&clients);
        self.install(compiled, clients, nets);
        self.swap_stats.accepted += 1;
        self.swap_stats.stale_age = 0;
        self.metrics.attempts.inc();
        self.metrics.accepted.inc();
        self.metrics.stale_age.set(0);
    }

    /// Validated two-phase table swap: the candidate is sanity-checked and
    /// compiled *off to the side*; only a candidate that parses cleanly
    /// enough, compiles, and keeps covering the clients the stream has
    /// already seen replaces the serving table. On rejection the old table
    /// keeps serving untouched and the stale-age counter grows.
    ///
    /// `noise` is the candidate's source parse-noise accounting
    /// ([`ErrorCounts::default`] for programmatically built tables; see
    /// `netclust_rtable::ParseReport::counts`). The thresholds come from
    /// the policy configured at build time
    /// ([`StreamingBuilder::swap_policy`]).
    pub fn try_swap(&mut self, table: MergedTable, noise: ErrorCounts) -> SwapReport {
        self.try_swap_with(table, noise, &mut FaultInjector::disabled())
    }

    /// [`try_swap`](Self::try_swap) with a fault injector: the
    /// [`failpoints::SWAP_COMPILE`] failpoint simulates the candidate
    /// compile dying, which must be survivable like any other rejection.
    pub fn try_swap_with(
        &mut self,
        table: MergedTable,
        noise: ErrorCounts,
        faults: &mut FaultInjector,
    ) -> SwapReport {
        let policy = self.policy;
        self.try_swap_inner(table, noise.ratio(), &policy, faults)
    }

    /// Applies one batch of per-prefix routing deltas incrementally: a
    /// *copy* of the serving table (a recycled retired generation when one
    /// is safe, caught up by journal replay) is patched in place
    /// (`CompiledMerged::apply_delta`), only the clients the batch can
    /// affect are re-resolved, and the [`SwapPolicy`] entry/coverage gates
    /// run before the patched generation is published through the epoch
    /// table. Rejection discards the candidate; the old generation keeps
    /// serving and concurrent [`handle`](Self::handle) lookups never
    /// blocked either way.
    pub fn apply_deltas(&mut self, deltas: &[TableDelta]) -> PatchBatchReport {
        self.apply_deltas_with(deltas, &mut FaultInjector::disabled())
    }

    /// [`apply_deltas`](Self::apply_deltas) with a fault injector: the
    /// [`failpoints::TABLE_PATCH`] failpoint simulates the in-place patch
    /// dying mid-apply, which must discard the candidate and leave the old
    /// generation intact.
    pub fn apply_deltas_with(
        &mut self,
        deltas: &[TableDelta],
        faults: &mut FaultInjector,
    ) -> PatchBatchReport {
        let _span = self.obs.span("stream.patch");
        let coverage_before = self.coverage();
        if deltas.is_empty() {
            return PatchBatchReport {
                accepted: true,
                rejection: None,
                patch: PatchReport::default(),
                candidate_entries: self
                    .reader
                    .with(|live| live.table.bgp().len() + live.table.dump().len()),
                reassigned_clients: 0,
                coverage_before,
                coverage_after: coverage_before,
                epoch: self.table.epoch(),
            };
        }
        self.patch_stats.batches += 1;
        self.metrics.patch_batches.inc();
        self.metrics.patch_batch_deltas.record(deltas.len() as u64);

        // Build the candidate off to the side: recycle a retired
        // generation when one is reclaimable and recent enough to catch up
        // from the journal, otherwise clone the serving generation.
        let mut candidate = match self.table.take_recycled() {
            Some(mut stale) if stale.version >= self.journal_base => {
                let skip = (stale.version - self.journal_base) as usize;
                for batch in self.journal.iter().skip(skip) {
                    stale.table.apply_delta(batch);
                }
                stale.version = self.version;
                stale
            }
            _ => self.reader.with(|live| live.clone()),
        };
        let patch = candidate.table.apply_delta(deltas);
        self.patch_stats.slot_writes += patch.slot_writes() as u64;
        self.patch_stats.group_rebuilds += patch.groups_rebuilt as u64;
        if patch.recompiled {
            self.patch_stats.recompiles += 1;
            self.metrics.patch_recompiles.inc();
        }
        self.metrics
            .patch_slot_writes
            .add(patch.slot_writes() as u64);
        self.metrics
            .patch_group_rebuilds
            .add(patch.groups_rebuilt as u64);

        let candidate_entries = candidate.table.bgp().len() + candidate.table.dump().len();
        let reject = |this: &mut Self, why: SwapRejection| {
            this.patch_stats.rejected += 1;
            this.last_rejection = Some(why);
            this.metrics.patch_rejected.inc();
            PatchBatchReport {
                accepted: false,
                rejection: Some(why),
                patch,
                candidate_entries,
                reassigned_clients: 0,
                coverage_before,
                coverage_after: coverage_before,
                epoch: this.table.epoch(),
            }
        };

        // An injected (or real) mid-patch death: the half-patched candidate
        // is dropped on the floor; the serving generation was never touched.
        if faults.should_fire(failpoints::TABLE_PATCH) {
            return reject(self, SwapRejection::PatchFault);
        }
        if candidate_entries < self.policy.min_entries {
            return reject(
                self,
                SwapRejection::TooFewEntries {
                    entries: candidate_entries,
                    floor: self.policy.min_entries,
                },
            );
        }

        // Re-resolve only the clients the batch can affect: those assigned
        // to a withdrawn/replaced prefix and those an announced prefix
        // covers (a longer match may capture them). Everyone else keeps
        // their assignment — that containment argument is what makes a
        // patch batch O(affected) instead of O(clients).
        let withdrawn: BTreeSet<Ipv4Net> = deltas
            .iter()
            .filter(|d| d.kind == DeltaKind::Withdraw)
            .map(|d| d.prefix)
            .collect();
        let announced: Vec<Ipv4Net> = deltas
            .iter()
            .filter(|d| d.kind == DeltaKind::Announce)
            .map(|d| d.prefix)
            .collect();
        // analyze:allow(determinism) moves feed commutative per-cluster
        // sums and a coverage ratio; iteration order cannot reach any
        // output.
        let mut moves: Vec<(u32, Option<Ipv4Net>, Option<Ipv4Net>)> = Vec::new();
        let mut unclustered_delta = 0i64;
        for (&client, &old_net) in &self.assignment {
            let hit = old_net.is_some_and(|n| withdrawn.contains(&n))
                || announced.iter().any(|p| p.contains_u32(client));
            if !hit {
                continue;
            }
            let new_net = candidate.table.net_for_u32(client);
            if new_net == old_net {
                continue;
            }
            let requests = self.per_client.get(&client).map_or(0, |&(r, _)| r);
            if old_net.is_none() {
                unclustered_delta -= requests as i64;
            }
            if new_net.is_none() {
                unclustered_delta += requests as i64;
            }
            moves.push((client, old_net, new_net));
        }
        let coverage_after = if self.total_requests == 0 {
            0.0
        } else {
            let unclustered = (self.unclustered_requests as i64 + unclustered_delta).max(0);
            1.0 - unclustered as f64 / self.total_requests as f64
        };
        if self.total_requests > 0 {
            let floor = coverage_before * self.policy.min_coverage_retention;
            if coverage_after < floor {
                return reject(
                    self,
                    SwapRejection::CoverageCollapse {
                        before: coverage_before,
                        after: coverage_after,
                        floor,
                    },
                );
            }
        }

        // Commit: journal the batch, publish the generation, and move the
        // affected clients' aggregates between clusters.
        self.version += 1;
        candidate.version = self.version;
        self.journal.push_back(deltas.to_vec());
        if self.journal.len() > JOURNAL_CAP {
            self.journal.pop_front();
            self.journal_base += 1;
        }
        let epoch = self.table.publish(candidate);
        let reassigned_clients = moves.len();
        for (client, old_net, new_net) in moves {
            let (requests, bytes) = self.per_client.get(&client).copied().unwrap_or((0, 0));
            self.assignment.insert(client, new_net);
            match old_net {
                Some(net) => {
                    if let Some(stats) = self.clusters.get_mut(&net) {
                        stats.clients = stats.clients.saturating_sub(1);
                        stats.requests = stats.requests.saturating_sub(requests);
                        stats.bytes = stats.bytes.saturating_sub(bytes);
                        if stats.clients == 0 {
                            self.clusters.remove(&net);
                        }
                    }
                }
                None => self.unclustered_requests -= requests,
            }
            match new_net {
                Some(net) => {
                    let stats = self.clusters.entry(net).or_default();
                    stats.clients += 1;
                    stats.requests += requests;
                    stats.bytes += bytes;
                }
                None => self.unclustered_requests += requests,
            }
        }
        self.patch_stats.accepted += 1;
        self.last_rejection = None;
        self.metrics.epoch_lag.set(self.table.reader_lag());
        self.metrics.epoch_retired.set(self.table.retired() as u64);
        PatchBatchReport {
            accepted: true,
            rejection: None,
            patch,
            candidate_entries,
            reassigned_clients,
            coverage_before,
            coverage_after: self.coverage(),
            epoch,
        }
    }

    fn try_swap_inner(
        &mut self,
        table: MergedTable,
        noise_ratio: f64,
        policy: &SwapPolicy,
        faults: &mut FaultInjector,
    ) -> SwapReport {
        self.metrics.attempts.inc();
        let candidate_entries = table.len();
        let coverage_before = self.coverage();
        let reject = |this: &mut Self, why: SwapRejection| {
            this.swap_stats.rejected += 1;
            this.swap_stats.stale_age += 1;
            this.last_rejection = Some(why);
            this.metrics.rejected.inc();
            this.metrics.stale_age.set(this.swap_stats.stale_age);
            SwapReport {
                accepted: false,
                rejection: Some(why),
                candidate_entries,
                coverage_before,
                coverage_after: coverage_before,
            }
        };

        if candidate_entries < policy.min_entries {
            return reject(
                self,
                SwapRejection::TooFewEntries {
                    entries: candidate_entries,
                    floor: policy.min_entries,
                },
            );
        }
        if noise_ratio > policy.max_noise_ratio {
            return reject(
                self,
                SwapRejection::NoiseOverBudget {
                    ratio: noise_ratio,
                    budget: policy.max_noise_ratio,
                },
            );
        }
        // Compile off to the side; the serving table stays untouched, so
        // an injected (or real) compile failure degrades, never corrupts.
        if faults.should_fire(failpoints::SWAP_COMPILE) {
            return reject(self, SwapRejection::CompileFault);
        }
        let mut compiled = table.compile();
        compiled.attach_obs(&self.obs);

        // Re-resolve every known client against the candidate and check
        // request-weighted coverage retention before committing.
        // analyze:allow(determinism) feeds a commutative sum and install()'s
        // commutative aggregation; order cannot reach any output.
        let clients: Vec<u32> = self.per_client.keys().copied().collect();
        let nets = compiled.net_for_batch(&clients);
        if self.total_requests > 0 {
            let clustered: u64 = clients
                .iter()
                .zip(&nets)
                .filter(|(_, net)| net.is_some())
                .map(|(c, _)| self.per_client[c].0)
                .sum();
            let coverage_after = clustered as f64 / self.total_requests as f64;
            let floor = coverage_before * policy.min_coverage_retention;
            if coverage_after < floor {
                return reject(
                    self,
                    SwapRejection::CoverageCollapse {
                        before: coverage_before,
                        after: coverage_after,
                        floor,
                    },
                );
            }
        }

        self.install(compiled, clients, nets);
        self.swap_stats.accepted += 1;
        self.swap_stats.stale_age = 0;
        self.last_rejection = None;
        self.metrics.accepted.inc();
        self.metrics.stale_age.set(0);
        SwapReport {
            accepted: true,
            rejection: None,
            candidate_entries,
            coverage_before,
            coverage_after: self.coverage(),
        }
    }

    /// Records the durable residue of a self-correction pass so snapshots
    /// ([`export_state`](Self::export_state)) preserve it across restarts.
    pub fn set_correction(&mut self, correction: CorrectionState) {
        self.correction = Some(correction);
    }

    /// The recorded self-correction residue, if a pass has run.
    pub fn correction(&self) -> Option<&CorrectionState> {
        self.correction.as_ref()
    }

    /// Exports everything the durability layer persists: the serving
    /// table's live prefix sets, the retained per-client totals, and every
    /// cumulative counter. `feed_pos` and `feed` are left zeroed for the
    /// feed driver to fill in. [`restore`](Self::restore) is the inverse.
    pub fn export_state(&self) -> StreamState {
        let (bgp_prefixes, dump_prefixes) = self.reader.with(|live| {
            (
                live.table.bgp().live_prefixes(),
                live.table.dump().live_prefixes(),
            )
        });
        // analyze:allow(determinism) collected then sorted by client below.
        let mut per_client: Vec<(u32, u64, u64)> = self
            .per_client
            .iter()
            .map(|(&client, &(requests, bytes))| (client, requests, bytes))
            .collect();
        per_client.sort_unstable_by_key(|&(client, _, _)| client);
        StreamState {
            table_version: self.version,
            feed_pos: 0,
            bgp_prefixes,
            dump_prefixes,
            per_client,
            total_requests: self.total_requests,
            unclustered_requests: self.unclustered_requests,
            clf_counts: self.clf_counts,
            swap_stats: self.swap_stats,
            patch_stats: self.patch_stats,
            last_rejection: self.last_rejection,
            correction: self.correction.clone(),
            feed: FeedProgress::default(),
        }
    }

    /// Rebuilds a stream from a persisted [`StreamState`]: recompiles the
    /// two routing tiers from their live prefix sets (bit-identical to the
    /// compile the snapshot's table came from, since `live_prefixes` is
    /// canonical), re-resolves every retained client with one batch LPM
    /// sweep, and cross-checks the snapshot's stored totals against the
    /// recomputed ones — a disagreement means a corrupt-but-checksummed
    /// snapshot and is a typed [`RestoreError`], never a panic.
    ///
    /// The journal's delta batches are *not* applied here; replay them
    /// through [`apply_deltas`](Self::apply_deltas) afterwards, which also
    /// reproduces the patch accounting the crashed process accumulated
    /// after its last snapshot.
    pub fn restore(
        state: &StreamState,
        policy: SwapPolicy,
        obs: Obs,
    ) -> Result<Self, RestoreError> {
        let bgp = RoutingTable::new(
            "recovered-bgp",
            "recovered",
            TableKind::Bgp,
            state.bgp_prefixes.clone(),
        );
        let dump = RoutingTable::new(
            "recovered-dump",
            "recovered",
            TableKind::NetworkDump,
            state.dump_prefixes.clone(),
        );
        let mut compiled = MergedTable::merge([&bgp, &dump]).compile();
        compiled.attach_obs(&obs);
        let metrics = StreamObs::resolve(&obs);

        // One batch LPM sweep re-derives the assignments and cluster
        // aggregates — the same cost as `install()` pays on a table swap.
        // analyze:allow(determinism) `state.per_client` is the snapshot's sorted Vec of rows, not a map.
        let clients: Vec<u32> = state.per_client.iter().map(|&(c, _, _)| c).collect();
        let nets = compiled.net_for_batch(&clients);
        let mut clusters: HashMap<Ipv4Net, StreamStats> = HashMap::new();
        let mut per_client = HashMap::with_capacity(state.per_client.len());
        let mut assignment = HashMap::with_capacity(state.per_client.len());
        let mut total_requests = 0u64;
        let mut unclustered_requests = 0u64;
        // analyze:allow(determinism) `state.per_client` is the snapshot's sorted Vec of rows, not a map.
        for (&(client, requests, bytes), &net) in state.per_client.iter().zip(&nets) {
            total_requests += requests;
            per_client.insert(client, (requests, bytes));
            assignment.insert(client, net);
            match net {
                Some(prefix) => {
                    let stats = clusters.entry(prefix).or_default();
                    stats.clients += 1;
                    stats.requests += requests;
                    stats.bytes += bytes;
                }
                None => unclustered_requests += requests,
            }
        }
        if total_requests != state.total_requests {
            return Err(RestoreError {
                what: "total_requests",
                stored: state.total_requests,
                recomputed: total_requests,
            });
        }
        if unclustered_requests != state.unclustered_requests {
            return Err(RestoreError {
                what: "unclustered_requests",
                stored: state.unclustered_requests,
                recomputed: unclustered_requests,
            });
        }

        let table = EpochTable::new(LiveTable {
            table: compiled,
            version: state.table_version,
        });
        let reader = table.reader();
        Ok(StreamingClustering {
            table,
            reader,
            version: state.table_version,
            journal: VecDeque::new(),
            journal_base: state.table_version,
            clusters,
            per_client,
            assignment,
            unclustered_requests,
            total_requests,
            clf_counts: state.clf_counts,
            swap_stats: state.swap_stats,
            patch_stats: state.patch_stats,
            last_rejection: state.last_rejection,
            correction: state.correction.clone(),
            policy,
            obs,
            metrics,
        })
    }

    /// Installs an already-compiled table, rebuilding cluster aggregates
    /// from the retained per-client totals and the batch LPM sweep
    /// (`nets[i]` is `clients[i]`'s assignment under the new table). A full
    /// swap supersedes the patch lineage: the journal is cleared, so
    /// retired pre-swap generations are never replayed into.
    fn install(&mut self, compiled: CompiledMerged, clients: Vec<u32>, nets: Vec<Option<Ipv4Net>>) {
        self.version += 1;
        self.journal.clear();
        self.journal_base = self.version;
        self.table.publish(LiveTable {
            table: compiled,
            version: self.version,
        });
        // Pre-swap generations are useless as recycling spares (the journal
        // no longer reaches them); free what readers allow.
        self.table.try_reclaim();
        self.metrics.epoch_lag.set(self.table.reader_lag());
        self.metrics.epoch_retired.set(self.table.retired() as u64);
        self.assignment.clear();
        self.clusters.clear();
        self.unclustered_requests = 0;
        for (client, prefix) in clients.into_iter().zip(nets) {
            let (requests, bytes) = self.per_client[&client];
            self.assignment.insert(client, prefix);
            match prefix {
                Some(net) => {
                    let stats = self.clusters.entry(net).or_default();
                    stats.clients += 1;
                    stats.requests += requests;
                    stats.bytes += bytes;
                }
                None => self.unclustered_requests += requests,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use netclust_netgen::{standard_merged, Universe, UniverseConfig};
    use netclust_weblog::{generate, LogSpec};

    fn setup() -> (Universe, netclust_weblog::Log) {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut spec = LogSpec::tiny("st", 13);
        spec.total_requests = 8_000;
        spec.target_clients = 300;
        let log = generate(&u, &spec);
        (u, log)
    }

    #[test]
    fn streaming_matches_batch() {
        let (u, log) = setup();
        let merged = standard_merged(&u, 0);
        let batch = Clustering::network_aware(&log, &merged);
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        assert_eq!(stream.len(), batch.len());
        assert_eq!(stream.total_requests(), log.requests.len() as u64);
        for cluster in &batch.clusters {
            let s = stream.stats(cluster.prefix).expect("cluster present");
            assert_eq!(s.requests, cluster.requests, "{}", cluster.prefix);
            assert_eq!(s.clients, cluster.client_count() as u64);
            assert_eq!(s.bytes, cluster.bytes);
        }
        // Coverage agrees (request-weighted vs client-weighted differ, so
        // compare against the request tally directly).
        let unclustered_reqs: u64 = batch.unclustered.iter().map(|c| c.requests).sum();
        let expect = 1.0 - unclustered_reqs as f64 / log.requests.len() as f64;
        assert!((stream.coverage() - expect).abs() < 1e-12);
    }

    #[test]
    fn push_clf_matches_push() {
        let (u, log) = setup();
        let mut by_request = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            by_request.push(r);
        }
        let mut by_bytes = StreamingClustering::builder(standard_merged(&u, 0)).build();
        let text = netclust_weblog::clf::to_clf(&log);
        let errors = by_bytes.push_clf(text.as_bytes());
        assert!(errors.is_empty());
        assert_eq!(by_bytes.total_requests(), by_request.total_requests());
        assert_eq!(by_bytes.len(), by_request.len());
        for (prefix, stats) in by_request.top_k(usize::MAX) {
            assert_eq!(by_bytes.stats(prefix), Some(stats), "{prefix}");
        }
        assert!((by_bytes.coverage() - by_request.coverage()).abs() < 1e-12);
        // Malformed lines are surfaced, well-formed ones still land.
        let mut s = StreamingClustering::builder(standard_merged(&u, 0)).build();
        let errs = s.push_clf(
            b"bogus\n1.2.3.4 - - [13/Feb/1998:07:00:00 +0000] \"GET /x HTTP/1.0\" 200 10\n",
        );
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].line, 0);
        assert_eq!(s.total_requests(), 1);
        // Quarantined lines land in clf_counts, not in coverage's
        // denominator: the one parsed request is clustered or not on its
        // own terms.
        assert_eq!(s.clf_counts(), ErrorCounts::new(2, 1));
    }

    #[test]
    fn top_k_tracks_busiest() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        let top = stream.top_k(5);
        assert_eq!(top.len(), 5.min(stream.len()));
        assert!(top.windows(2).all(|w| w[0].1.requests >= w[1].1.requests));
        // The top cluster matches the batch busiest.
        let merged = standard_merged(&u, 0);
        let batch = Clustering::network_aware(&log, &merged);
        assert_eq!(top[0].1.requests, batch.busiest().unwrap().requests);
    }

    #[test]
    fn table_swap_rebuilds_consistently() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        let before_total = stream.total_requests();
        // Swap to day 7's table: the view must equal a batch clustering
        // against that table.
        stream.swap_table(standard_merged(&u, 7));
        assert_eq!(stream.total_requests(), before_total);
        let batch = Clustering::network_aware(&log, &standard_merged(&u, 7));
        assert_eq!(stream.len(), batch.len());
        for cluster in &batch.clusters {
            let s = stream.stats(cluster.prefix).expect("present after swap");
            assert_eq!(s.requests, cluster.requests);
        }
    }

    #[test]
    fn validated_swap_equals_unconditional_swap() {
        let (u, log) = setup();
        let mut validated = StreamingClustering::builder(standard_merged(&u, 0)).build();
        let mut legacy = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            validated.push(r);
            legacy.push(r);
        }
        let report = validated.try_swap(standard_merged(&u, 7), ErrorCounts::default());
        assert!(report.accepted, "rejected: {:?}", report.rejection);
        legacy.swap_table(standard_merged(&u, 7));
        // Accepted validated swap is byte-identical to the unconditional
        // rebuild from retained per-client totals.
        assert_eq!(validated.total_requests(), legacy.total_requests());
        assert_eq!(validated.len(), legacy.len());
        assert_eq!(validated.top_k(usize::MAX), legacy.top_k(usize::MAX));
        assert!((validated.coverage() - legacy.coverage()).abs() < 1e-12);
        assert_eq!(validated.swap_stats().accepted, 1);
        assert_eq!(validated.swap_stats().stale_age, 0);
        assert_eq!(validated.last_rejection(), None);
    }

    #[test]
    fn rejected_swap_leaves_view_untouched() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        let before = stream.top_k(usize::MAX);
        let coverage = stream.coverage();

        // Empty candidate: a scrape failure, not a routing change.
        let empty = MergedTable::merge(std::iter::empty());
        let report = stream.try_swap(empty, ErrorCounts::default());
        assert!(!report.accepted);
        assert!(matches!(
            report.rejection,
            Some(SwapRejection::TooFewEntries {
                entries: 0,
                floor: 1
            })
        ));

        // Over-noisy source dump (1 malformed line in 2 = 50 % noise).
        let report = stream.try_swap(standard_merged(&u, 7), ErrorCounts::new(2, 1));
        assert!(matches!(
            report.rejection,
            Some(SwapRejection::NoiseOverBudget { .. })
        ));

        // Coverage collapse: a table that covers nothing the stream saw.
        let bogus = netclust_rtable::RoutingTable::new(
            "bogus",
            "d0",
            netclust_rtable::TableKind::Bgp,
            vec!["203.0.113.0/24".parse().unwrap()],
        );
        let report = stream.try_swap(MergedTable::merge([&bogus]), ErrorCounts::default());
        assert!(matches!(
            report.rejection,
            Some(SwapRejection::CoverageCollapse { .. })
        ));

        // After three rejections: view identical, degraded-mode age = 3.
        assert_eq!(stream.top_k(usize::MAX), before);
        assert!((stream.coverage() - coverage).abs() < 1e-12);
        let stats = stream.swap_stats();
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.stale_age, 3);
        assert_eq!(stream.last_rejection(), report.rejection);

        // A good candidate then clears degraded mode (1 % noise is under
        // the default 5 % budget).
        let ok = stream.try_swap(standard_merged(&u, 7), ErrorCounts::new(100, 1));
        assert!(ok.accepted);
        assert_eq!(stream.swap_stats().stale_age, 0);
        assert_eq!(stream.last_rejection(), None);
    }

    #[test]
    fn swap_metrics_reach_the_registry() {
        let (u, log) = setup();
        let obs = Obs::enabled();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0))
            .obs(obs.clone())
            .build();
        for r in &log.requests {
            stream.push(r);
        }
        let empty = MergedTable::merge(std::iter::empty());
        stream.try_swap(empty, ErrorCounts::default());
        stream.try_swap(standard_merged(&u, 7), ErrorCounts::default());
        let snap = obs.snapshot(true);
        assert_eq!(snap.counters.get("stream.swap.attempts"), Some(&2));
        assert_eq!(snap.counters.get("stream.swap.accepted"), Some(&1));
        assert_eq!(snap.counters.get("stream.swap.rejected"), Some(&1));
        assert_eq!(snap.gauges.get("stream.swap.stale_age"), Some(&0));
        // The serving table resolved its LPM counters against the same
        // registry: pushes and the swap validation sweep were counted.
        assert!(snap.counters.get("lpm.lookups").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn injected_compile_fault_is_survivable() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        let before = stream.top_k(usize::MAX);
        let mut faults = crate::FaultPlan::new(42)
            .with(failpoints::SWAP_COMPILE, 1.0)
            .injector();
        let report =
            stream.try_swap_with(standard_merged(&u, 7), ErrorCounts::default(), &mut faults);
        assert!(!report.accepted);
        assert_eq!(report.rejection, Some(SwapRejection::CompileFault));
        // Old table keeps serving, untouched.
        assert_eq!(stream.top_k(usize::MAX), before);
        assert_eq!(faults.fired(failpoints::SWAP_COMPILE), 1);
        // Retrying with the fault disarmed succeeds.
        let ok = stream.try_swap(standard_merged(&u, 7), ErrorCounts::default());
        assert!(ok.accepted);
    }

    /// The streaming view after any sequence of patches/swaps must equal a
    /// from-scratch re-resolution of every retained client against the
    /// serving table — the incremental aggregate moves cannot drift.
    fn assert_view_consistent(stream: &StreamingClustering) {
        let handle = stream.handle();
        let mut clusters: HashMap<Ipv4Net, StreamStats> = HashMap::new();
        let mut unclustered = 0u64;
        for (&client, &(requests, bytes)) in &stream.per_client {
            assert_eq!(
                stream.assignment.get(&client).copied(),
                Some(handle.net_for_u32(client)),
                "memoized assignment for {client:#010x} disagrees with the serving table"
            );
            match handle.net_for_u32(client) {
                Some(net) => {
                    let s = clusters.entry(net).or_default();
                    s.clients += 1;
                    s.requests += requests;
                    s.bytes += bytes;
                }
                None => unclustered += requests,
            }
        }
        assert_eq!(stream.clusters, clusters);
        assert_eq!(stream.unclustered_requests, unclustered);
    }

    #[test]
    fn patch_batches_track_live_routing_changes() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        assert_view_consistent(&stream);
        let before_total = stream.total_requests();
        let handle = stream.handle();

        // Withdraw the busiest cluster's prefix: its clients must remap to
        // a covering prefix or become unclustered, everyone else untouched.
        let (busiest, busy_stats) = stream.top_k(1)[0];
        let report = stream.apply_deltas(&[TableDelta::withdraw(busiest)]);
        assert!(report.accepted, "rejected: {:?}", report.rejection);
        assert!(report.patch.patched_in_place());
        assert!(report.reassigned_clients as u64 >= busy_stats.clients);
        assert_eq!(stream.stats(busiest), None);
        assert_view_consistent(&stream);

        // Re-announce it: the clients move back.
        let report = stream.apply_deltas(&[TableDelta::announce(busiest)]);
        assert!(report.accepted);
        assert_eq!(
            stream.stats(busiest),
            Some(busy_stats),
            "announce must restore the withdrawn cluster exactly"
        );
        assert_eq!(stream.total_requests(), before_total);
        assert_view_consistent(&stream);

        // The stream's own epoch handle tracked both publishes.
        assert_eq!(stream.table_version(), 2);
        assert_eq!(handle.version(), 2);
        let stats = stream.patch_stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.accepted, 2);
        assert!(stats.slot_writes > 0);
    }

    #[test]
    fn patch_equals_full_swap_of_same_prefix_set() {
        // Patching prefixes in and out must serve the same lookups as a
        // stream rebuilt over the final table (swap path), client for
        // client.
        let (u, log) = setup();
        let mut patched = StreamingClustering::builder(standard_merged(&u, 0)).build();
        let mut swapped = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            patched.push(r);
            swapped.push(r);
        }
        let victims: Vec<Ipv4Net> = patched.top_k(3).iter().map(|&(p, _)| p).collect();
        let deltas: Vec<TableDelta> = victims.iter().map(|&p| TableDelta::withdraw(p)).collect();
        let report = patched.apply_deltas(&deltas);
        assert!(report.accepted, "rejected: {:?}", report.rejection);

        // Build the equivalent full table: day-0 BGP tier minus the
        // victims, compiled from scratch through the swap path.
        let merged = standard_merged(&u, 0);
        let keep: Vec<Ipv4Net> = merged
            .bgp_prefixes()
            .iter()
            .copied()
            .filter(|p| !victims.contains(p))
            .collect();
        let bgp = netclust_rtable::RoutingTable::new(
            "patched-equiv",
            "d0",
            netclust_rtable::TableKind::Bgp,
            keep,
        );
        let dump = netclust_rtable::RoutingTable::new(
            "dump-equiv",
            "d0",
            netclust_rtable::TableKind::NetworkDump,
            merged.dump_prefixes(),
        );
        swapped.swap_table(MergedTable::merge([&bgp, &dump]));
        assert_eq!(patched.top_k(usize::MAX), swapped.top_k(usize::MAX));
        assert!((patched.coverage() - swapped.coverage()).abs() < 1e-12);
        assert_view_consistent(&patched);
    }

    #[test]
    fn patch_coverage_gate_rejects_and_preserves_serving_table() {
        // Two BGP prefixes, no dump tier to fall back to: withdrawing the
        // busy one would strand nearly every client, so the retention gate
        // must fire (with enough entries left that the entry floor does
        // not trip first).
        let bgp = netclust_rtable::RoutingTable::new(
            "only",
            "d0",
            netclust_rtable::TableKind::Bgp,
            vec![
                "10.0.0.0/8".parse().unwrap(),
                "192.168.0.0/16".parse().unwrap(),
            ],
        );
        let mut stream = StreamingClustering::builder(MergedTable::merge([&bgp]))
            .swap_policy(SwapPolicy {
                min_coverage_retention: 1.0, // no regression allowed
                ..SwapPolicy::default()
            })
            .build();
        for host in 0..50u32 {
            stream.push_raw(0x0A00_0000 + host, 100);
        }
        stream.push_raw(0xC0A8_0001, 100);
        assert_eq!(stream.coverage(), 1.0);
        let before = stream.top_k(usize::MAX);
        let version = stream.table_version();
        let deltas = vec![TableDelta::withdraw("10.0.0.0/8".parse().unwrap())];
        let report = stream.apply_deltas(&deltas);
        assert!(!report.accepted);
        assert!(matches!(
            report.rejection,
            Some(SwapRejection::CoverageCollapse { .. })
        ));
        assert!(report.coverage_after <= report.coverage_before);
        // Old generation intact: view, version, and lookups unchanged.
        assert_eq!(stream.top_k(usize::MAX), before);
        assert_eq!(stream.table_version(), version);
        assert_eq!(stream.patch_stats().rejected, 1);
        assert_eq!(stream.last_rejection(), report.rejection);
        assert_view_consistent(&stream);
    }

    #[test]
    fn injected_patch_fault_discards_candidate() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        let before = stream.top_k(usize::MAX);
        let (target, _) = before[0];
        let mut faults = crate::FaultPlan::new(7)
            .with(failpoints::TABLE_PATCH, 1.0)
            .injector();
        let report = stream.apply_deltas_with(&[TableDelta::withdraw(target)], &mut faults);
        assert!(!report.accepted);
        assert_eq!(report.rejection, Some(SwapRejection::PatchFault));
        assert_eq!(faults.fired(failpoints::TABLE_PATCH), 1);
        // Old generation serves untouched.
        assert_eq!(stream.top_k(usize::MAX), before);
        assert!(stream.stats(target).is_some());
        assert_view_consistent(&stream);
        // Disarmed retry applies.
        let report = stream.apply_deltas(&[TableDelta::withdraw(target)]);
        assert!(report.accepted);
        assert_eq!(stream.stats(target), None);
        assert_view_consistent(&stream);
    }

    #[test]
    fn patch_metrics_reach_the_registry() {
        let (u, log) = setup();
        let obs = Obs::enabled();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0))
            .obs(obs.clone())
            .build();
        for r in &log.requests {
            stream.push(r);
        }
        let (busiest, _) = stream.top_k(1)[0];
        stream.apply_deltas(&[TableDelta::withdraw(busiest)]);
        stream.apply_deltas(&[TableDelta::announce(busiest)]);
        let snap = obs.snapshot(true);
        assert_eq!(snap.counters.get("stream.patch.batches"), Some(&2));
        assert!(
            snap.counters
                .get("stream.patch.slot_writes")
                .copied()
                .unwrap_or(0)
                > 0
        );
        assert!(snap.histograms.contains_key("stream.patch.batch_deltas"));
        assert_eq!(snap.gauges.get("stream.epoch.lag"), Some(&0));
    }

    #[test]
    fn incremental_queries_mid_stream() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        assert!(stream.is_empty());
        assert_eq!(stream.coverage(), 0.0);
        let half = log.requests.len() / 2;
        for r in &log.requests[..half] {
            stream.push(r);
        }
        let mid = stream.top_k(3);
        assert!(!mid.is_empty());
        for r in &log.requests[half..] {
            stream.push(r);
        }
        let end = stream.top_k(3);
        assert!(end[0].1.requests >= mid[0].1.requests);
        // cluster_of answers for seen clients.
        let client = log.requests[0].client_addr();
        assert_eq!(
            stream.cluster_of(client).is_some(),
            standard_merged(&u, 0).lookup(client).is_some()
        );
    }
}
