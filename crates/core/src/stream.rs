//! Real-time (streaming) cluster identification (§4).
//!
//! "The real-time client clustering information ... gives the service
//! provider a global view of where their customers are located and how
//! their demands change from time to time." [`StreamingClustering`]
//! consumes requests one at a time, maintains per-cluster aggregates
//! incrementally, and supports swapping in a fresh routing table
//! ([`StreamingClustering::try_swap`]) so the view adapts to routing
//! dynamics without replaying the past — the paper's "real-time cluster
//! identifying ... using real-time routing information".
//!
//! Table swaps are *validated*: BGP snapshots are scraped from noisy
//! sources and churn day to day (§3.4), so a candidate table is
//! sanity-checked (non-empty, parse noise under budget, coverage of the
//! currently-known clients not collapsing) and compiled off to the side
//! before it replaces the serving table. A rejected candidate leaves the
//! old table serving — degraded but correct — with the rejection and the
//! stale-table age recorded in [`SwapStats`].

use std::collections::HashMap;
use std::net::Ipv4Addr;

use netclust_obs::{Counter, ErrorCounts, Gauge, Obs};
use netclust_prefix::Ipv4Net;
use netclust_rtable::{CompiledMerged, MergedTable};
use netclust_weblog::clf::ClfError;
use netclust_weblog::clf_bytes;
use netclust_weblog::Request;

use crate::faults::{failpoints, FaultInjector};

/// Resolved swap-path observability handles (`stream.swap.*`); inert when
/// the stream was built without [`StreamingBuilder::obs`].
#[derive(Debug, Clone, Default)]
struct StreamObs {
    attempts: Counter,
    accepted: Counter,
    rejected: Counter,
    stale_age: Gauge,
}

impl StreamObs {
    fn resolve(obs: &Obs) -> Self {
        StreamObs {
            attempts: obs.counter("stream.swap.attempts"),
            accepted: obs.counter("stream.swap.accepted"),
            rejected: obs.counter("stream.swap.rejected"),
            stale_age: obs.gauge("stream.swap.stale_age"),
        }
    }
}

/// Incremental per-cluster aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Distinct clients seen.
    pub clients: u64,
    /// Requests seen.
    pub requests: u64,
    /// Bytes served.
    pub bytes: u64,
}

/// Thresholds a candidate routing table must clear before it replaces the
/// serving one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapPolicy {
    /// Minimum prefix count across both tiers (an empty or near-empty
    /// snapshot is a scrape failure, not a routing change).
    pub min_entries: usize,
    /// Maximum tolerated parse-noise ratio of the candidate's source dump
    /// (see `netclust_rtable::ParseReport::noise_ratio`).
    pub max_noise_ratio: f64,
    /// The candidate's request-weighted coverage of the currently-known
    /// clients must be at least this fraction of the serving table's
    /// coverage (1.0 = no regression allowed, 0.0 = never reject).
    pub min_coverage_retention: f64,
}

impl Default for SwapPolicy {
    fn default() -> Self {
        SwapPolicy {
            min_entries: 1,
            max_noise_ratio: 0.05,
            min_coverage_retention: 0.8,
        }
    }
}

impl SwapPolicy {
    /// A policy that accepts any compilable candidate (the legacy
    /// unconditional swap).
    pub fn permissive() -> Self {
        SwapPolicy {
            min_entries: 0,
            max_noise_ratio: 1.0,
            min_coverage_retention: 0.0,
        }
    }
}

/// Why a candidate table was turned away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwapRejection {
    /// The candidate had fewer prefixes than the policy floor.
    TooFewEntries {
        /// Prefixes in the candidate.
        entries: usize,
        /// The policy's minimum.
        floor: usize,
    },
    /// The candidate's source dump was noisier than the budget allows.
    NoiseOverBudget {
        /// Observed malformed-line ratio.
        ratio: f64,
        /// The policy's budget.
        budget: f64,
    },
    /// Compiling the candidate failed (injected fault or real).
    CompileFault,
    /// The candidate would drop coverage of the known clients too far.
    CoverageCollapse {
        /// Serving table's request-weighted coverage.
        before: f64,
        /// Candidate's request-weighted coverage.
        after: f64,
        /// Minimum acceptable `after` given the policy.
        floor: f64,
    },
}

/// Outcome of one [`StreamingClustering::try_swap`] attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapReport {
    /// Whether the candidate was installed.
    pub accepted: bool,
    /// The reason it was not (when `accepted` is false).
    pub rejection: Option<SwapRejection>,
    /// Prefix count of the candidate.
    pub candidate_entries: usize,
    /// Request-weighted coverage before the attempt.
    pub coverage_before: f64,
    /// Coverage after the attempt (the candidate's when accepted, the
    /// serving table's when rejected).
    pub coverage_after: f64,
}

/// Cumulative swap accounting, including the degraded-mode age counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Candidates installed.
    pub accepted: u64,
    /// Candidates rejected.
    pub rejected: u64,
    /// Rejections since the serving table was last replaced — how many
    /// refresh cycles stale the serving table is (0 = fresh). Non-zero
    /// means the stream is serving in degraded mode on an old table.
    pub stale_age: u64,
}

/// Consuming builder for [`StreamingClustering`], mirroring
/// [`IngestPipeline`](crate::IngestPipeline)'s `chunk_bytes(..)`-style
/// configuration surface: chain options, then [`build`](Self::build).
///
/// ```
/// # use netclust_core::{StreamingClustering, SwapPolicy};
/// # use netclust_netgen::{standard_merged, Universe, UniverseConfig};
/// # let u = Universe::generate(UniverseConfig::small(7));
/// let stream = StreamingClustering::builder(standard_merged(&u, 0))
///     .swap_policy(SwapPolicy::default())
///     .build();
/// # assert!(stream.is_empty());
/// ```
pub struct StreamingBuilder {
    table: MergedTable,
    policy: SwapPolicy,
    obs: Obs,
}

impl StreamingBuilder {
    /// Sets the validation thresholds every [`try_swap`]
    /// (`StreamingClustering::try_swap`) attempt is checked against
    /// (default: [`SwapPolicy::default`]).
    ///
    /// [`try_swap`]: StreamingClustering::try_swap
    pub fn swap_policy(mut self, policy: SwapPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches an observability registry: LPM lookup/miss counters on the
    /// compiled table (`lpm.*`) and swap accounting (`stream.swap.*`).
    /// Costs nothing when `obs` is disabled.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Compiles the table to the flat DIR-24-8 layout and builds the
    /// (empty) streaming clustering.
    pub fn build(self) -> StreamingClustering {
        let mut table = self.table.compile();
        table.attach_obs(&self.obs);
        let metrics = StreamObs::resolve(&self.obs);
        StreamingClustering {
            table,
            clusters: HashMap::new(),
            per_client: HashMap::new(),
            assignment: HashMap::new(),
            unclustered_requests: 0,
            total_requests: 0,
            clf_counts: ErrorCounts::default(),
            swap_stats: SwapStats::default(),
            last_rejection: None,
            policy: self.policy,
            obs: self.obs,
            metrics,
        }
    }
}

/// An incrementally-maintained clustering over a request stream.
///
/// The routing table is compiled once at construction to the flat DIR-24-8
/// layout ([`CompiledMerged`]), so the per-request hot path does O(1)–O(2)
/// array lookups; [`try_swap`](Self::try_swap) validates and recompiles.
///
/// Construct with [`builder`](Self::builder):
/// `StreamingClustering::builder(table).swap_policy(..).obs(..).build()`.
pub struct StreamingClustering {
    table: CompiledMerged,
    /// Per-cluster aggregates.
    clusters: HashMap<Ipv4Net, StreamStats>,
    /// Per-client totals (kept so a table swap can rebuild assignments
    /// without replaying the stream).
    per_client: HashMap<u32, (u64, u64)>,
    /// Memoized client → prefix assignment under the current table.
    assignment: HashMap<u32, Option<Ipv4Net>>,
    /// Requests from unclusterable clients.
    unclustered_requests: u64,
    total_requests: u64,
    /// Raw-CLF ingest accounting: lines consumed by
    /// [`push_clf`](Self::push_clf) vs lines quarantined as malformed.
    clf_counts: ErrorCounts,
    /// Swap acceptance/rejection accounting.
    swap_stats: SwapStats,
    /// The most recent rejection, for operators polling stats.
    last_rejection: Option<SwapRejection>,
    /// Thresholds applied by [`try_swap`](Self::try_swap).
    policy: SwapPolicy,
    /// Registry swapped-in tables resolve their LPM counters against.
    obs: Obs,
    /// Resolved swap-path counters/gauge.
    metrics: StreamObs,
}

impl StreamingClustering {
    /// Starts building a streaming clustering over `table`; finish with
    /// [`StreamingBuilder::build`].
    pub fn builder(table: MergedTable) -> StreamingBuilder {
        StreamingBuilder {
            table,
            policy: SwapPolicy::default(),
            obs: Obs::disabled(),
        }
    }

    /// Creates an empty streaming clustering over `table`, compiling it
    /// for flat lookups.
    #[deprecated(note = "use `StreamingClustering::builder(table).build()`")]
    pub fn new(table: MergedTable) -> Self {
        Self::builder(table).build()
    }

    /// Feeds one request.
    pub fn push(&mut self, request: &Request) {
        self.push_raw(request.client, request.bytes as u64);
    }

    /// Feeds a buffer of raw Common Log Format bytes through the
    /// zero-copy parser — no `Log` is built and nothing is interned.
    /// Malformed lines are skipped and returned (line numbers are
    /// 0-based within `data`, matching the batch parsers).
    pub fn push_clf(&mut self, data: &[u8]) -> Vec<ClfError> {
        let mut errors = Vec::new();
        let mut lines = 0u64;
        for item in clf_bytes::records(data, 0) {
            lines += 1;
            match item {
                Ok((_, r)) => self.push_raw(r.addr, r.bytes as u64),
                Err(e) => errors.push(e),
            }
        }
        self.clf_counts
            .merge(ErrorCounts::new(lines, errors.len() as u64));
        errors
    }

    /// Cumulative [`push_clf`](Self::push_clf) accounting: every raw line
    /// consumed vs the lines quarantined as malformed. Quarantined lines
    /// never become requests, so they are reported here and excluded from
    /// [`coverage`](Self::coverage)'s denominator.
    pub fn clf_counts(&self) -> ErrorCounts {
        self.clf_counts
    }

    fn push_raw(&mut self, client: u32, bytes: u64) {
        self.total_requests += 1;
        let entry = self.per_client.entry(client).or_insert((0, 0));
        let is_new_client = entry.0 == 0;
        entry.0 += 1;
        entry.1 += bytes;
        let prefix = *self
            .assignment
            .entry(client)
            .or_insert_with(|| self.table.net_for_u32(client));
        match prefix {
            Some(net) => {
                let stats = self.clusters.entry(net).or_default();
                if is_new_client {
                    stats.clients += 1;
                }
                stats.requests += 1;
                stats.bytes += bytes;
            }
            None => self.unclustered_requests += 1,
        }
    }

    /// Number of clusters with at least one request.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` before any clustered request arrives.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Total requests consumed.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Aggregates for one cluster prefix.
    pub fn stats(&self, prefix: Ipv4Net) -> Option<StreamStats> {
        self.clusters.get(&prefix).copied()
    }

    /// The cluster a client currently maps to.
    pub fn cluster_of(&self, addr: Ipv4Addr) -> Option<Ipv4Net> {
        self.assignment.get(&u32::from(addr)).copied().flatten()
    }

    /// Fraction of *parsed* requests that were clusterable. Lines
    /// quarantined by [`push_clf`](Self::push_clf) never became requests
    /// and are excluded from the denominator — they are accounted in
    /// [`clf_counts`](Self::clf_counts), not as clustered misses — so log
    /// corruption cannot dilute coverage.
    pub fn coverage(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            1.0 - self.unclustered_requests as f64 / self.total_requests as f64
        }
    }

    /// The current top-`k` clusters by request count (ties broken by
    /// prefix for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(Ipv4Net, StreamStats)> {
        // analyze:allow(determinism) collected then sorted with a prefix
        // tie-break below.
        let mut v: Vec<(Ipv4Net, StreamStats)> =
            self.clusters.iter().map(|(&p, &s)| (p, s)).collect();
        v.sort_by(|a, b| b.1.requests.cmp(&a.1.requests).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Swap accounting: accepted/rejected counts and the stale-table age.
    pub fn swap_stats(&self) -> SwapStats {
        self.swap_stats
    }

    /// The most recent swap rejection, if any.
    pub fn last_rejection(&self) -> Option<SwapRejection> {
        self.last_rejection
    }

    /// Swaps in a fresh routing table unconditionally (adaptation to
    /// routing dynamics): recompiles it and rebuilds the cluster view from
    /// the retained per-client totals with one batch LPM sweep — no stream
    /// replay needed. Prefer [`try_swap`](Self::try_swap), which validates
    /// the candidate first.
    pub fn swap_table(&mut self, table: MergedTable) {
        let mut compiled = table.compile();
        compiled.attach_obs(&self.obs);
        // analyze:allow(determinism) install() aggregates commutatively per
        // cluster; client order cannot reach any output.
        let clients: Vec<u32> = self.per_client.keys().copied().collect();
        let nets = compiled.net_for_batch(&clients);
        self.install(compiled, clients, nets);
        self.swap_stats.accepted += 1;
        self.swap_stats.stale_age = 0;
        self.metrics.attempts.inc();
        self.metrics.accepted.inc();
        self.metrics.stale_age.set(0);
    }

    /// Validated two-phase table swap: the candidate is sanity-checked and
    /// compiled *off to the side*; only a candidate that parses cleanly
    /// enough, compiles, and keeps covering the clients the stream has
    /// already seen replaces the serving table. On rejection the old table
    /// keeps serving untouched and the stale-age counter grows.
    ///
    /// `noise` is the candidate's source parse-noise accounting
    /// ([`ErrorCounts::default`] for programmatically built tables; see
    /// `netclust_rtable::ParseReport::counts`). The thresholds come from
    /// the policy configured at build time
    /// ([`StreamingBuilder::swap_policy`]).
    pub fn try_swap(&mut self, table: MergedTable, noise: ErrorCounts) -> SwapReport {
        self.try_swap_with(table, noise, &mut FaultInjector::disabled())
    }

    /// [`try_swap`](Self::try_swap) with a fault injector: the
    /// [`failpoints::SWAP_COMPILE`] failpoint simulates the candidate
    /// compile dying, which must be survivable like any other rejection.
    pub fn try_swap_with(
        &mut self,
        table: MergedTable,
        noise: ErrorCounts,
        faults: &mut FaultInjector,
    ) -> SwapReport {
        let policy = self.policy;
        self.try_swap_inner(table, noise.ratio(), &policy, faults)
    }

    /// Validated swap with an explicit policy and a raw noise ratio.
    #[deprecated(note = "configure the policy via `StreamingBuilder::swap_policy` \
                         and call `try_swap(table, noise_counts)`")]
    pub fn try_swap_table(
        &mut self,
        table: MergedTable,
        noise_ratio: f64,
        policy: &SwapPolicy,
    ) -> SwapReport {
        self.try_swap_inner(table, noise_ratio, policy, &mut FaultInjector::disabled())
    }

    /// Validated swap with an explicit policy, raw noise ratio, and fault
    /// injector.
    #[deprecated(note = "configure the policy via `StreamingBuilder::swap_policy` \
                         and call `try_swap_with(table, noise_counts, faults)`")]
    pub fn try_swap_table_with(
        &mut self,
        table: MergedTable,
        noise_ratio: f64,
        policy: &SwapPolicy,
        faults: &mut FaultInjector,
    ) -> SwapReport {
        self.try_swap_inner(table, noise_ratio, policy, faults)
    }

    fn try_swap_inner(
        &mut self,
        table: MergedTable,
        noise_ratio: f64,
        policy: &SwapPolicy,
        faults: &mut FaultInjector,
    ) -> SwapReport {
        self.metrics.attempts.inc();
        let candidate_entries = table.len();
        let coverage_before = self.coverage();
        let reject = |this: &mut Self, why: SwapRejection| {
            this.swap_stats.rejected += 1;
            this.swap_stats.stale_age += 1;
            this.last_rejection = Some(why);
            this.metrics.rejected.inc();
            this.metrics.stale_age.set(this.swap_stats.stale_age);
            SwapReport {
                accepted: false,
                rejection: Some(why),
                candidate_entries,
                coverage_before,
                coverage_after: coverage_before,
            }
        };

        if candidate_entries < policy.min_entries {
            return reject(
                self,
                SwapRejection::TooFewEntries {
                    entries: candidate_entries,
                    floor: policy.min_entries,
                },
            );
        }
        if noise_ratio > policy.max_noise_ratio {
            return reject(
                self,
                SwapRejection::NoiseOverBudget {
                    ratio: noise_ratio,
                    budget: policy.max_noise_ratio,
                },
            );
        }
        // Compile off to the side; the serving table stays untouched, so
        // an injected (or real) compile failure degrades, never corrupts.
        if faults.should_fire(failpoints::SWAP_COMPILE) {
            return reject(self, SwapRejection::CompileFault);
        }
        let mut compiled = table.compile();
        compiled.attach_obs(&self.obs);

        // Re-resolve every known client against the candidate and check
        // request-weighted coverage retention before committing.
        // analyze:allow(determinism) feeds a commutative sum and install()'s
        // commutative aggregation; order cannot reach any output.
        let clients: Vec<u32> = self.per_client.keys().copied().collect();
        let nets = compiled.net_for_batch(&clients);
        if self.total_requests > 0 {
            let clustered: u64 = clients
                .iter()
                .zip(&nets)
                .filter(|(_, net)| net.is_some())
                .map(|(c, _)| self.per_client[c].0)
                .sum();
            let coverage_after = clustered as f64 / self.total_requests as f64;
            let floor = coverage_before * policy.min_coverage_retention;
            if coverage_after < floor {
                return reject(
                    self,
                    SwapRejection::CoverageCollapse {
                        before: coverage_before,
                        after: coverage_after,
                        floor,
                    },
                );
            }
        }

        self.install(compiled, clients, nets);
        self.swap_stats.accepted += 1;
        self.swap_stats.stale_age = 0;
        self.last_rejection = None;
        self.metrics.accepted.inc();
        self.metrics.stale_age.set(0);
        SwapReport {
            accepted: true,
            rejection: None,
            candidate_entries,
            coverage_before,
            coverage_after: self.coverage(),
        }
    }

    /// Installs an already-compiled table, rebuilding cluster aggregates
    /// from the retained per-client totals and the batch LPM sweep
    /// (`nets[i]` is `clients[i]`'s assignment under the new table).
    fn install(&mut self, compiled: CompiledMerged, clients: Vec<u32>, nets: Vec<Option<Ipv4Net>>) {
        self.table = compiled;
        self.assignment.clear();
        self.clusters.clear();
        self.unclustered_requests = 0;
        for (client, prefix) in clients.into_iter().zip(nets) {
            let (requests, bytes) = self.per_client[&client];
            self.assignment.insert(client, prefix);
            match prefix {
                Some(net) => {
                    let stats = self.clusters.entry(net).or_default();
                    stats.clients += 1;
                    stats.requests += requests;
                    stats.bytes += bytes;
                }
                None => self.unclustered_requests += requests,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use netclust_netgen::{standard_merged, Universe, UniverseConfig};
    use netclust_weblog::{generate, LogSpec};

    fn setup() -> (Universe, netclust_weblog::Log) {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut spec = LogSpec::tiny("st", 13);
        spec.total_requests = 8_000;
        spec.target_clients = 300;
        let log = generate(&u, &spec);
        (u, log)
    }

    #[test]
    fn streaming_matches_batch() {
        let (u, log) = setup();
        let merged = standard_merged(&u, 0);
        let batch = Clustering::network_aware(&log, &merged);
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        assert_eq!(stream.len(), batch.len());
        assert_eq!(stream.total_requests(), log.requests.len() as u64);
        for cluster in &batch.clusters {
            let s = stream.stats(cluster.prefix).expect("cluster present");
            assert_eq!(s.requests, cluster.requests, "{}", cluster.prefix);
            assert_eq!(s.clients, cluster.client_count() as u64);
            assert_eq!(s.bytes, cluster.bytes);
        }
        // Coverage agrees (request-weighted vs client-weighted differ, so
        // compare against the request tally directly).
        let unclustered_reqs: u64 = batch.unclustered.iter().map(|c| c.requests).sum();
        let expect = 1.0 - unclustered_reqs as f64 / log.requests.len() as f64;
        assert!((stream.coverage() - expect).abs() < 1e-12);
    }

    #[test]
    fn push_clf_matches_push() {
        let (u, log) = setup();
        let mut by_request = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            by_request.push(r);
        }
        let mut by_bytes = StreamingClustering::builder(standard_merged(&u, 0)).build();
        let text = netclust_weblog::clf::to_clf(&log);
        let errors = by_bytes.push_clf(text.as_bytes());
        assert!(errors.is_empty());
        assert_eq!(by_bytes.total_requests(), by_request.total_requests());
        assert_eq!(by_bytes.len(), by_request.len());
        for (prefix, stats) in by_request.top_k(usize::MAX) {
            assert_eq!(by_bytes.stats(prefix), Some(stats), "{prefix}");
        }
        assert!((by_bytes.coverage() - by_request.coverage()).abs() < 1e-12);
        // Malformed lines are surfaced, well-formed ones still land.
        let mut s = StreamingClustering::builder(standard_merged(&u, 0)).build();
        let errs = s.push_clf(
            b"bogus\n1.2.3.4 - - [13/Feb/1998:07:00:00 +0000] \"GET /x HTTP/1.0\" 200 10\n",
        );
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].line, 0);
        assert_eq!(s.total_requests(), 1);
        // Quarantined lines land in clf_counts, not in coverage's
        // denominator: the one parsed request is clustered or not on its
        // own terms.
        assert_eq!(s.clf_counts(), ErrorCounts::new(2, 1));
    }

    #[test]
    fn top_k_tracks_busiest() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        let top = stream.top_k(5);
        assert_eq!(top.len(), 5.min(stream.len()));
        assert!(top.windows(2).all(|w| w[0].1.requests >= w[1].1.requests));
        // The top cluster matches the batch busiest.
        let merged = standard_merged(&u, 0);
        let batch = Clustering::network_aware(&log, &merged);
        assert_eq!(top[0].1.requests, batch.busiest().unwrap().requests);
    }

    #[test]
    fn table_swap_rebuilds_consistently() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        let before_total = stream.total_requests();
        // Swap to day 7's table: the view must equal a batch clustering
        // against that table.
        stream.swap_table(standard_merged(&u, 7));
        assert_eq!(stream.total_requests(), before_total);
        let batch = Clustering::network_aware(&log, &standard_merged(&u, 7));
        assert_eq!(stream.len(), batch.len());
        for cluster in &batch.clusters {
            let s = stream.stats(cluster.prefix).expect("present after swap");
            assert_eq!(s.requests, cluster.requests);
        }
    }

    #[test]
    fn validated_swap_equals_unconditional_swap() {
        let (u, log) = setup();
        let mut validated = StreamingClustering::builder(standard_merged(&u, 0)).build();
        let mut legacy = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            validated.push(r);
            legacy.push(r);
        }
        let report = validated.try_swap(standard_merged(&u, 7), ErrorCounts::default());
        assert!(report.accepted, "rejected: {:?}", report.rejection);
        legacy.swap_table(standard_merged(&u, 7));
        // Accepted validated swap is byte-identical to the unconditional
        // rebuild from retained per-client totals.
        assert_eq!(validated.total_requests(), legacy.total_requests());
        assert_eq!(validated.len(), legacy.len());
        assert_eq!(validated.top_k(usize::MAX), legacy.top_k(usize::MAX));
        assert!((validated.coverage() - legacy.coverage()).abs() < 1e-12);
        assert_eq!(validated.swap_stats().accepted, 1);
        assert_eq!(validated.swap_stats().stale_age, 0);
        assert_eq!(validated.last_rejection(), None);
    }

    #[test]
    fn rejected_swap_leaves_view_untouched() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        let before = stream.top_k(usize::MAX);
        let coverage = stream.coverage();

        // Empty candidate: a scrape failure, not a routing change.
        let empty = MergedTable::merge(std::iter::empty());
        let report = stream.try_swap(empty, ErrorCounts::default());
        assert!(!report.accepted);
        assert!(matches!(
            report.rejection,
            Some(SwapRejection::TooFewEntries {
                entries: 0,
                floor: 1
            })
        ));

        // Over-noisy source dump (1 malformed line in 2 = 50 % noise).
        let report = stream.try_swap(standard_merged(&u, 7), ErrorCounts::new(2, 1));
        assert!(matches!(
            report.rejection,
            Some(SwapRejection::NoiseOverBudget { .. })
        ));

        // Coverage collapse: a table that covers nothing the stream saw.
        let bogus = netclust_rtable::RoutingTable::new(
            "bogus",
            "d0",
            netclust_rtable::TableKind::Bgp,
            vec!["203.0.113.0/24".parse().unwrap()],
        );
        let report = stream.try_swap(MergedTable::merge([&bogus]), ErrorCounts::default());
        assert!(matches!(
            report.rejection,
            Some(SwapRejection::CoverageCollapse { .. })
        ));

        // After three rejections: view identical, degraded-mode age = 3.
        assert_eq!(stream.top_k(usize::MAX), before);
        assert!((stream.coverage() - coverage).abs() < 1e-12);
        let stats = stream.swap_stats();
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.stale_age, 3);
        assert_eq!(stream.last_rejection(), report.rejection);

        // A good candidate then clears degraded mode (1 % noise is under
        // the default 5 % budget).
        let ok = stream.try_swap(standard_merged(&u, 7), ErrorCounts::new(100, 1));
        assert!(ok.accepted);
        assert_eq!(stream.swap_stats().stale_age, 0);
        assert_eq!(stream.last_rejection(), None);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_builder_surface() {
        // `new` and the explicit-policy `try_swap_table*` shims are kept
        // for one release; they must behave exactly like the builder path.
        let (u, log) = setup();
        let mut legacy = StreamingClustering::new(standard_merged(&u, 0));
        let mut fresh = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            legacy.push(r);
            fresh.push(r);
        }
        assert_eq!(legacy.top_k(usize::MAX), fresh.top_k(usize::MAX));
        // Per-call policy on the shim overrides nothing in the builder
        // path: a permissive policy accepts what the default rejects.
        let empty = MergedTable::merge(std::iter::empty());
        let report = legacy.try_swap_table(empty, 0.0, &SwapPolicy::permissive());
        assert!(report.accepted, "rejected: {:?}", report.rejection);
        let report = legacy.try_swap_table_with(
            standard_merged(&u, 7),
            0.0,
            &SwapPolicy::default(),
            &mut FaultInjector::disabled(),
        );
        assert!(report.accepted);
        assert_eq!(legacy.swap_stats().accepted, 2);
    }

    #[test]
    fn swap_metrics_reach_the_registry() {
        let (u, log) = setup();
        let obs = Obs::enabled();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0))
            .obs(obs.clone())
            .build();
        for r in &log.requests {
            stream.push(r);
        }
        let empty = MergedTable::merge(std::iter::empty());
        stream.try_swap(empty, ErrorCounts::default());
        stream.try_swap(standard_merged(&u, 7), ErrorCounts::default());
        let snap = obs.snapshot(true);
        assert_eq!(snap.counters.get("stream.swap.attempts"), Some(&2));
        assert_eq!(snap.counters.get("stream.swap.accepted"), Some(&1));
        assert_eq!(snap.counters.get("stream.swap.rejected"), Some(&1));
        assert_eq!(snap.gauges.get("stream.swap.stale_age"), Some(&0));
        // The serving table resolved its LPM counters against the same
        // registry: pushes and the swap validation sweep were counted.
        assert!(snap.counters.get("lpm.lookups").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn injected_compile_fault_is_survivable() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        let before = stream.top_k(usize::MAX);
        let mut faults = crate::FaultPlan::new(42)
            .with(failpoints::SWAP_COMPILE, 1.0)
            .injector();
        let report =
            stream.try_swap_with(standard_merged(&u, 7), ErrorCounts::default(), &mut faults);
        assert!(!report.accepted);
        assert_eq!(report.rejection, Some(SwapRejection::CompileFault));
        // Old table keeps serving, untouched.
        assert_eq!(stream.top_k(usize::MAX), before);
        assert_eq!(faults.fired(failpoints::SWAP_COMPILE), 1);
        // Retrying with the fault disarmed succeeds.
        let ok = stream.try_swap(standard_merged(&u, 7), ErrorCounts::default());
        assert!(ok.accepted);
    }

    #[test]
    fn incremental_queries_mid_stream() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        assert!(stream.is_empty());
        assert_eq!(stream.coverage(), 0.0);
        let half = log.requests.len() / 2;
        for r in &log.requests[..half] {
            stream.push(r);
        }
        let mid = stream.top_k(3);
        assert!(!mid.is_empty());
        for r in &log.requests[half..] {
            stream.push(r);
        }
        let end = stream.top_k(3);
        assert!(end[0].1.requests >= mid[0].1.requests);
        // cluster_of answers for seen clients.
        let client = log.requests[0].client_addr();
        assert_eq!(
            stream.cluster_of(client).is_some(),
            standard_merged(&u, 0).lookup(client).is_some()
        );
    }
}
