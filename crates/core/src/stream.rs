//! Real-time (streaming) cluster identification (§4).
//!
//! "The real-time client clustering information ... gives the service
//! provider a global view of where their customers are located and how
//! their demands change from time to time." [`StreamingClustering`]
//! consumes requests one at a time, maintains per-cluster aggregates
//! incrementally, and supports swapping in a fresh routing table
//! ([`StreamingClustering::swap_table`]) so the view adapts to routing
//! dynamics without replaying the past — the paper's "real-time cluster
//! identifying ... using real-time routing information".

use std::collections::HashMap;
use std::net::Ipv4Addr;

use netclust_prefix::Ipv4Net;
use netclust_rtable::{CompiledMerged, MergedTable};
use netclust_weblog::clf::ClfError;
use netclust_weblog::clf_bytes;
use netclust_weblog::Request;

/// Incremental per-cluster aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Distinct clients seen.
    pub clients: u64,
    /// Requests seen.
    pub requests: u64,
    /// Bytes served.
    pub bytes: u64,
}

/// An incrementally-maintained clustering over a request stream.
///
/// The routing table is compiled once at construction to the flat DIR-24-8
/// layout ([`CompiledMerged`]), so the per-request hot path does O(1)–O(2)
/// array lookups; [`swap_table`](Self::swap_table) recompiles.
pub struct StreamingClustering {
    table: CompiledMerged,
    /// Per-cluster aggregates.
    clusters: HashMap<Ipv4Net, StreamStats>,
    /// Per-client totals (kept so a table swap can rebuild assignments
    /// without replaying the stream).
    per_client: HashMap<u32, (u64, u64)>,
    /// Memoized client → prefix assignment under the current table.
    assignment: HashMap<u32, Option<Ipv4Net>>,
    /// Requests from unclusterable clients.
    unclustered_requests: u64,
    total_requests: u64,
}

impl StreamingClustering {
    /// Creates an empty streaming clustering over `table`, compiling it
    /// for flat lookups.
    pub fn new(table: MergedTable) -> Self {
        StreamingClustering {
            table: table.compile(),
            clusters: HashMap::new(),
            per_client: HashMap::new(),
            assignment: HashMap::new(),
            unclustered_requests: 0,
            total_requests: 0,
        }
    }

    /// Feeds one request.
    pub fn push(&mut self, request: &Request) {
        self.push_raw(request.client, request.bytes as u64);
    }

    /// Feeds a buffer of raw Common Log Format bytes through the
    /// zero-copy parser — no `Log` is built and nothing is interned.
    /// Malformed lines are skipped and returned (line numbers are
    /// 0-based within `data`, matching the batch parsers).
    pub fn push_clf(&mut self, data: &[u8]) -> Vec<ClfError> {
        let mut errors = Vec::new();
        for item in clf_bytes::records(data, 0) {
            match item {
                Ok((_, r)) => self.push_raw(r.addr, r.bytes as u64),
                Err(e) => errors.push(e),
            }
        }
        errors
    }

    fn push_raw(&mut self, client: u32, bytes: u64) {
        self.total_requests += 1;
        let entry = self.per_client.entry(client).or_insert((0, 0));
        let is_new_client = entry.0 == 0;
        entry.0 += 1;
        entry.1 += bytes;
        let prefix = *self
            .assignment
            .entry(client)
            .or_insert_with(|| self.table.net_for_u32(client));
        match prefix {
            Some(net) => {
                let stats = self.clusters.entry(net).or_default();
                if is_new_client {
                    stats.clients += 1;
                }
                stats.requests += 1;
                stats.bytes += bytes;
            }
            None => self.unclustered_requests += 1,
        }
    }

    /// Number of clusters with at least one request.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` before any clustered request arrives.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Total requests consumed.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Aggregates for one cluster prefix.
    pub fn stats(&self, prefix: Ipv4Net) -> Option<StreamStats> {
        self.clusters.get(&prefix).copied()
    }

    /// The cluster a client currently maps to.
    pub fn cluster_of(&self, addr: Ipv4Addr) -> Option<Ipv4Net> {
        self.assignment.get(&u32::from(addr)).copied().flatten()
    }

    /// Fraction of requests that were clusterable.
    pub fn coverage(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            1.0 - self.unclustered_requests as f64 / self.total_requests as f64
        }
    }

    /// The current top-`k` clusters by request count (ties broken by
    /// prefix for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(Ipv4Net, StreamStats)> {
        let mut v: Vec<(Ipv4Net, StreamStats)> =
            self.clusters.iter().map(|(&p, &s)| (p, s)).collect();
        v.sort_by(|a, b| b.1.requests.cmp(&a.1.requests).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Swaps in a fresh routing table (adaptation to routing dynamics):
    /// recompiles it and rebuilds the cluster view from the retained
    /// per-client totals with one batch LPM sweep — no stream replay
    /// needed.
    pub fn swap_table(&mut self, table: MergedTable) {
        self.table = table.compile();
        self.assignment.clear();
        self.clusters.clear();
        self.unclustered_requests = 0;
        let clients: Vec<u32> = self.per_client.keys().copied().collect();
        let nets = self.table.net_for_batch(&clients);
        for (client, prefix) in clients.into_iter().zip(nets) {
            let (requests, bytes) = self.per_client[&client];
            self.assignment.insert(client, prefix);
            match prefix {
                Some(net) => {
                    let stats = self.clusters.entry(net).or_default();
                    stats.clients += 1;
                    stats.requests += requests;
                    stats.bytes += bytes;
                }
                None => self.unclustered_requests += requests,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use netclust_netgen::{standard_merged, Universe, UniverseConfig};
    use netclust_weblog::{generate, LogSpec};

    fn setup() -> (Universe, netclust_weblog::Log) {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut spec = LogSpec::tiny("st", 13);
        spec.total_requests = 8_000;
        spec.target_clients = 300;
        let log = generate(&u, &spec);
        (u, log)
    }

    #[test]
    fn streaming_matches_batch() {
        let (u, log) = setup();
        let merged = standard_merged(&u, 0);
        let batch = Clustering::network_aware(&log, &merged);
        let mut stream = StreamingClustering::new(standard_merged(&u, 0));
        for r in &log.requests {
            stream.push(r);
        }
        assert_eq!(stream.len(), batch.len());
        assert_eq!(stream.total_requests(), log.requests.len() as u64);
        for cluster in &batch.clusters {
            let s = stream.stats(cluster.prefix).expect("cluster present");
            assert_eq!(s.requests, cluster.requests, "{}", cluster.prefix);
            assert_eq!(s.clients, cluster.client_count() as u64);
            assert_eq!(s.bytes, cluster.bytes);
        }
        // Coverage agrees (request-weighted vs client-weighted differ, so
        // compare against the request tally directly).
        let unclustered_reqs: u64 = batch.unclustered.iter().map(|c| c.requests).sum();
        let expect = 1.0 - unclustered_reqs as f64 / log.requests.len() as f64;
        assert!((stream.coverage() - expect).abs() < 1e-12);
    }

    #[test]
    fn push_clf_matches_push() {
        let (u, log) = setup();
        let mut by_request = StreamingClustering::new(standard_merged(&u, 0));
        for r in &log.requests {
            by_request.push(r);
        }
        let mut by_bytes = StreamingClustering::new(standard_merged(&u, 0));
        let text = netclust_weblog::clf::to_clf(&log);
        let errors = by_bytes.push_clf(text.as_bytes());
        assert!(errors.is_empty());
        assert_eq!(by_bytes.total_requests(), by_request.total_requests());
        assert_eq!(by_bytes.len(), by_request.len());
        for (prefix, stats) in by_request.top_k(usize::MAX) {
            assert_eq!(by_bytes.stats(prefix), Some(stats), "{prefix}");
        }
        assert!((by_bytes.coverage() - by_request.coverage()).abs() < 1e-12);
        // Malformed lines are surfaced, well-formed ones still land.
        let mut s = StreamingClustering::new(standard_merged(&u, 0));
        let errs = s.push_clf(
            b"bogus\n1.2.3.4 - - [13/Feb/1998:07:00:00 +0000] \"GET /x HTTP/1.0\" 200 10\n",
        );
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].line, 0);
        assert_eq!(s.total_requests(), 1);
    }

    #[test]
    fn top_k_tracks_busiest() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::new(standard_merged(&u, 0));
        for r in &log.requests {
            stream.push(r);
        }
        let top = stream.top_k(5);
        assert_eq!(top.len(), 5.min(stream.len()));
        assert!(top.windows(2).all(|w| w[0].1.requests >= w[1].1.requests));
        // The top cluster matches the batch busiest.
        let merged = standard_merged(&u, 0);
        let batch = Clustering::network_aware(&log, &merged);
        assert_eq!(top[0].1.requests, batch.busiest().unwrap().requests);
    }

    #[test]
    fn table_swap_rebuilds_consistently() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::new(standard_merged(&u, 0));
        for r in &log.requests {
            stream.push(r);
        }
        let before_total = stream.total_requests();
        // Swap to day 7's table: the view must equal a batch clustering
        // against that table.
        stream.swap_table(standard_merged(&u, 7));
        assert_eq!(stream.total_requests(), before_total);
        let batch = Clustering::network_aware(&log, &standard_merged(&u, 7));
        assert_eq!(stream.len(), batch.len());
        for cluster in &batch.clusters {
            let s = stream.stats(cluster.prefix).expect("present after swap");
            assert_eq!(s.requests, cluster.requests);
        }
    }

    #[test]
    fn incremental_queries_mid_stream() {
        let (u, log) = setup();
        let mut stream = StreamingClustering::new(standard_merged(&u, 0));
        assert!(stream.is_empty());
        assert_eq!(stream.coverage(), 0.0);
        let half = log.requests.len() / 2;
        for r in &log.requests[..half] {
            stream.push(r);
        }
        let mid = stream.top_k(3);
        assert!(!mid.is_empty());
        for r in &log.requests[half..] {
            stream.push(r);
        }
        let end = stream.top_k(3);
        assert!(end[0].1.requests >= mid[0].1.requests);
        // cluster_of answers for seen clients.
        let client = log.requests[0].client_addr();
        assert_eq!(
            stream.cluster_of(client).is_some(),
            standard_merged(&u, 0).lookup(client).is_some()
        );
    }
}
