//! Client cluster identification (§3.2).
//!
//! Clustering takes the client addresses of a server log and a *cluster
//! assigner* — a function from address to identifying prefix — and produces
//! per-cluster aggregates. Three assigners reproduce the paper's methods:
//!
//! * **network-aware** (the contribution): longest-prefix match against the
//!   merged BGP/registry table ([`Clustering::network_aware`]),
//! * **simple**: fixed `/24` grouping ([`Clustering::simple24`]),
//! * **classful**: Class A/B/C boundaries ([`Clustering::classful`]).
//!
//! Clients whose address matches no table entry are *unclustered* — the
//! paper reports ≈0.1 % of clients — and kept separately for the
//! self-correction stage to absorb (§3.5).

use std::net::Ipv4Addr;

use crate::fx::FxHashMap;

use netclust_prefix::{classful_network, Ipv4Net};
use netclust_rtable::{CompiledMerged, MergedTable};
use netclust_weblog::{Log, Request};
use rayon::prelude::*;

/// Below this many log requests the serial path is used outright: thread
/// spawn plus shard-merge overhead exceeds the work itself.
const PARALLEL_MIN_REQUESTS: usize = 1 << 15;

/// Per-thread chunk granularity for request-sharded aggregation (the
/// sizing floor for [`should_shard`]).
pub(crate) const REQUEST_CHUNK: usize = 1 << 14;

/// Chunk size giving exactly one contiguous chunk per pool worker. The
/// span-scheduling pool hands each worker one contiguous span of the
/// chunk list, so finer chunks buy no extra parallelism — they only add
/// per-chunk collect/merge overhead (the `parallel_forced` regression).
fn span_chunk(len: usize) -> usize {
    len.div_ceil(rayon::current_num_threads().max(1)).max(1)
}

/// Number of address-range partitions for parallel shard merging given a
/// worker count — a power of two so the partition of a client is its top
/// address bits. One partition when there is nothing to merge in
/// parallel: partition bookkeeping is pure overhead on one worker.
pub(crate) fn merge_partitions_for(threads: usize) -> usize {
    if threads <= 1 {
        1
    } else {
        (threads * 2).next_power_of_two().clamp(4, 64)
    }
}

/// `true` when a log of `requests` requests should take the sharded
/// path: more than one worker thread, and enough work that every thread
/// gets several chunks — below that, shard bookkeeping costs more than
/// it buys and serial wins.
pub(crate) fn should_shard(requests: usize) -> bool {
    let threads = rayon::current_num_threads();
    threads > 1 && requests >= PARALLEL_MIN_REQUESTS.max(threads * REQUEST_CHUNK / 2)
}

/// Per-client aggregates inside a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// The client address.
    pub addr: Ipv4Addr,
    /// Requests this client issued.
    pub requests: u64,
    /// Total response bytes it received.
    pub bytes: u64,
}

/// One identified client cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The identifying prefix (the shared longest match).
    pub prefix: Ipv4Net,
    /// Member clients, sorted by address.
    pub clients: Vec<ClientStats>,
    /// Total requests issued from within the cluster.
    pub requests: u64,
    /// Total response bytes.
    pub bytes: u64,
    /// Distinct URLs accessed from within the cluster.
    pub unique_urls: u32,
}

impl Cluster {
    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The member issuing the most requests, with its request share of the
    /// cluster (0.0 for an empty cluster). Drives spider/proxy heuristics.
    pub fn dominant_client(&self) -> Option<(Ipv4Addr, f64)> {
        let top = self.clients.iter().max_by_key(|c| c.requests)?;
        let share = if self.requests == 0 {
            0.0
        } else {
            top.requests as f64 / self.requests as f64
        };
        Some((top.addr, share))
    }
}

/// The result of clustering one log with one method.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Method label (for reports).
    pub method: String,
    /// Identified clusters, sorted by prefix.
    pub clusters: Vec<Cluster>,
    /// Clients that matched no prefix, with their stats.
    pub unclustered: Vec<ClientStats>,
    /// Total requests in the log (clustered + unclustered).
    pub total_requests: u64,
    /// Client address → index into `clusters`.
    index: FxHashMap<u32, u32>,
}

impl Clustering {
    /// Clusters `log` with an arbitrary assigner. The assigner returns the
    /// identifying prefix for an address, or `None` when the address is
    /// unclusterable.
    ///
    /// Large logs are sharded across threads
    /// ([`build_parallel`](Self::build_parallel)); small ones run serially.
    /// Both paths produce identical results — clusters sorted by prefix,
    /// clients and unclustered sorted by address — independent of thread
    /// count and scheduling.
    pub fn build<F>(log: &Log, method: impl Into<String>, assign: F) -> Self
    where
        F: Fn(Ipv4Addr) -> Option<Ipv4Net> + Sync,
    {
        if should_shard(log.requests.len()) {
            Self::build_sharded(log, method, assign)
        } else {
            Self::build_serial(log, method, assign)
        }
    }

    /// Single-threaded [`build`](Self::build). Exposed so callers (and the
    /// determinism tests) can pin the execution strategy.
    pub fn build_serial<F>(log: &Log, method: impl Into<String>, assign: F) -> Self
    where
        F: Fn(Ipv4Addr) -> Option<Ipv4Net>,
    {
        let clients = aggregate_serial(log);
        let assignments: Vec<Option<Ipv4Net>> = clients.iter().map(|c| assign(c.addr)).collect();
        Self::assemble(log, method, clients, assignments, false)
    }

    /// Multi-threaded [`build`](Self::build). On a single-threaded pool
    /// this delegates to [`build_serial`](Self::build_serial) — sharding
    /// there is pure overhead and can only lose — so `build_parallel` is
    /// never slower than the serial path. Use
    /// [`build_sharded`](Self::build_sharded) to force sharding.
    pub fn build_parallel<F>(log: &Log, method: impl Into<String>, assign: F) -> Self
    where
        F: Fn(Ipv4Addr) -> Option<Ipv4Net> + Sync,
    {
        if rayon::current_num_threads() <= 1 {
            Self::build_serial(log, method, assign)
        } else {
            Self::build_sharded(log, method, assign)
        }
    }

    /// Sharded [`build`](Self::build): requests are aggregated per client
    /// in per-chunk shards merged at the end, and cluster assignment fans
    /// out across threads — unconditionally, regardless of pool size (the
    /// determinism tests and benches pin the strategy this way). Final
    /// ordering is deterministic (see [`build`](Self::build)).
    pub fn build_sharded<F>(log: &Log, method: impl Into<String>, assign: F) -> Self
    where
        F: Fn(Ipv4Addr) -> Option<Ipv4Net> + Sync,
    {
        let clients = aggregate_parallel(log);
        let chunk = span_chunk(clients.len());
        // One span means one worker: skip the pool dispatch and the
        // intermediate per-chunk vectors — they are pure overhead.
        let assignments: Vec<Option<Ipv4Net>> = if chunk >= clients.len() {
            clients.iter().map(|c| assign(c.addr)).collect()
        } else {
            clients
                .par_chunks(chunk)
                .map(|chunk| chunk.iter().map(|c| assign(c.addr)).collect::<Vec<_>>())
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect()
        };
        Self::assemble(log, method, clients, assignments, true)
    }

    /// Shared tail of every build path: groups pre-aggregated,
    /// address-sorted clients by their assigned prefix and materializes the
    /// final sorted structure. `clients[i]` pairs with `assignments[i]`.
    fn assemble(
        log: &Log,
        method: impl Into<String>,
        clients: Vec<ClientStats>,
        assignments: Vec<Option<Ipv4Net>>,
        parallel: bool,
    ) -> Self {
        let mut out =
            Self::from_assignments(method, clients, assignments, log.requests.len() as u64);
        out.fill_unique_urls(log, parallel);
        out
    }

    /// Materializes the final structure from address-sorted per-client
    /// stats and their prefix assignments (`clients[i]` pairs with
    /// `assignments[i]`): clusters sorted by prefix, member/unclustered
    /// lists in client order, `unique_urls` left at 0 for the caller to
    /// fill. This is the shared tail of the log build paths and the fused
    /// ingest pipeline.
    pub(crate) fn from_assignments(
        method: impl Into<String>,
        clients: Vec<ClientStats>,
        assignments: Vec<Option<Ipv4Net>>,
        total_requests: u64,
    ) -> Self {
        debug_assert_eq!(clients.len(), assignments.len());
        let mut by_prefix: FxHashMap<Ipv4Net, Vec<ClientStats>> = FxHashMap::default();
        let mut unclustered = Vec::new();
        for (stats, prefix) in clients.iter().zip(&assignments) {
            match prefix {
                Some(prefix) => by_prefix.entry(*prefix).or_default().push(*stats),
                None => unclustered.push(*stats),
            }
        }
        // `clients` arrives address-sorted, so per-cluster member lists and
        // `unclustered` inherit that order without re-sorting.

        // Materialize clusters, sorted by prefix.
        // analyze:allow(determinism) keys are collected and sorted before use.
        let mut prefixes: Vec<Ipv4Net> = by_prefix.keys().copied().collect();
        prefixes.sort();
        let mut clusters = Vec::with_capacity(prefixes.len());
        let mut index = FxHashMap::with_capacity_and_hasher(clients.len(), Default::default());
        for prefix in prefixes {
            // analyze:allow(hot-path-transitive) `prefix` was drawn from
            // `by_prefix.keys()` just above, so the entry must exist.
            let clients = by_prefix.remove(&prefix).expect("key exists");
            let requests = clients.iter().map(|c| c.requests).sum();
            let bytes = clients.iter().map(|c| c.bytes).sum();
            // analyze:allow(cast-truncation) cluster ids are u32 by design;
            // one cluster per routing prefix bounds the count well below 2^32.
            let idx = clusters.len() as u32;
            for c in &clients {
                index.insert(u32::from(c.addr), idx);
            }
            clusters.push(Cluster {
                prefix,
                clients,
                requests,
                bytes,
                unique_urls: 0,
            });
        }

        Clustering {
            method: method.into(),
            clusters,
            unclustered,
            total_requests,
            index,
        }
    }

    /// Fills per-cluster `unique_urls` via sort-dedup over (cluster, url)
    /// pairs — bounded memory even for multi-million-request logs.
    fn fill_unique_urls(&mut self, log: &Log, parallel: bool) {
        let index = &self.index;
        // A single span would put the whole scan on one worker anyway;
        // take the serial branch and skip the pool round-trip.
        let parallel = parallel && span_chunk(log.requests.len()) < log.requests.len();
        let mut pairs: Vec<(u32, u32)> = if parallel {
            log.requests
                .par_chunks(span_chunk(log.requests.len()))
                .map(|chunk| {
                    chunk
                        .iter()
                        .filter_map(|r| index.get(&r.client).map(|&idx| (idx, r.url)))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect()
        } else {
            log.requests
                .iter()
                .filter_map(|r| index.get(&r.client).map(|&idx| (idx, r.url)))
                .collect()
        };
        pairs.sort_unstable();
        pairs.dedup();
        for (idx, _) in pairs {
            self.clusters[idx as usize].unique_urls += 1;
        }
    }

    /// Clusters a bare address/requests/bytes list — no log needed. Used
    /// for §3.6's *server clustering* of the destinations in a proxy log
    /// (unique URL counts are not available and stay 0).
    pub fn from_counts<F>(
        counts: &[(Ipv4Addr, u64, u64)],
        method: impl Into<String>,
        assign: F,
    ) -> Self
    where
        F: Fn(Ipv4Addr) -> Option<Ipv4Net>,
    {
        let mut by_prefix: FxHashMap<Ipv4Net, Vec<ClientStats>> = FxHashMap::default();
        let mut unclustered = Vec::new();
        let mut total_requests = 0u64;
        for &(addr, requests, bytes) in counts {
            total_requests += requests;
            let stats = ClientStats {
                addr,
                requests,
                bytes,
            };
            match assign(addr) {
                Some(prefix) => by_prefix.entry(prefix).or_default().push(stats),
                None => unclustered.push(stats),
            }
        }
        unclustered.sort_by_key(|c| c.addr);
        // analyze:allow(determinism) keys are collected and sorted before use.
        let mut prefixes: Vec<Ipv4Net> = by_prefix.keys().copied().collect();
        prefixes.sort();
        let mut clusters = Vec::with_capacity(prefixes.len());
        let mut index = FxHashMap::default();
        for prefix in prefixes {
            let mut clients = by_prefix.remove(&prefix).expect("key exists");
            clients.sort_by_key(|c| c.addr);
            let requests = clients.iter().map(|c| c.requests).sum();
            let bytes = clients.iter().map(|c| c.bytes).sum();
            // analyze:allow(cast-truncation) cluster ids are u32 by design;
            // one cluster per routing prefix bounds the count well below 2^32.
            let idx = clusters.len() as u32;
            for c in &clients {
                index.insert(u32::from(c.addr), idx);
            }
            clusters.push(Cluster {
                prefix,
                clients,
                requests,
                bytes,
                unique_urls: 0,
            });
        }
        Clustering {
            method: method.into(),
            clusters,
            unclustered,
            total_requests,
            index,
        }
    }

    /// The paper's network-aware method: LPM against the merged table.
    ///
    /// The table is compiled to its flat DIR-24-8 form first (see
    /// [`CompiledMerged`]), so per-address matching is one or two array
    /// loads instead of a trie walk. Callers clustering many logs against
    /// one table should compile once and use
    /// [`network_aware_compiled`](Self::network_aware_compiled).
    pub fn network_aware(log: &Log, table: &MergedTable) -> Self {
        Self::network_aware_compiled(log, &table.compile())
    }

    /// [`network_aware`](Self::network_aware) against an already-compiled
    /// table: per-client aggregation shards across threads, then clients
    /// are assigned in batch LPM sweeps over the flat table.
    pub fn network_aware_compiled(log: &Log, table: &CompiledMerged) -> Self {
        let parallel = should_shard(log.requests.len());
        let clients = if parallel {
            aggregate_parallel(log)
        } else {
            aggregate_serial(log)
        };
        let addrs: Vec<u32> = clients.iter().map(|c| u32::from(c.addr)).collect();
        let assignments: Vec<Option<Ipv4Net>> = if parallel {
            addrs
                .par_chunks(span_chunk(addrs.len()))
                .map(|chunk| table.net_for_batch(chunk))
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect()
        } else {
            table.net_for_batch(&addrs)
        };
        Self::assemble(log, "network-aware", clients, assignments, parallel)
    }

    /// The simple approach of §2: shared first 24 bits.
    pub fn simple24(log: &Log) -> Self {
        Self::build(log, "simple-24", |addr| {
            Some(Ipv4Net::from_addr(addr, 24).expect("24 is a valid length"))
        })
    }

    /// The classful baseline of §2: Class A/B/C network boundaries
    /// (multicast/reserved space is unclusterable).
    pub fn classful(log: &Log) -> Self {
        Self::build(log, "classful", classful_network)
    }

    /// Number of identified clusters (excluding unclustered singletons).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` when no clusters were identified.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster containing `addr`, if it was clustered.
    pub fn cluster_of(&self, addr: Ipv4Addr) -> Option<&Cluster> {
        self.cluster_index(addr).map(|i| &self.clusters[i])
    }

    /// Index into [`clusters`](Self::clusters) of the cluster containing
    /// `addr`, if it was clustered.
    pub fn cluster_index(&self, addr: Ipv4Addr) -> Option<usize> {
        self.index.get(&u32::from(addr)).map(|&i| i as usize)
    }

    /// Total clients (clustered + unclustered).
    pub fn client_count(&self) -> usize {
        self.index.len() + self.unclustered.len()
    }

    /// Fraction of clients that were clustered — the paper's headline
    /// 99.9 % coverage metric.
    pub fn coverage(&self) -> f64 {
        let total = self.client_count();
        if total == 0 {
            return 0.0;
        }
        self.index.len() as f64 / total as f64
    }

    /// Largest cluster by client count, if any.
    pub fn largest_by_clients(&self) -> Option<&Cluster> {
        self.clusters.iter().max_by_key(|c| c.client_count())
    }

    /// Busiest cluster by request count, if any.
    pub fn busiest(&self) -> Option<&Cluster> {
        self.clusters.iter().max_by_key(|c| c.requests)
    }
}

/// Per-client aggregation, single-threaded: one hash-map pass over the
/// requests, collected sorted by client address.
fn aggregate_serial(log: &Log) -> Vec<ClientStats> {
    let mut per_client: FxHashMap<u32, (u64, u64)> = FxHashMap::default();
    for r in &log.requests {
        let e = per_client.entry(r.client).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.bytes as u64;
    }
    finish_aggregation(per_client)
}

/// Per-client aggregation, sharded two ways: request chunks aggregate in
/// parallel into per-chunk maps split by client address range, then one
/// worker per address range merges its slice of every chunk. Summation is
/// order-independent and ranges concatenate in address order, so the
/// result is identical to [`aggregate_serial`].
///
/// Shard count and chunk granularity adapt to the pool and the input:
/// exactly one chunk per worker (the span-scheduling pool hands each
/// worker one contiguous span, so more chunks only add merge work) and
/// [`merge_partitions_for`] partitions. On one worker this collapses to a
/// single chunk and a single partition, where the merge pass is skipped
/// outright — the forced path then does the same work as the serial one
/// instead of paying shard bookkeeping it cannot amortize.
fn aggregate_parallel(log: &Log) -> Vec<ClientStats> {
    let threads = rayon::current_num_threads().max(1);
    let chunk = log.requests.len().div_ceil(threads).max(1);
    aggregate_sharded(log, merge_partitions_for(threads), chunk)
}

/// [`aggregate_parallel`] with an explicit partition count and chunk
/// size, so tests can exercise the multi-shard merge machinery that
/// adaptive sizing would collapse on a small pool.
pub(crate) fn aggregate_sharded(log: &Log, n_parts: usize, chunk: usize) -> Vec<ClientStats> {
    debug_assert!(n_parts.is_power_of_two());
    let shift = 32 - n_parts.trailing_zeros();
    let scan = |chunk: &[Request]| {
        let mut local: Vec<FxHashMap<u32, (u64, u64)>> = vec![FxHashMap::default(); n_parts];
        for r in chunk {
            // u64 shift: a single-partition plan passes shift == 32.
            let e = local[((r.client as u64) >> shift) as usize]
                .entry(r.client)
                .or_insert((0, 0));
            e.0 += 1;
            e.1 += r.bytes as u64;
        }
        local
    };
    // One chunk: scan inline — the pool dispatch buys nothing.
    let mut shards: Vec<Vec<FxHashMap<u32, (u64, u64)>>> = if chunk >= log.requests.len() {
        vec![scan(&log.requests)]
    } else {
        log.requests.par_chunks(chunk).map(scan).collect()
    };
    if shards.len() == 1 {
        // One chunk: its partition maps are already the global maps, and
        // partition runs concatenate in address order. No re-hash merge.
        let local = shards.pop().expect("one shard");
        return local.into_iter().flat_map(finish_aggregation).collect();
    }
    let parts: Vec<usize> = (0..n_parts).collect();
    let merged: Vec<Vec<ClientStats>> = parts
        .par_iter()
        .map(|&p| {
            let mut per_client: FxHashMap<u32, (u64, u64)> = FxHashMap::default();
            for shard in &shards {
                for (&client, &(requests, bytes)) in &shard[p] {
                    let e = per_client.entry(client).or_insert((0, 0));
                    e.0 += requests;
                    e.1 += bytes;
                }
            }
            finish_aggregation(per_client)
        })
        .collect();
    // Partition p holds exactly the clients whose top bits equal p, so the
    // per-partition sorted runs concatenate into global address order.
    merged.into_iter().flatten().collect()
}

pub(crate) fn finish_aggregation(per_client: FxHashMap<u32, (u64, u64)>) -> Vec<ClientStats> {
    // analyze:allow(determinism) map drained to a vec and sorted below.
    let mut clients: Vec<ClientStats> = per_client
        .into_iter()
        .map(|(client, (requests, bytes))| ClientStats {
            addr: Ipv4Addr::from(client),
            requests,
            bytes,
        })
        .collect();
    clients.sort_by_key(|c| c.addr);
    clients
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_rtable::{RoutingTable, TableKind};
    use netclust_weblog::{LogTruth, Request, UrlMeta};

    /// A hand-built log: 4 clients in 12.65.128.0/19, 2 in 24.48.2.0/23,
    /// 1 unclusterable.
    fn sample_log() -> Log {
        let clients = [
            "12.65.147.94",
            "12.65.147.149",
            "12.65.146.207",
            "12.65.144.247",
            "24.48.3.87",
            "24.48.2.166",
            "99.1.1.1",
        ];
        let mut requests = Vec::new();
        for (i, c) in clients.iter().enumerate() {
            let addr: Ipv4Addr = c.parse().unwrap();
            // Client i issues i+1 requests to URL i % 3.
            for j in 0..=i {
                requests.push(Request {
                    time: (i * 10 + j) as u32,
                    client: u32::from(addr),
                    url: (i % 3) as u32,
                    bytes: 100,
                    status: 200,
                    ua: 0,
                });
            }
        }
        requests.sort_by_key(|r| r.time);
        Log {
            name: "sample".into(),
            requests,
            urls: (0..3)
                .map(|i| UrlMeta {
                    path: format!("/{i}"),
                    size: 100,
                })
                .collect(),
            user_agents: vec!["UA".into()],
            start_time: 0,
            duration_s: 100,
            truth: LogTruth::default(),
        }
    }

    fn merged() -> MergedTable {
        let bgp = RoutingTable::new(
            "T",
            "d0",
            TableKind::Bgp,
            vec![
                "12.65.128.0/19".parse().unwrap(),
                "24.48.2.0/23".parse().unwrap(),
            ],
        );
        MergedTable::merge([&bgp])
    }

    #[test]
    fn paper_worked_example() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        assert_eq!(clustering.len(), 2);
        let c0 = &clustering.clusters[0];
        assert_eq!(c0.prefix.to_string(), "12.65.128.0/19");
        assert_eq!(c0.client_count(), 4);
        let c1 = &clustering.clusters[1];
        assert_eq!(c1.prefix.to_string(), "24.48.2.0/23");
        assert_eq!(c1.client_count(), 2);
        assert_eq!(clustering.unclustered.len(), 1);
        assert_eq!(clustering.unclustered[0].addr.to_string(), "99.1.1.1");
        // Coverage: 6 of 7 clients.
        assert!((clustering.coverage() - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates_are_consistent() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        let total: u64 = clustering.clusters.iter().map(|c| c.requests).sum::<u64>()
            + clustering
                .unclustered
                .iter()
                .map(|c| c.requests)
                .sum::<u64>();
        assert_eq!(total, log.requests.len() as u64);
        assert_eq!(clustering.total_requests, log.requests.len() as u64);
        // Clients 1..=4 issue 1+2+3+4 = 10 requests in the first cluster.
        assert_eq!(clustering.clusters[0].requests, 10);
        assert_eq!(clustering.clusters[0].bytes, 1000);
        assert_eq!(clustering.client_count(), 7);
    }

    #[test]
    fn unique_urls_per_cluster() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        // First cluster: clients 0-3 access urls {0, 1, 2, 0} → 3 unique.
        assert_eq!(clustering.clusters[0].unique_urls, 3);
        // Second cluster: clients 4,5 access urls {1, 2} → 2 unique.
        assert_eq!(clustering.clusters[1].unique_urls, 2);
    }

    #[test]
    fn simple24_splits_differently() {
        let log = sample_log();
        let simple = Clustering::simple24(&log);
        // 12.65.147.x, 12.65.146.x, 12.65.144.x → three /24s;
        // 24.48.3.x vs 24.48.2.x → two /24s; 99.1.1.1 → its own.
        assert_eq!(simple.len(), 6);
        assert!(simple.unclustered.is_empty());
        let aware = Clustering::network_aware(&log, &merged());
        assert!(simple.len() > aware.len());
    }

    #[test]
    fn classful_merges_by_class() {
        let log = sample_log();
        let classful = Clustering::classful(&log);
        // 12.x → Class A 12.0.0.0/8; 24.x → 24.0.0.0/8; 99.x → 99.0.0.0/8.
        assert_eq!(classful.len(), 3);
        assert_eq!(classful.clusters[0].prefix.to_string(), "12.0.0.0/8");
        assert_eq!(classful.clusters[0].client_count(), 4);
    }

    #[test]
    fn cluster_of_lookup() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        let c = clustering
            .cluster_of("12.65.147.94".parse().unwrap())
            .unwrap();
        assert_eq!(c.prefix.to_string(), "12.65.128.0/19");
        assert!(clustering.cluster_of("99.1.1.1".parse().unwrap()).is_none());
        assert!(clustering.cluster_of("8.8.8.8".parse().unwrap()).is_none());
    }

    #[test]
    fn dominant_client() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        // In cluster 0 client 3 (12.65.144.247) issues 4 of 10 requests.
        let (addr, share) = clustering.clusters[0].dominant_client().unwrap();
        assert_eq!(addr.to_string(), "12.65.144.247");
        assert!((share - 0.4).abs() < 1e-12);
    }

    #[test]
    fn largest_and_busiest() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        assert_eq!(clustering.largest_by_clients().unwrap().client_count(), 4);
        assert_eq!(clustering.busiest().unwrap().requests, 11); // clients 5,6: 5+6
    }

    #[test]
    fn from_counts_matches_build() {
        // Server clustering: addresses with request counts, no log.
        let counts: Vec<(Ipv4Addr, u64, u64)> = vec![
            ("12.65.147.94".parse().unwrap(), 10, 1000),
            ("12.65.146.207".parse().unwrap(), 5, 500),
            ("24.48.3.87".parse().unwrap(), 7, 700),
            ("99.1.1.1".parse().unwrap(), 1, 100),
        ];
        let table = merged();
        let clustering =
            Clustering::from_counts(&counts, "servers", |a| table.lookup(a).map(|(n, _)| n));
        assert_eq!(clustering.len(), 2);
        assert_eq!(clustering.clusters[0].requests, 15);
        assert_eq!(clustering.clusters[0].bytes, 1500);
        assert_eq!(clustering.unclustered.len(), 1);
        assert_eq!(clustering.total_requests, 23);
        assert_eq!(clustering.clusters[0].unique_urls, 0);
        assert!(clustering
            .cluster_of("24.48.3.87".parse().unwrap())
            .is_some());
    }

    #[test]
    fn parallel_build_is_deterministic() {
        use netclust_netgen::{standard_merged, Universe, UniverseConfig};
        use netclust_weblog::{generate, LogSpec};

        let u = Universe::generate(UniverseConfig::small(11));
        let mut spec = LogSpec::tiny("det", 17);
        // Enough requests that the auto path would shard, with collisions
        // across chunk boundaries.
        spec.total_requests = 40_000;
        spec.target_clients = 300;
        let log = generate(&u, &spec);
        let merged = standard_merged(&u, 0);
        let compiled = merged.compile();

        let assign = |a: Ipv4Addr| compiled.net_for_u32(u32::from(a));
        let serial = Clustering::build_serial(&log, "m", assign);
        // Force sharding so the parallel machinery is exercised even on a
        // single-threaded pool (where build_parallel delegates to serial).
        let parallel = Clustering::build_sharded(&log, "m", assign);

        // Byte-identical orderings: same clusters in the same order, each
        // with identical member lists, and the same unclustered list.
        assert_eq!(serial.clusters.len(), parallel.clusters.len());
        for (s, p) in serial.clusters.iter().zip(&parallel.clusters) {
            assert_eq!(s.prefix, p.prefix);
            assert_eq!(s.clients, p.clients);
            assert_eq!(s.requests, p.requests);
            assert_eq!(s.bytes, p.bytes);
            assert_eq!(s.unique_urls, p.unique_urls);
        }
        assert_eq!(serial.unclustered, parallel.unclustered);
        assert_eq!(serial.total_requests, parallel.total_requests);

        // The auto-dispatching entry points agree with both.
        let auto = Clustering::build(&log, "m", assign);
        assert_eq!(auto.unclustered, serial.unclustered);
        assert_eq!(auto.clusters.len(), serial.clusters.len());
        let par = Clustering::build_parallel(&log, "m", assign);
        assert_eq!(par.unclustered, serial.unclustered);
        assert_eq!(par.clusters.len(), serial.clusters.len());
        let aware = Clustering::network_aware_compiled(&log, &compiled);
        assert_eq!(aware.clusters.len(), serial.clusters.len());
        for (a, s) in aware.clusters.iter().zip(&serial.clusters) {
            assert_eq!(a.prefix, s.prefix);
            assert_eq!(a.clients, s.clients);
        }
    }

    #[test]
    fn sharded_aggregation_matches_serial_across_plans() {
        use netclust_netgen::{Universe, UniverseConfig};
        use netclust_weblog::{generate, LogSpec};

        let u = Universe::generate(UniverseConfig::small(5));
        let mut spec = LogSpec::tiny("agg", 29);
        spec.total_requests = 10_000;
        spec.target_clients = 400;
        let log = generate(&u, &spec);
        let serial = aggregate_serial(&log);
        // Explicit plans force the multi-chunk, multi-partition merge even
        // on a single-worker pool, where adaptive sizing collapses it.
        for (n_parts, chunk) in [(1, usize::MAX), (4, 1 << 10), (16, 997), (64, 64)] {
            let sharded = aggregate_sharded(&log, n_parts, chunk.min(log.requests.len()));
            assert_eq!(sharded, serial, "n_parts={n_parts} chunk={chunk}");
        }
    }

    #[test]
    fn empty_log() {
        let log = Log {
            name: "empty".into(),
            requests: vec![],
            urls: vec![],
            user_agents: vec!["UA".into()],
            start_time: 0,
            duration_s: 0,
            truth: LogTruth::default(),
        };
        let clustering = Clustering::simple24(&log);
        assert!(clustering.is_empty());
        assert_eq!(clustering.coverage(), 0.0);
        assert!(clustering.largest_by_clients().is_none());
    }
}
