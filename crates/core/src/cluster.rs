//! Client cluster identification (§3.2).
//!
//! Clustering takes the client addresses of a server log and a *cluster
//! assigner* — a function from address to identifying prefix — and produces
//! per-cluster aggregates. Three assigners reproduce the paper's methods:
//!
//! * **network-aware** (the contribution): longest-prefix match against the
//!   merged BGP/registry table ([`Clustering::network_aware`]),
//! * **simple**: fixed `/24` grouping ([`Clustering::simple24`]),
//! * **classful**: Class A/B/C boundaries ([`Clustering::classful`]).
//!
//! Clients whose address matches no table entry are *unclustered* — the
//! paper reports ≈0.1 % of clients — and kept separately for the
//! self-correction stage to absorb (§3.5).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use netclust_prefix::{classful_network, Ipv4Net};
use netclust_rtable::MergedTable;
use netclust_weblog::Log;

/// Per-client aggregates inside a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// The client address.
    pub addr: Ipv4Addr,
    /// Requests this client issued.
    pub requests: u64,
    /// Total response bytes it received.
    pub bytes: u64,
}

/// One identified client cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The identifying prefix (the shared longest match).
    pub prefix: Ipv4Net,
    /// Member clients, sorted by address.
    pub clients: Vec<ClientStats>,
    /// Total requests issued from within the cluster.
    pub requests: u64,
    /// Total response bytes.
    pub bytes: u64,
    /// Distinct URLs accessed from within the cluster.
    pub unique_urls: u32,
}

impl Cluster {
    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The member issuing the most requests, with its request share of the
    /// cluster (0.0 for an empty cluster). Drives spider/proxy heuristics.
    pub fn dominant_client(&self) -> Option<(Ipv4Addr, f64)> {
        let top = self.clients.iter().max_by_key(|c| c.requests)?;
        let share = if self.requests == 0 {
            0.0
        } else {
            top.requests as f64 / self.requests as f64
        };
        Some((top.addr, share))
    }
}

/// The result of clustering one log with one method.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Method label (for reports).
    pub method: String,
    /// Identified clusters, sorted by prefix.
    pub clusters: Vec<Cluster>,
    /// Clients that matched no prefix, with their stats.
    pub unclustered: Vec<ClientStats>,
    /// Total requests in the log (clustered + unclustered).
    pub total_requests: u64,
    /// Client address → index into `clusters`.
    index: HashMap<u32, u32>,
}

impl Clustering {
    /// Clusters `log` with an arbitrary assigner. The assigner returns the
    /// identifying prefix for an address, or `None` when the address is
    /// unclusterable.
    pub fn build<F>(log: &Log, method: impl Into<String>, assign: F) -> Self
    where
        F: Fn(Ipv4Addr) -> Option<Ipv4Net>,
    {
        // Aggregate per client first (a client appears in exactly one
        // cluster, so this is the unit of assignment).
        let mut per_client: HashMap<u32, (u64, u64)> = HashMap::new();
        for r in &log.requests {
            let e = per_client.entry(r.client).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.bytes as u64;
        }

        // Assign clients to prefixes.
        let mut by_prefix: HashMap<Ipv4Net, Vec<ClientStats>> = HashMap::new();
        let mut unclustered = Vec::new();
        for (&client, &(requests, bytes)) in &per_client {
            let addr = Ipv4Addr::from(client);
            let stats = ClientStats { addr, requests, bytes };
            match assign(addr) {
                Some(prefix) => by_prefix.entry(prefix).or_default().push(stats),
                None => unclustered.push(stats),
            }
        }
        unclustered.sort_by_key(|c| c.addr);

        // Materialize clusters, sorted by prefix, clients sorted by address.
        let mut prefixes: Vec<Ipv4Net> = by_prefix.keys().copied().collect();
        prefixes.sort();
        let mut clusters = Vec::with_capacity(prefixes.len());
        let mut index = HashMap::with_capacity(per_client.len());
        for prefix in prefixes {
            let mut clients = by_prefix.remove(&prefix).expect("key exists");
            clients.sort_by_key(|c| c.addr);
            let requests = clients.iter().map(|c| c.requests).sum();
            let bytes = clients.iter().map(|c| c.bytes).sum();
            let idx = clusters.len() as u32;
            for c in &clients {
                index.insert(u32::from(c.addr), idx);
            }
            clusters.push(Cluster { prefix, clients, requests, bytes, unique_urls: 0 });
        }

        // Unique URLs per cluster via sort-dedup over (cluster, url) pairs —
        // bounded memory even for multi-million-request logs.
        let mut pairs: Vec<(u32, u32)> = log
            .requests
            .iter()
            .filter_map(|r| index.get(&r.client).map(|&idx| (idx, r.url)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        for (idx, _) in pairs {
            clusters[idx as usize].unique_urls += 1;
        }

        Clustering {
            method: method.into(),
            clusters,
            unclustered,
            total_requests: log.requests.len() as u64,
            index,
        }
    }

    /// Clusters a bare address/requests/bytes list — no log needed. Used
    /// for §3.6's *server clustering* of the destinations in a proxy log
    /// (unique URL counts are not available and stay 0).
    pub fn from_counts<F>(
        counts: &[(Ipv4Addr, u64, u64)],
        method: impl Into<String>,
        assign: F,
    ) -> Self
    where
        F: Fn(Ipv4Addr) -> Option<Ipv4Net>,
    {
        let mut by_prefix: HashMap<Ipv4Net, Vec<ClientStats>> = HashMap::new();
        let mut unclustered = Vec::new();
        let mut total_requests = 0u64;
        for &(addr, requests, bytes) in counts {
            total_requests += requests;
            let stats = ClientStats { addr, requests, bytes };
            match assign(addr) {
                Some(prefix) => by_prefix.entry(prefix).or_default().push(stats),
                None => unclustered.push(stats),
            }
        }
        unclustered.sort_by_key(|c| c.addr);
        let mut prefixes: Vec<Ipv4Net> = by_prefix.keys().copied().collect();
        prefixes.sort();
        let mut clusters = Vec::with_capacity(prefixes.len());
        let mut index = HashMap::new();
        for prefix in prefixes {
            let mut clients = by_prefix.remove(&prefix).expect("key exists");
            clients.sort_by_key(|c| c.addr);
            let requests = clients.iter().map(|c| c.requests).sum();
            let bytes = clients.iter().map(|c| c.bytes).sum();
            let idx = clusters.len() as u32;
            for c in &clients {
                index.insert(u32::from(c.addr), idx);
            }
            clusters.push(Cluster { prefix, clients, requests, bytes, unique_urls: 0 });
        }
        Clustering { method: method.into(), clusters, unclustered, total_requests, index }
    }

    /// The paper's network-aware method: LPM against the merged table.
    pub fn network_aware(log: &Log, table: &MergedTable) -> Self {
        Self::build(log, "network-aware", |addr| table.lookup(addr).map(|(net, _)| net))
    }

    /// The simple approach of §2: shared first 24 bits.
    pub fn simple24(log: &Log) -> Self {
        Self::build(log, "simple-24", |addr| {
            Some(Ipv4Net::from_addr(addr, 24).expect("24 is a valid length"))
        })
    }

    /// The classful baseline of §2: Class A/B/C network boundaries
    /// (multicast/reserved space is unclusterable).
    pub fn classful(log: &Log) -> Self {
        Self::build(log, "classful", classful_network)
    }

    /// Number of identified clusters (excluding unclustered singletons).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` when no clusters were identified.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster containing `addr`, if it was clustered.
    pub fn cluster_of(&self, addr: Ipv4Addr) -> Option<&Cluster> {
        self.index.get(&u32::from(addr)).map(|&i| &self.clusters[i as usize])
    }

    /// Total clients (clustered + unclustered).
    pub fn client_count(&self) -> usize {
        self.index.len() + self.unclustered.len()
    }

    /// Fraction of clients that were clustered — the paper's headline
    /// 99.9 % coverage metric.
    pub fn coverage(&self) -> f64 {
        let total = self.client_count();
        if total == 0 {
            return 0.0;
        }
        self.index.len() as f64 / total as f64
    }

    /// Largest cluster by client count, if any.
    pub fn largest_by_clients(&self) -> Option<&Cluster> {
        self.clusters.iter().max_by_key(|c| c.client_count())
    }

    /// Busiest cluster by request count, if any.
    pub fn busiest(&self) -> Option<&Cluster> {
        self.clusters.iter().max_by_key(|c| c.requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_rtable::{RoutingTable, TableKind};
    use netclust_weblog::{LogTruth, Request, UrlMeta};

    /// A hand-built log: 4 clients in 12.65.128.0/19, 2 in 24.48.2.0/23,
    /// 1 unclusterable.
    fn sample_log() -> Log {
        let clients = [
            "12.65.147.94",
            "12.65.147.149",
            "12.65.146.207",
            "12.65.144.247",
            "24.48.3.87",
            "24.48.2.166",
            "99.1.1.1",
        ];
        let mut requests = Vec::new();
        for (i, c) in clients.iter().enumerate() {
            let addr: Ipv4Addr = c.parse().unwrap();
            // Client i issues i+1 requests to URL i % 3.
            for j in 0..=i {
                requests.push(Request {
                    time: (i * 10 + j) as u32,
                    client: u32::from(addr),
                    url: (i % 3) as u32,
                    bytes: 100,
                    status: 200,
                    ua: 0,
                });
            }
        }
        requests.sort_by_key(|r| r.time);
        Log {
            name: "sample".into(),
            requests,
            urls: (0..3).map(|i| UrlMeta { path: format!("/{i}"), size: 100 }).collect(),
            user_agents: vec!["UA".into()],
            start_time: 0,
            duration_s: 100,
            truth: LogTruth::default(),
        }
    }

    fn merged() -> MergedTable {
        let bgp = RoutingTable::new(
            "T",
            "d0",
            TableKind::Bgp,
            vec!["12.65.128.0/19".parse().unwrap(), "24.48.2.0/23".parse().unwrap()],
        );
        MergedTable::merge([&bgp])
    }

    #[test]
    fn paper_worked_example() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        assert_eq!(clustering.len(), 2);
        let c0 = &clustering.clusters[0];
        assert_eq!(c0.prefix.to_string(), "12.65.128.0/19");
        assert_eq!(c0.client_count(), 4);
        let c1 = &clustering.clusters[1];
        assert_eq!(c1.prefix.to_string(), "24.48.2.0/23");
        assert_eq!(c1.client_count(), 2);
        assert_eq!(clustering.unclustered.len(), 1);
        assert_eq!(clustering.unclustered[0].addr.to_string(), "99.1.1.1");
        // Coverage: 6 of 7 clients.
        assert!((clustering.coverage() - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates_are_consistent() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        let total: u64 = clustering.clusters.iter().map(|c| c.requests).sum::<u64>()
            + clustering.unclustered.iter().map(|c| c.requests).sum::<u64>();
        assert_eq!(total, log.requests.len() as u64);
        assert_eq!(clustering.total_requests, log.requests.len() as u64);
        // Clients 1..=4 issue 1+2+3+4 = 10 requests in the first cluster.
        assert_eq!(clustering.clusters[0].requests, 10);
        assert_eq!(clustering.clusters[0].bytes, 1000);
        assert_eq!(clustering.client_count(), 7);
    }

    #[test]
    fn unique_urls_per_cluster() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        // First cluster: clients 0-3 access urls {0, 1, 2, 0} → 3 unique.
        assert_eq!(clustering.clusters[0].unique_urls, 3);
        // Second cluster: clients 4,5 access urls {1, 2} → 2 unique.
        assert_eq!(clustering.clusters[1].unique_urls, 2);
    }

    #[test]
    fn simple24_splits_differently() {
        let log = sample_log();
        let simple = Clustering::simple24(&log);
        // 12.65.147.x, 12.65.146.x, 12.65.144.x → three /24s;
        // 24.48.3.x vs 24.48.2.x → two /24s; 99.1.1.1 → its own.
        assert_eq!(simple.len(), 6);
        assert!(simple.unclustered.is_empty());
        let aware = Clustering::network_aware(&log, &merged());
        assert!(simple.len() > aware.len());
    }

    #[test]
    fn classful_merges_by_class() {
        let log = sample_log();
        let classful = Clustering::classful(&log);
        // 12.x → Class A 12.0.0.0/8; 24.x → 24.0.0.0/8; 99.x → 99.0.0.0/8.
        assert_eq!(classful.len(), 3);
        assert_eq!(classful.clusters[0].prefix.to_string(), "12.0.0.0/8");
        assert_eq!(classful.clusters[0].client_count(), 4);
    }

    #[test]
    fn cluster_of_lookup() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        let c = clustering.cluster_of("12.65.147.94".parse().unwrap()).unwrap();
        assert_eq!(c.prefix.to_string(), "12.65.128.0/19");
        assert!(clustering.cluster_of("99.1.1.1".parse().unwrap()).is_none());
        assert!(clustering.cluster_of("8.8.8.8".parse().unwrap()).is_none());
    }

    #[test]
    fn dominant_client() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        // In cluster 0 client 3 (12.65.144.247) issues 4 of 10 requests.
        let (addr, share) = clustering.clusters[0].dominant_client().unwrap();
        assert_eq!(addr.to_string(), "12.65.144.247");
        assert!((share - 0.4).abs() < 1e-12);
    }

    #[test]
    fn largest_and_busiest() {
        let log = sample_log();
        let clustering = Clustering::network_aware(&log, &merged());
        assert_eq!(clustering.largest_by_clients().unwrap().client_count(), 4);
        assert_eq!(clustering.busiest().unwrap().requests, 11); // clients 5,6: 5+6
    }

    #[test]
    fn from_counts_matches_build() {
        // Server clustering: addresses with request counts, no log.
        let counts: Vec<(Ipv4Addr, u64, u64)> = vec![
            ("12.65.147.94".parse().unwrap(), 10, 1000),
            ("12.65.146.207".parse().unwrap(), 5, 500),
            ("24.48.3.87".parse().unwrap(), 7, 700),
            ("99.1.1.1".parse().unwrap(), 1, 100),
        ];
        let table = merged();
        let clustering = Clustering::from_counts(&counts, "servers", |a| {
            table.lookup(a).map(|(n, _)| n)
        });
        assert_eq!(clustering.len(), 2);
        assert_eq!(clustering.clusters[0].requests, 15);
        assert_eq!(clustering.clusters[0].bytes, 1500);
        assert_eq!(clustering.unclustered.len(), 1);
        assert_eq!(clustering.total_requests, 23);
        assert_eq!(clustering.clusters[0].unique_urls, 0);
        assert!(clustering.cluster_of("24.48.3.87".parse().unwrap()).is_some());
    }

    #[test]
    fn empty_log() {
        let log = Log {
            name: "empty".into(),
            requests: vec![],
            urls: vec![],
            user_agents: vec!["UA".into()],
            start_time: 0,
            duration_s: 0,
            truth: LogTruth::default(),
        };
        let clustering = Clustering::simple24(&log);
        assert!(clustering.is_empty());
        assert_eq!(clustering.coverage(), 0.0);
        assert!(clustering.largest_by_clients().is_none());
    }
}
