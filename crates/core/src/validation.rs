//! Cluster validation by sampling (§3.3, Table 3).
//!
//! The paper samples 1 % of identified clusters and applies two tests:
//!
//! * **nslookup**: resolve every sampled client; the cluster passes when
//!   all resolved names share a non-trivial suffix (last 3 components for
//!   names of ≥4 components, else last 2). Only ~50 % of clients resolve.
//! * **optimized traceroute**: resolve each client to a name or, failing
//!   that, to the last two router hops toward it; the cluster passes when
//!   names agree among named clients and path suffixes agree among
//!   path-only clients. Every client yields *something*, so coverage is
//!   100 %.
//!
//! Because the synthetic universe knows true administrative ownership, we
//! also score each sampled cluster against ground truth — the quantity the
//! live experiments could only approximate.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use netclust_netgen::{stream_rng, Universe};
use netclust_probe::{name_suffix, Nslookup, ProbeStats, TraceOutcome, Traceroute};
use rand::seq::SliceRandom;

use crate::cluster::Clustering;

/// How a sample is drawn.
#[derive(Debug, Clone, Copy)]
pub struct SamplePlan {
    /// Fraction of clusters to sample (the paper uses 0.01).
    pub fraction: f64,
    /// Lower bound on sampled clusters (for small logs/tests).
    pub min_clusters: usize,
    /// Cap on clients examined per cluster (the paper's sampled clusters
    /// average ~3–7 clients).
    pub max_clients_per_cluster: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for SamplePlan {
    fn default() -> Self {
        SamplePlan {
            fraction: 0.01,
            min_clusters: 10,
            max_clients_per_cluster: 25,
            seed: 0x5A,
        }
    }
}

/// Validation verdict counters for one test (one Table 3 section).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TestCounts {
    /// Clients that yielded usable information (a name, or for traceroute
    /// a name or path).
    pub reachable_clients: usize,
    /// Sampled clusters failing the suffix test.
    pub misidentified: usize,
    /// Of those, clusters whose members' names carry a two-letter country
    /// TLD (the paper's "non-US" rows — national gateways dominate them).
    pub misidentified_non_us: usize,
}

/// Full validation report (one Table 3 column).
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Total clusters in the clustering.
    pub total_clusters: usize,
    /// Clusters sampled.
    pub sampled_clusters: usize,
    /// Clients examined.
    pub sampled_clients: usize,
    /// Min and max prefix length among sampled clusters.
    pub prefix_len_range: (u8, u8),
    /// Sampled clusters whose identifying prefix is exactly /24 — the
    /// criterion under which the *simple* approach can be correct (§3.3:
    /// "only 57 of the total 111 ... have prefix length of 24").
    pub len24_clusters: usize,
    /// nslookup-based test counters.
    pub nslookup: TestCounts,
    /// traceroute-based test counters.
    pub traceroute: TestCounts,
    /// Ground-truth counters (clusters mixing >1 org).
    pub truth_misidentified: usize,
    /// Probe accounting for the optimized traceroute run.
    pub probe_stats: ProbeStats,
}

impl ValidationReport {
    /// Pass rate of the nslookup test among sampled clusters.
    pub fn nslookup_pass_rate(&self) -> f64 {
        pass_rate(self.sampled_clusters, self.nslookup.misidentified)
    }

    /// Pass rate of the traceroute test among sampled clusters.
    pub fn traceroute_pass_rate(&self) -> f64 {
        pass_rate(self.sampled_clusters, self.traceroute.misidentified)
    }

    /// The simple approach's pass rate under the /24 criterion.
    pub fn simple_pass_rate(&self) -> f64 {
        if self.sampled_clusters == 0 {
            0.0
        } else {
            self.len24_clusters as f64 / self.sampled_clusters as f64
        }
    }

    /// Ground-truth pass rate.
    pub fn truth_pass_rate(&self) -> f64 {
        pass_rate(self.sampled_clusters, self.truth_misidentified)
    }
}

fn pass_rate(total: usize, failed: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        1.0 - failed as f64 / total as f64
    }
}

/// `true` when a name's TLD is a two-letter country code.
fn is_non_us(name: &str) -> bool {
    name.rsplit('.')
        .next()
        .map(|tld| tld.len() == 2)
        .unwrap_or(false)
}

/// Runs both validation tests over a sampled subset of `clustering`.
pub fn validate(
    universe: &Universe,
    clustering: &Clustering,
    plan: &SamplePlan,
) -> ValidationReport {
    let mut rng = stream_rng(plan.seed, &[0x7A11D]);
    let mut order: Vec<usize> = (0..clustering.clusters.len()).collect();
    order.shuffle(&mut rng);
    let n_sample = ((clustering.clusters.len() as f64 * plan.fraction).round() as usize)
        .max(plan.min_clusters)
        .min(clustering.clusters.len());
    order.truncate(n_sample);

    let mut nslookup = Nslookup::new(universe);
    let mut tracer = Traceroute::optimized(universe);
    let mut report = ValidationReport {
        total_clusters: clustering.clusters.len(),
        sampled_clusters: n_sample,
        sampled_clients: 0,
        prefix_len_range: (32, 0),
        len24_clusters: 0,
        nslookup: TestCounts::default(),
        traceroute: TestCounts::default(),
        truth_misidentified: 0,
        probe_stats: ProbeStats::default(),
    };

    for &idx in &order {
        let cluster = &clustering.clusters[idx];
        let len = cluster.prefix.len();
        report.prefix_len_range.0 = report.prefix_len_range.0.min(len);
        report.prefix_len_range.1 = report.prefix_len_range.1.max(len);
        if len == 24 {
            report.len24_clusters += 1;
        }
        let clients: Vec<Ipv4Addr> = cluster
            .clients
            .iter()
            .take(plan.max_clients_per_cluster)
            .map(|c| c.addr)
            .collect();
        report.sampled_clients += clients.len();

        // --- nslookup test -------------------------------------------------
        let names: Vec<String> = clients
            .iter()
            .filter_map(|&a| nslookup.resolve(a))
            .collect();
        report.nslookup.reachable_clients += names.len();
        let ns_fail = !suffixes_agree(names.iter().map(String::as_str));
        if ns_fail {
            report.nslookup.misidentified += 1;
            if names.iter().any(|n| is_non_us(n)) {
                report.nslookup.misidentified_non_us += 1;
            }
        }

        // --- traceroute test ------------------------------------------------
        let mut tr_names: Vec<String> = Vec::new();
        let mut tr_paths: Vec<String> = Vec::new();
        let mut any_non_us = false;
        for &addr in &clients {
            let outcome = tracer.trace(addr);
            match &outcome {
                TraceOutcome::Reached {
                    name: Some(name), ..
                } => {
                    any_non_us |= is_non_us(name);
                    tr_names.push(name.clone());
                }
                TraceOutcome::Reached { name: None, .. } | TraceOutcome::PathOnly { .. } => {
                    tr_paths.push(outcome.path_suffix(2).join(">"));
                }
                TraceOutcome::Unroutable => {}
            }
        }
        report.traceroute.reachable_clients += tr_names.len() + tr_paths.len();
        let name_ok = suffixes_agree(tr_names.iter().map(String::as_str));
        let path_set: BTreeSet<&String> = tr_paths.iter().collect();
        let path_ok = path_set.len() <= 1;
        if !(name_ok && path_ok) {
            report.traceroute.misidentified += 1;
            if any_non_us {
                report.traceroute.misidentified_non_us += 1;
            }
        }

        // --- ground truth -----------------------------------------------------
        // A cluster is truly correct when all members share one
        // administrative entity (customers in delegated ISP space are
        // distinct entities even though the routed org is the ISP).
        let entities: BTreeSet<Option<u64>> =
            clients.iter().map(|&a| universe.admin_key(a)).collect();
        if entities.len() > 1 {
            report.truth_misidentified += 1;
        }
    }
    report.probe_stats = tracer.stats();
    report
}

/// `true` when all names share one non-trivial suffix (vacuously true for
/// zero or one name — a cluster is "labelled incorrect if there is even one
/// client that does not share the same suffix with others").
fn suffixes_agree<'a, I>(names: I) -> bool
where
    I: IntoIterator<Item = &'a str>,
{
    let mut iter = names.into_iter();
    let Some(first) = iter.next() else {
        return true;
    };
    let suffix = name_suffix(first);
    iter.all(|n| name_suffix(n) == suffix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::UniverseConfig;
    use netclust_weblog::{generate, LogSpec};

    fn setup() -> (Universe, Clustering) {
        let u = Universe::generate(UniverseConfig::small(7));
        let spec = LogSpec::tiny("v", 21);
        let log = generate(&u, &spec);
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        (u, clustering)
    }

    #[test]
    fn suffix_agreement_rules() {
        assert!(suffixes_agree(std::iter::empty()));
        assert!(suffixes_agree(["a.b.com"]));
        assert!(suffixes_agree(["a.b.com", "c.b.com"]));
        assert!(!suffixes_agree(["a.b.com", "a.c.com"]));
    }

    #[test]
    fn non_us_detection() {
        assert!(is_non_us("h1.cs.eastlake2.ac.za"));
        assert!(!is_non_us("host-1.acme7.com"));
        assert!(!is_non_us("client-3.fastlink2.net"));
    }

    #[test]
    fn validation_reports_consistent_counts() {
        let (u, clustering) = setup();
        let plan = SamplePlan {
            fraction: 0.5,
            min_clusters: 10,
            ..Default::default()
        };
        let report = validate(&u, &clustering, &plan);
        assert!(report.sampled_clusters >= 10);
        assert!(report.sampled_clusters <= report.total_clusters);
        assert!(report.sampled_clients >= report.sampled_clusters);
        // nslookup reaches roughly half the clients.
        let ratio = report.nslookup.reachable_clients as f64 / report.sampled_clients as f64;
        assert!((0.25..0.8).contains(&ratio), "nslookup ratio {ratio}");
        // traceroute reaches everyone.
        assert_eq!(report.traceroute.reachable_clients, report.sampled_clients);
        assert!(report.probe_stats.traces as usize == report.sampled_clients);
        // Mis-identification counts cannot exceed samples.
        assert!(report.nslookup.misidentified <= report.sampled_clusters);
        assert!(report.traceroute.misidentified <= report.sampled_clusters);
        assert!(report.nslookup.misidentified_non_us <= report.nslookup.misidentified);
    }

    #[test]
    fn network_aware_mostly_passes() {
        let (u, clustering) = setup();
        let plan = SamplePlan {
            fraction: 1.0,
            min_clusters: 10,
            ..Default::default()
        };
        let report = validate(&u, &clustering, &plan);
        // The paper's headline: >90 % pass. The small test universe is
        // noisier; insist on >80 %.
        assert!(
            report.nslookup_pass_rate() > 0.8,
            "{}",
            report.nslookup_pass_rate()
        );
        assert!(
            report.traceroute_pass_rate() > 0.8,
            "{}",
            report.traceroute_pass_rate()
        );
        assert!(
            report.truth_pass_rate() > 0.8,
            "{}",
            report.truth_pass_rate()
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let (u, clustering) = setup();
        let plan = SamplePlan::default();
        let a = validate(&u, &clustering, &plan);
        let b = validate(&u, &clustering, &plan);
        assert_eq!(a.sampled_clients, b.sampled_clients);
        assert_eq!(a.nslookup.misidentified, b.nslookup.misidentified);
        assert_eq!(a.traceroute.misidentified, b.traceroute.misidentified);
    }

    #[test]
    fn len24_counter_counts_24s() {
        let (u, clustering) = setup();
        let plan = SamplePlan {
            fraction: 1.0,
            min_clusters: 1,
            ..Default::default()
        };
        let report = validate(&u, &clustering, &plan);
        let expect = clustering
            .clusters
            .iter()
            .filter(|c| c.prefix.len() == 24)
            .count();
        assert_eq!(report.len24_clusters, expect);
        assert!(report.prefix_len_range.0 <= report.prefix_len_range.1);
        // Simple pass rate is the /24 fraction.
        let frac = expect as f64 / clustering.clusters.len() as f64;
        assert!((report.simple_pass_rate() - frac).abs() < 1e-12);
    }
}
