//! Seed-driven deterministic failpoint registry.
//!
//! The streaming pipeline has three seams where messy reality leaks in:
//! routing-table swaps (§3.4's churn), self-correction probes (§3.5's
//! unresponsive routers), and log ingest (torn files, I/O errors). Tests
//! need to exercise those failures *reproducibly* — no wall clocks, no
//! ambient randomness. A [`FaultPlan`] names failpoints and arms each with
//! a firing probability; a [`FaultInjector`] evaluates them with a draw
//! that is a pure function of `(seed, failpoint name, evaluation count)`,
//! so a given seed replays the exact same fault schedule every run and a
//! seed sweep explores distinct schedules.
//!
//! Production code paths accept an injector and ask
//! [`FaultInjector::should_fire`] at each seam; the disabled injector
//! answers `false` for free, so the hot paths cost nothing when no plan is
//! armed.

use std::collections::BTreeMap;

use netclust_netgen::unit_f64;
use netclust_obs::Obs;

/// Well-known failpoint names wired through the pipeline.
pub mod failpoints {
    /// Compiling a candidate routing table during a hot swap dies
    /// (allocation failure, corrupt input surviving parse).
    pub const SWAP_COMPILE: &str = "swap.compile";
    /// A chunk of the input log fails mid-read (I/O error on a page of an
    /// `mmap`'d file, torn NFS read).
    pub const INGEST_CHUNK_IO: &str = "ingest.chunk_io";
    /// Patching a candidate table generation dies mid-apply (allocation
    /// failure, corrupt delta surviving validation); the half-patched
    /// candidate must be discarded with the old generation left serving.
    pub const TABLE_PATCH: &str = "table.patch";
    /// A write-ahead journal append dies mid-write (disk full, process
    /// kill between `write` calls): the frame is torn on disk and the
    /// process must treat the append as failed. Recovery truncates the
    /// torn tail and replays everything before it.
    pub const PERSIST_JOURNAL_WRITE: &str = "persist.journal.write";
    /// The atomic snapshot rename dies between writing the temp file and
    /// publishing it: the previous snapshot generation must keep serving
    /// recovery, with the orphaned temp file ignored.
    pub const PERSIST_SNAPSHOT_RENAME: &str = "persist.snapshot.rename";
    /// An `fsync` on the journal or snapshot fails (I/O error, yanked
    /// volume): durability of recent appends is unknown and the process
    /// must treat the store as wedged rather than acknowledge the batch.
    pub const PERSIST_FSYNC: &str = "persist.fsync";
    /// Accepting a daemon connection dies (`accept` returns EMFILE /
    /// ECONNABORTED under pressure): the serve loop must log, shed the
    /// connection, and keep accepting — never exit.
    pub const SERVE_ACCEPT: &str = "serve.accept";
    /// Reading an HTTP request off an accepted connection dies mid-parse
    /// (client reset, torn read): the worker must answer 400 or close,
    /// recycle the connection, and keep the pool healthy.
    pub const SERVE_REQUEST_PARSE: &str = "serve.request.parse";

    /// Every registered failpoint, in declaration order — the registry
    /// surface fault sweeps iterate so new points cannot dodge the
    /// standard harness.
    pub const ALL: &[&str] = &[
        SWAP_COMPILE,
        INGEST_CHUNK_IO,
        TABLE_PATCH,
        PERSIST_JOURNAL_WRITE,
        PERSIST_SNAPSHOT_RENAME,
        PERSIST_FSYNC,
        SERVE_ACCEPT,
        SERVE_REQUEST_PARSE,
    ];

    /// The registry as a function, for callers that iterate rather than
    /// index (fault sweeps, the static-analysis coverage rule).
    pub fn all() -> &'static [&'static str] {
        ALL
    }
}

/// FNV-1a over the failpoint name: folds the registry key into the seed
/// stream so distinct failpoints draw independently.
fn point_tag(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A named set of armed failpoints with firing probabilities, plus the
/// seed every draw derives from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    points: BTreeMap<String, f64>,
}

impl FaultPlan {
    /// A plan with no armed failpoints (nothing ever fires).
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// An empty plan drawing from `seed`; arm failpoints with
    /// [`with`](Self::with).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            points: BTreeMap::new(),
        }
    }

    /// Arms `point` to fire with probability `p` per evaluation
    /// (clamped to `[0, 1]`).
    pub fn with(mut self, point: &str, p: f64) -> Self {
        self.points.insert(point.to_string(), p.clamp(0.0, 1.0));
        self
    }

    /// The seed the plan draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The armed probability of `point` (0 when not armed).
    pub fn probability(&self, point: &str) -> f64 {
        self.points.get(point).copied().unwrap_or(0.0)
    }

    /// `true` when `point` can ever fire under this plan.
    pub fn is_armed(&self, point: &str) -> bool {
        self.probability(point) > 0.0
    }

    /// A fresh injector evaluating this plan from its first draw.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            plan: self.clone(),
            counts: BTreeMap::new(),
            obs: Obs::disabled(),
        }
    }

    /// [`injector`](Self::injector) that also reports trip counts to `obs`
    /// as `faults.fired.<point>` counters. Observation never perturbs the
    /// draw schedule — a seed replays identically with or without it.
    pub fn injector_with_obs(&self, obs: &Obs) -> FaultInjector {
        let mut inj = self.injector();
        inj.obs = obs.clone();
        inj
    }
}

/// A stateful evaluator of a [`FaultPlan`]: each failpoint keeps an
/// evaluation counter, and draw *n* for a point is the pure function
/// `unit_f64(seed, [tag(point), n])` — reproducible, order-independent
/// across points, and fresh on every evaluation.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-point `(evaluations, fired)` counters.
    counts: BTreeMap<String, (u64, u64)>,
    /// Trip-count reporting (disabled by default; see
    /// [`FaultPlan::injector_with_obs`]).
    obs: Obs,
}

impl FaultInjector {
    /// An injector that never fires (and never allocates counters).
    pub fn disabled() -> Self {
        FaultPlan::disabled().injector()
    }

    /// `true` when `point` can ever fire.
    pub fn is_armed(&self, point: &str) -> bool {
        self.plan.is_armed(point)
    }

    /// Evaluates `point` once: draws deterministically from the plan seed
    /// and this point's evaluation counter, records the outcome, and
    /// returns whether the fault fires.
    pub fn should_fire(&mut self, point: &str) -> bool {
        let p = self.plan.probability(point);
        if p <= 0.0 {
            return false;
        }
        let entry = self.counts.entry(point.to_string()).or_insert((0, 0));
        let n = entry.0;
        entry.0 += 1;
        let fire = p >= 1.0 || unit_f64(self.plan.seed, &[point_tag(point), n]) < p;
        if fire {
            entry.1 += 1;
            if self.obs.is_enabled() {
                // Faults are rare by construction; resolving the counter
                // through the registry on each trip is fine here.
                self.obs.counter(&format!("faults.fired.{point}")).inc();
            }
        }
        fire
    }

    /// Evaluates `point` against explicit draw keys instead of the
    /// evaluation counter: the draw is the pure function
    /// `unit_f64(seed, [tag(point), keys...])`, independent of how many
    /// times — or on which thread — any point was evaluated before.
    ///
    /// This is what the parallel ingest path uses, keyed by
    /// `(chunk index, attempt)`: a plan trips the same chunks on the same
    /// attempts whether chunks are scanned serially or stolen by N
    /// workers in any order, so fault schedules survive re-scheduling.
    /// Counters and obs reporting behave exactly as in
    /// [`should_fire`](Self::should_fire).
    pub fn should_fire_keyed(&mut self, point: &str, keys: &[u64]) -> bool {
        let p = self.plan.probability(point);
        if p <= 0.0 {
            return false;
        }
        let entry = self.counts.entry(point.to_string()).or_insert((0, 0));
        entry.0 += 1;
        let fire = p >= 1.0 || {
            let mut stream = Vec::with_capacity(keys.len() + 1);
            stream.push(point_tag(point));
            stream.extend_from_slice(keys);
            unit_f64(self.plan.seed, &stream) < p
        };
        if fire {
            entry.1 += 1;
            if self.obs.is_enabled() {
                self.obs.counter(&format!("faults.fired.{point}")).inc();
            }
        }
        fire
    }

    /// Folds another injector's evaluation/fired counters into this one —
    /// the parallel ingest path hands each worker a clone (keyed draws
    /// make clones agree on the schedule) and absorbs their tallies after
    /// the scope joins.
    pub fn absorb(&mut self, other: &FaultInjector) {
        for (point, &(evals, fired)) in &other.counts {
            let entry = self.counts.entry(point.clone()).or_insert((0, 0));
            entry.0 += evals;
            entry.1 += fired;
        }
    }

    /// Times `point` has been evaluated.
    pub fn evaluations(&self, point: &str) -> u64 {
        self.counts.get(point).map(|c| c.0).unwrap_or(0)
    }

    /// Times `point` actually fired.
    pub fn fired(&self, point: &str) -> u64 {
        self.counts.get(point).map(|c| c.1).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let mut inj = FaultInjector::disabled();
        for _ in 0..100 {
            assert!(!inj.should_fire(failpoints::SWAP_COMPILE));
        }
        assert_eq!(inj.evaluations(failpoints::SWAP_COMPILE), 0);
        assert!(!inj.is_armed(failpoints::SWAP_COMPILE));
    }

    #[test]
    fn schedule_is_reproducible_from_seed() {
        let plan = FaultPlan::new(42).with(failpoints::INGEST_CHUNK_IO, 0.3);
        let sample = |plan: &FaultPlan| -> Vec<bool> {
            let mut inj = plan.injector();
            (0..200)
                .map(|_| inj.should_fire(failpoints::INGEST_CHUNK_IO))
                .collect()
        };
        assert_eq!(sample(&plan), sample(&plan));
        let other = FaultPlan::new(43).with(failpoints::INGEST_CHUNK_IO, 0.3);
        assert_ne!(sample(&plan), sample(&other));
    }

    #[test]
    fn firing_rate_tracks_probability() {
        let plan = FaultPlan::new(7).with("x", 0.25);
        let mut inj = plan.injector();
        for _ in 0..2000 {
            inj.should_fire("x");
        }
        assert_eq!(inj.evaluations("x"), 2000);
        let rate = inj.fired("x") as f64 / 2000.0;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
    }

    #[test]
    fn points_draw_independently() {
        let plan = FaultPlan::new(7).with("a", 0.5).with("b", 0.5);
        let mut inj = plan.injector();
        let a: Vec<bool> = (0..64).map(|_| inj.should_fire("a")).collect();
        let b: Vec<bool> = (0..64).map(|_| inj.should_fire("b")).collect();
        assert_ne!(a, b);
        // Interleaving evaluations does not change a point's schedule.
        let mut inj2 = plan.injector();
        let mut a2 = Vec::new();
        for _ in 0..64 {
            a2.push(inj2.should_fire("a"));
            inj2.should_fire("b");
        }
        assert_eq!(a, a2);
    }

    #[test]
    fn keyed_draws_are_schedule_independent() {
        let plan = FaultPlan::new(42).with(failpoints::INGEST_CHUNK_IO, 0.3);
        // Forward, reverse and interleaved-with-other-points evaluation
        // orders all agree per key — the draw depends only on the key.
        let keys: Vec<[u64; 2]> = (0..32).map(|c| [c, 0]).collect();
        let mut fwd = plan.injector();
        let forward: Vec<bool> = keys
            .iter()
            .map(|k| fwd.should_fire_keyed(failpoints::INGEST_CHUNK_IO, k))
            .collect();
        let mut rev = plan.injector();
        let mut reverse: Vec<bool> = keys
            .iter()
            .rev()
            .map(|k| {
                rev.should_fire("unrelated");
                rev.should_fire_keyed(failpoints::INGEST_CHUNK_IO, k)
            })
            .collect();
        reverse.reverse();
        assert_eq!(forward, reverse);
        assert_eq!(rev.evaluations(failpoints::INGEST_CHUNK_IO), 32);
        // Distinct attempts on one chunk draw independently of each other
        // and of other chunks.
        let mut inj = plan.injector();
        let attempts: Vec<bool> = (0..64)
            .map(|a| inj.should_fire_keyed(failpoints::INGEST_CHUNK_IO, &[7, a]))
            .collect();
        assert!(attempts.iter().any(|&f| f) && attempts.iter().any(|&f| !f));
    }

    #[test]
    fn absorb_merges_worker_tallies() {
        let plan = FaultPlan::new(9).with("x", 0.5);
        let mut main = plan.injector();
        let mut w1 = plan.injector();
        let mut w2 = plan.injector();
        let mut fired = 0u64;
        for c in 0..10u64 {
            let inj = if c % 2 == 0 { &mut w1 } else { &mut w2 };
            if inj.should_fire_keyed("x", &[c, 0]) {
                fired += 1;
            }
        }
        main.absorb(&w1);
        main.absorb(&w2);
        assert_eq!(main.evaluations("x"), 10);
        assert_eq!(main.fired("x"), fired);
    }

    #[test]
    fn certainties_and_clamping() {
        let plan = FaultPlan::new(1).with("always", 1.0).with("over", 7.5);
        let mut inj = plan.injector();
        assert!(inj.should_fire("always"));
        assert!(inj.should_fire("over"));
        assert_eq!(plan.probability("over"), 1.0);
    }

    #[test]
    fn failpoint_registry_is_exactly_the_wired_set() {
        // The documented registry, in declaration order. Growing the set
        // is fine — update this table alongside the consts and `ALL`.
        let expected = [
            "swap.compile",
            "ingest.chunk_io",
            "table.patch",
            "persist.journal.write",
            "persist.snapshot.rename",
            "persist.fsync",
            "serve.accept",
            "serve.request.parse",
        ];
        assert_eq!(failpoints::all(), &expected);
        assert_eq!(failpoints::all(), failpoints::ALL);
        let mut dedup: Vec<&str> = failpoints::all().to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), failpoints::all().len(), "duplicate names");
    }
}
