//! Spider and proxy identification (§4.1.1–4.1.2, Figures 9 and 10).
//!
//! The paper distinguishes three client kinds seen by a server: *visible
//! clients*, *hidden clients* behind proxies, and *spiders*. Detection
//! combines four signals:
//!
//! * volume — spiders and proxies issue very many requests,
//! * request-arrival shape — a proxy mimics the whole log's (diurnal)
//!   pattern, a spider's burst does not (Figure 9),
//! * the request distribution inside the cluster — a spider dwarfs its
//!   cluster-mates (Figure 10; the Sun spider issues 99.79 % of its
//!   cluster's requests),
//! * User-Agent diversity — one host relaying many browsers is likely a
//!   proxy.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use netclust_weblog::Log;

use crate::cluster::Clustering;

/// What a client was classified as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientClass {
    /// An ordinary (visible) client.
    Normal,
    /// A bulk crawler.
    Spider,
    /// A forwarding proxy with hidden clients behind it.
    SuspectedProxy,
}

/// Detection thresholds. Defaults follow the paper's qualitative rules.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// Minimum requests before a client is even considered.
    pub min_requests: u64,
    /// Minimum share of its cluster's requests ("almost all the requests
    /// are issued by the spider").
    pub min_cluster_share: f64,
    /// Arrival-correlation (with the whole log's hourly histogram) below
    /// which a heavy client is a spider, at or above which a proxy.
    pub correlation_split: f64,
    /// Burst share (fraction of the client's requests inside its busiest
    /// quarter of hours) above which a heavy client is a spider even when
    /// its burst happens to overlap the diurnal peak. Normal diurnal
    /// traffic concentrates ≈40–50 % there; a crawler burst ≈100 %.
    pub max_burst_share: f64,
    /// Distinct User-Agents above which a heavy client is proxy-like.
    pub min_proxy_uas: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            min_requests: 5_000,
            min_cluster_share: 0.80,
            correlation_split: 0.5,
            max_burst_share: 0.9,
            min_proxy_uas: 4,
        }
    }
}

/// Fraction of requests falling in the busiest quarter of a histogram's
/// bins (1.0 for a degenerate single-bin histogram).
pub fn burst_share(hist: &[u64]) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 || hist.len() <= 1 {
        return 1.0;
    }
    let mut sorted = hist.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let k = (sorted.len().div_ceil(4)).max(1);
    sorted[..k].iter().sum::<u64>() as f64 / total as f64
}

/// One flagged client.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The client.
    pub addr: Ipv4Addr,
    /// Spider or suspected proxy.
    pub class: ClientClass,
    /// Requests it issued.
    pub requests: u64,
    /// Share of its cluster's requests.
    pub cluster_share: f64,
    /// Pearson correlation of its hourly arrivals with the whole log's.
    pub arrival_correlation: f64,
    /// Share of its requests in its busiest quarter of hours.
    pub burst_share: f64,
    /// Distinct URLs it accessed.
    pub unique_urls: usize,
    /// Distinct User-Agent strings it sent.
    pub unique_uas: usize,
}

/// Hourly request histogram over a log subset — the series Figure 9 plots.
/// `filter` selects the requests to count (e.g. one client, one cluster,
/// or everything).
pub fn hourly_histogram<F>(log: &Log, filter: F) -> Vec<u64>
where
    F: Fn(&netclust_weblog::Request) -> bool,
{
    let hours = (log.duration_s.div_ceil(3600)).max(1) as usize;
    let mut hist = vec![0u64; hours];
    for r in log.requests.iter().filter(|r| filter(r)) {
        hist[(r.time / 3600) as usize] += 1;
    }
    hist
}

/// Pearson correlation between two equal-length series. Returns 0.0 when
/// either series is constant (no shape to compare).
pub fn correlation(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must align");
    let n = a.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<u64>() as f64 / n;
    let mb = b.iter().sum::<u64>() as f64 / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x as f64 - ma;
        let dy = y as f64 - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va * vb).sqrt()
    }
}

/// The per-client request distribution within one cluster, descending —
/// Figure 10's series.
pub fn cluster_request_distribution(clustering: &Clustering, prefix_of: Ipv4Addr) -> Vec<u64> {
    match clustering.cluster_of(prefix_of) {
        Some(cluster) => {
            let mut v: Vec<u64> = cluster.clients.iter().map(|c| c.requests).collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v
        }
        None => Vec::new(),
    }
}

/// Scans a clustered log for spiders and suspected proxies.
pub fn detect(log: &Log, clustering: &Clustering, config: &AnomalyConfig) -> Vec<Detection> {
    // Candidates: heavy clients.
    let mut per_client: HashMap<u32, u64> = HashMap::new();
    for r in &log.requests {
        *per_client.entry(r.client).or_default() += 1;
    }
    let candidates: Vec<u32> = per_client
        .iter()
        .filter(|(_, &n)| n >= config.min_requests)
        .map(|(&c, _)| c)
        .collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let candidate_set: HashSet<u32> = candidates.iter().copied().collect();

    // Whole-log arrival shape.
    let log_hist = hourly_histogram(log, |_| true);

    // Per-candidate detail in one pass.
    struct Detail {
        hist: Vec<u64>,
        urls: HashSet<u32>,
        uas: HashSet<u16>,
    }
    let hours = log_hist.len();
    let mut details: HashMap<u32, Detail> = candidates
        .iter()
        .map(|&c| {
            (
                c,
                Detail {
                    hist: vec![0; hours],
                    urls: HashSet::new(),
                    uas: HashSet::new(),
                },
            )
        })
        .collect();
    for r in &log.requests {
        if candidate_set.contains(&r.client) {
            let d = details.get_mut(&r.client).expect("candidate");
            d.hist[(r.time / 3600) as usize] += 1;
            d.urls.insert(r.url);
            d.uas.insert(r.ua);
        }
    }

    let mut out = Vec::new();
    for &client in &candidates {
        let addr = Ipv4Addr::from(client);
        let requests = per_client[&client];
        let cluster_share = clustering
            .cluster_of(addr)
            .map(|cl| {
                if cl.requests == 0 {
                    0.0
                } else {
                    requests as f64 / cl.requests as f64
                }
            })
            .unwrap_or(1.0);
        if cluster_share < config.min_cluster_share {
            continue;
        }
        let d = &details[&client];
        let arrival_correlation = correlation(&d.hist, &log_hist);
        let burst = burst_share(&d.hist);
        let class =
            if arrival_correlation < config.correlation_split || burst > config.max_burst_share {
                ClientClass::Spider
            } else if d.uas.len() >= config.min_proxy_uas {
                ClientClass::SuspectedProxy
            } else {
                // Heavy, diurnal, single-UA: an enthusiastic normal client.
                continue;
            };
        out.push(Detection {
            addr,
            class,
            requests,
            cluster_share,
            arrival_correlation,
            burst_share: burst,
            unique_urls: d.urls.len(),
            unique_uas: d.uas.len(),
        });
    }
    out.sort_by_key(|d| std::cmp::Reverse(d.requests));
    out
}

/// Removes all requests by the given clients — the paper eliminates spiders
/// (and optionally proxies) before the caching simulation (§4.1.1).
pub fn strip_clients(log: &Log, clients: &[Ipv4Addr]) -> Log {
    let drop: HashSet<u32> = clients.iter().map(|&a| u32::from(a)).collect();
    let mut out = log.clone();
    out.requests.retain(|r| !drop.contains(&r.client));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::{Universe, UniverseConfig};
    use netclust_weblog::{generate, LogSpec, ProxySpec, SpiderSpec};

    fn setup() -> (Universe, Log) {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut spec = LogSpec::tiny("a", 5);
        spec.total_requests = 60_000;
        spec.target_clients = 400;
        spec.spiders = vec![SpiderSpec {
            requests: 12_000,
            unique_urls: 400,
            companions: 6,
        }];
        spec.proxies = vec![ProxySpec {
            requests: 9_000,
            companions: 1,
        }];
        let log = generate(&u, &spec);
        (u, log)
    }

    #[test]
    fn burst_share_shapes() {
        // All mass in one of 24 bins → 1.0.
        let mut burst = vec![0u64; 24];
        burst[10] = 100;
        assert!((burst_share(&burst) - 1.0).abs() < 1e-12);
        // Uniform over 24 bins → 6/24 = 0.25.
        let uniform = vec![10u64; 24];
        assert!((burst_share(&uniform) - 0.25).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(burst_share(&[]), 1.0);
        assert_eq!(burst_share(&[0, 0, 0]), 1.0);
        assert_eq!(burst_share(&[7]), 1.0);
    }

    #[test]
    fn correlation_basics() {
        assert!((correlation(&[1, 2, 3], &[2, 4, 6]) - 1.0).abs() < 1e-12);
        assert!((correlation(&[1, 2, 3], &[3, 2, 1]) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&[5, 5, 5], &[1, 2, 3]), 0.0);
        assert_eq!(correlation(&[], &[]), 0.0);
    }

    #[test]
    fn detects_planted_spider_and_proxy() {
        let (u, log) = setup();
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        let config = AnomalyConfig {
            min_requests: 3_000,
            ..Default::default()
        };
        let detections = detect(&log, &clustering, &config);
        let spiders: Vec<_> = detections
            .iter()
            .filter(|d| d.class == ClientClass::Spider)
            .collect();
        let proxies: Vec<_> = detections
            .iter()
            .filter(|d| d.class == ClientClass::SuspectedProxy)
            .collect();
        assert_eq!(spiders.len(), 1, "{detections:?}");
        assert_eq!(spiders[0].addr, log.truth.spiders[0]);
        assert!(
            spiders[0].cluster_share > 0.8,
            "{}",
            spiders[0].cluster_share
        );
        assert_eq!(proxies.len(), 1, "{detections:?}");
        assert_eq!(proxies[0].addr, log.truth.proxies[0]);
        assert!(proxies[0].unique_uas >= 4);
        // The proxy mimics the log's arrival shape; the spider does not.
        assert!(proxies[0].arrival_correlation > spiders[0].arrival_correlation);
    }

    #[test]
    fn no_false_positives_without_anomalies() {
        let u = Universe::generate(UniverseConfig::small(7));
        let spec = LogSpec::tiny("clean", 9);
        let log = generate(&u, &spec);
        let clustering = Clustering::simple24(&log);
        let detections = detect(&log, &clustering, &AnomalyConfig::default());
        assert!(detections.is_empty(), "{detections:?}");
    }

    #[test]
    fn fig9_and_fig10_series() {
        let (u, log) = setup();
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        let spider = log.truth.spiders[0];
        let spider_u32 = u32::from(spider);
        // Fig 9(c): spider histogram is a burst — at most 7 nonzero hours.
        let spider_hist = hourly_histogram(&log, |r| r.client == spider_u32);
        let nonzero = spider_hist.iter().filter(|&&x| x > 0).count();
        assert!(nonzero <= 7, "spider hours {nonzero}");
        // Whole-log histogram covers many hours.
        let log_hist = hourly_histogram(&log, |_| true);
        assert!(log_hist.iter().filter(|&&x| x > 0).count() > 12);
        // Fig 10: the spider's cluster distribution is dominated by rank 0.
        let dist = cluster_request_distribution(&clustering, spider);
        assert!(dist.len() >= 2);
        assert_eq!(dist[0], 12_000);
        // The spider dominates its cluster (the Sun spider issued 99.79 %;
        // companions here are ordinary heavy-tailed clients).
        let total: u64 = dist.iter().sum();
        assert!(
            dist[0] as f64 / total as f64 > 0.75,
            "share {}",
            dist[0] as f64 / total as f64
        );
    }

    #[test]
    fn strip_clients_removes_only_them() {
        let (_, log) = setup();
        let spider = log.truth.spiders[0];
        let stripped = strip_clients(&log, &[spider]);
        assert!(stripped
            .requests
            .iter()
            .all(|r| r.client != u32::from(spider)));
        assert_eq!(
            stripped.requests.len(),
            log.requests.len()
                - log
                    .requests
                    .iter()
                    .filter(|r| r.client == u32::from(spider))
                    .count()
        );
    }
}
