//! Shared run configuration: one typed struct both the one-shot CLI and
//! the `netclustd` daemon parse their flags into.
//!
//! Before this existed, every knob (thread count, determinism, error
//! budget, swap policy, fsync cadence, observability) was threaded through
//! free-floating builder calls at each call site, and the daemon would
//! have grown a second, drifting copy. [`RunConfig`] is the single source
//! of truth: flags parse into it, and it *constructs* the correctly-wired
//! [`IngestPipeline`] and [`StreamingClustering`] so a knob added here
//! reaches every consumer at once.

use crate::ingest::IngestPipeline;
use crate::persist::FsyncPolicy;
use crate::stream::{StreamingClustering, SwapPolicy};
use netclust_obs::Obs;
use netclust_rtable::{CompiledMerged, MergedTable};

/// The execution knobs shared by every clustering run — batch or
/// streaming, one-shot or daemon. Construct with [`RunConfig::new`], set
/// what differs from the defaults, then mint pipelines and streaming
/// views from it.
#[derive(Debug, Clone)]
pub struct RunConfig {
    threads: Option<usize>,
    deterministic: bool,
    max_error_rate: Option<f64>,
    url_stats: bool,
    swap_policy: SwapPolicy,
    fsync: FsyncPolicy,
    obs: Obs,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: None,
            deterministic: false,
            max_error_rate: None,
            url_stats: true,
            swap_policy: SwapPolicy::default(),
            fsync: FsyncPolicy::EveryBatch,
            obs: Obs::disabled(),
        }
    }
}

impl RunConfig {
    /// The defaults: auto thread count, non-deterministic, no error
    /// budget, URL stats on, default swap policy, fsync every batch,
    /// observability off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps ingest worker threads (`None`/unset = one per core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Forces byte-identical output regardless of thread schedule.
    pub fn deterministic(mut self, on: bool) -> Self {
        self.deterministic = on;
        self
    }

    /// Aborts ingest when the malformed-line ratio exceeds `ratio`.
    pub fn max_error_rate(mut self, ratio: f64) -> Self {
        self.max_error_rate = Some(ratio.clamp(0.0, 1.0));
        self
    }

    /// Tracks per-cluster distinct-URL counts during batch ingest (on by
    /// default; the streaming path never tracks URLs).
    pub fn url_stats(mut self, on: bool) -> Self {
        self.url_stats = on;
        self
    }

    /// Validation gate for live table swaps.
    pub fn swap_policy(mut self, policy: SwapPolicy) -> Self {
        self.swap_policy = policy;
        self
    }

    /// Durability cadence for the write-ahead journal.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Observability handle every constructed component reports into.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The configured thread cap, if any.
    pub fn threads_opt(&self) -> Option<usize> {
        self.threads
    }

    /// Whether deterministic output is forced.
    pub fn is_deterministic(&self) -> bool {
        self.deterministic
    }

    /// The configured error budget, if any.
    pub fn max_error_rate_opt(&self) -> Option<f64> {
        self.max_error_rate
    }

    /// The swap-validation policy.
    pub fn swap_policy_ref(&self) -> &SwapPolicy {
        &self.swap_policy
    }

    /// The journal durability cadence.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// The observability handle.
    pub fn obs_handle(&self) -> &Obs {
        &self.obs
    }

    /// Builds a batch ingest pipeline over `table` with every knob
    /// applied. Callers may still chain pipeline-specific settings
    /// (chunk size, fault plans) on the result.
    pub fn pipeline<'t>(&self, table: &'t CompiledMerged) -> IngestPipeline<'t> {
        let mut p = IngestPipeline::new(table)
            .obs(self.obs.clone())
            .url_stats(self.url_stats)
            .deterministic(self.deterministic);
        if let Some(threads) = self.threads {
            p = p.threads(threads);
        }
        if let Some(ratio) = self.max_error_rate {
            p = p.max_error_rate(ratio);
        }
        p
    }

    /// Builds a streaming clustering view over `table` with the swap
    /// policy and observability applied.
    pub fn streaming(&self, table: MergedTable) -> StreamingClustering {
        StreamingClustering::builder(table)
            .swap_policy(self.swap_policy)
            .obs(self.obs.clone())
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::{standard_merged, Universe, UniverseConfig};
    use netclust_weblog::{generate, LogSpec};

    #[test]
    fn config_constructs_equivalent_batch_and_stream_views() {
        let u = Universe::generate(UniverseConfig::small(3));
        let mut spec = LogSpec::tiny("cfg", 5);
        spec.total_requests = 2_000;
        let log = generate(&u, &spec);
        let clf = netclust_weblog::clf::to_clf(&log);

        let cfg = RunConfig::new()
            .threads(2)
            .deterministic(true)
            .max_error_rate(0.5);
        assert_eq!(cfg.threads_opt(), Some(2));
        assert!(cfg.is_deterministic());

        let merged = standard_merged(&u, 0);
        let compiled = merged.compile();
        let report = cfg
            .pipeline(&compiled)
            .try_run(clf.as_bytes())
            .expect("within budget");

        let mut stream = cfg.streaming(standard_merged(&u, 0));
        let errors = stream.push_clf(clf.as_bytes());
        assert!(errors.is_empty());
        assert_eq!(
            report.clustering.total_requests,
            stream.total_requests(),
            "same knobs, same corpus, same totals"
        );
    }

    #[test]
    fn threads_zero_clamps_to_one() {
        let cfg = RunConfig::new().threads(0);
        assert_eq!(cfg.threads_opt(), Some(1));
    }
}
