//! Self-correction and adaptation (§3.5).
//!
//! Periodic traceroute sampling repairs the three residual defects of the
//! initial clustering:
//!
//! 1. **Unidentified clients** (~0.1 %): each starts as a singleton and is
//!    merged into the cluster whose traceroute signature it shares.
//! 2. **Too-small clusters** (case i): clusters with the same signature —
//!    e.g. the two halves of an org that announces more-specifics — are
//!    merged, and the identifying prefix/netmask recomputed as the common
//!    supernet.
//! 3. **Too-large clusters** (case ii): a cluster whose sampled clients
//!    disagree is re-traced in full and partitioned by signature.
//!
//! The *signature* of a client is the last-two-hop suffix of the optimized
//! traceroute toward it, which in the synthetic universe (noise-free
//! probing) pins down the owning organization exactly. Real deployments see
//! residual error from unresponsive or load-balanced routers, so the
//! grouping is **quorum-based and loss-tolerant**: a
//! [`ProbeFaultModel`](netclust_probe::ProbeFaultModel) can be armed on the
//! tracer (retry-with-backoff included), partial signatures containing the
//! `*` unresponsive-hop wildcard match their concrete counterparts
//! ([`netclust_probe::sigs_compatible`]), a cluster counts as homogeneous
//! when a modal signature is compatible with at least a
//! [`quorum`](CorrectionConfig::quorum) fraction of the informative
//! samples, and clients whose probes yield nothing stay with their original
//! cluster instead of being scattered.

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

use netclust_netgen::{stream_rng, Universe};
use netclust_obs::Obs;
use netclust_prefix::Ipv4Net;
use netclust_probe::{sig_specificity, sigs_compatible, ProbeFaultModel, RetryPolicy, Traceroute};
use netclust_weblog::Log;
use rand::seq::SliceRandom;

use crate::cluster::Clustering;
use crate::persist::CorrectionState;

/// Self-correction parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorrectionConfig {
    /// Clients sampled per cluster when probing for homogeneity (`r`).
    pub samples_per_cluster: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Probe fault model; `None` probes noise-free.
    pub faults: Option<ProbeFaultModel>,
    /// Retry/backoff policy applied when `faults` is armed.
    pub retry: RetryPolicy,
    /// Fraction of a cluster's *informative* sampled signatures the modal
    /// signature must be compatible with for the cluster to count as
    /// homogeneous. 1.0 (the default) reproduces the strict noise-free
    /// rule; lower it under probe loss so one wrong loss-truncated
    /// signature doesn't force a full re-trace of a healthy cluster.
    pub quorum: f64,
}

impl Default for CorrectionConfig {
    fn default() -> Self {
        CorrectionConfig {
            samples_per_cluster: 3,
            seed: 0xC0,
            faults: None,
            retry: RetryPolicy::default(),
            quorum: 1.0,
        }
    }
}

/// What self-correction did, plus the corrected clustering.
#[derive(Debug)]
pub struct CorrectionReport {
    /// Unclustered clients absorbed into existing clusters.
    pub absorbed: usize,
    /// Unclustered clients that formed new clusters.
    pub new_from_unclustered: usize,
    /// Clusters that disappeared by merging into another.
    pub merged_away: usize,
    /// Clusters that passed the homogeneity quorum intact.
    pub homogeneous: usize,
    /// Clusters partitioned because their members disagreed.
    pub split: usize,
    /// Clusters kept intact because probing yielded no signal at all.
    pub no_signal: usize,
    /// Traces that produced no usable signature (all hops unresponsive);
    /// the affected clients stayed with their original cluster.
    pub unknown_signatures: usize,
    /// Clients *parked* under a synthetic `?cluster:`/`?addr:` key because
    /// probing told us nothing, with that key — the set a later correction
    /// pass must re-probe first. Sorted by key then address.
    pub parked: Vec<(Ipv4Addr, String)>,
    /// Probes spent — including `retries`, `timeouts`, and `gave_up`
    /// counters when a fault model is armed.
    pub probe_stats: netclust_probe::ProbeStats,
    /// The corrected clustering.
    pub clustering: Clustering,
}

impl CorrectionReport {
    /// The durable residue of this pass, in the shape the persistence
    /// layer snapshots (`StreamingClustering::set_correction`).
    pub fn to_state(&self) -> CorrectionState {
        CorrectionState {
            homogeneous: self.homogeneous as u64,
            split: self.split as u64,
            no_signal: self.no_signal as u64,
            parked: self.parked.clone(),
        }
    }
}

/// Fraction of clusters all of whose members belong to one administrative
/// entity (an org, or a delegated customer inside ISP space) — the
/// ground-truth accuracy measure self-correction should improve.
pub fn org_purity(universe: &Universe, clustering: &Clustering) -> f64 {
    if clustering.clusters.is_empty() {
        return 0.0;
    }
    let pure = clustering
        .clusters
        .iter()
        .filter(|c| {
            let mut keys = c.clients.iter().map(|cl| universe.admin_key(cl.addr));
            let first = keys.next().expect("clusters are non-empty");
            keys.all(|k| k == first)
        })
        .count();
    pure as f64 / clustering.clusters.len() as f64
}

/// Signature → (member addresses, original prefixes). A `BTreeMap` so the
/// compatibility scan and every downstream pass iterate deterministically.
type Groups = BTreeMap<String, (Vec<Ipv4Addr>, Vec<Ipv4Net>)>;

/// The existing group key `sig` belongs to: an exact hit, or (for real
/// signatures) the first key a partial signature is compatible with.
/// Synthetic `?`-keys (probe gave nothing) only ever match exactly.
fn group_key(groups: &Groups, sig: &str) -> Option<String> {
    if groups.contains_key(sig) {
        return Some(sig.to_string());
    }
    if sig.starts_with('?') {
        return None;
    }
    groups
        .keys()
        .find(|k| !k.starts_with('?') && sigs_compatible(k, sig))
        .cloned()
}

/// Adds `members` under `sig`, merging into a compatible existing group
/// when one exists (and re-keying that group to the more *specific* of the
/// two signatures, so wildcard keys sharpen as concrete probes land).
/// Returns `true` when an existing group was joined.
fn insert_group(
    groups: &mut Groups,
    sig: String,
    members: Vec<Ipv4Addr>,
    prefix: Option<Ipv4Net>,
) -> bool {
    match group_key(groups, &sig) {
        Some(key) => {
            let target = if key != sig && sig_specificity(&sig) > sig_specificity(&key) {
                let old = groups.remove(&key).expect("key came from the map");
                let entry = groups.entry(sig.clone()).or_default();
                entry.0.extend(old.0);
                entry.1.extend(old.1);
                sig
            } else {
                key
            };
            let entry = groups.get_mut(&target).expect("resolved key exists");
            entry.0.extend(members);
            entry.1.extend(prefix);
            true
        }
        None => {
            groups.insert(sig, (members, prefix.into_iter().collect()));
            false
        }
    }
}

/// The modal signature of a sample: the one compatible with the most
/// informative samples (ties: more specific, then lexicographically
/// smaller), with its compatible count.
fn modal_signature<'a>(informative: &[&'a String]) -> (&'a String, usize) {
    let mut best: Option<(&String, usize)> = None;
    for &s in informative {
        let n = informative.iter().filter(|t| sigs_compatible(s, t)).count();
        let better = match best {
            None => true,
            Some((m, bn)) => {
                n > bn
                    || (n == bn
                        && (sig_specificity(s) > sig_specificity(m)
                            || (sig_specificity(s) == sig_specificity(m) && s < m)))
            }
        };
        if better {
            best = Some((s, n));
        }
    }
    best.expect("informative sample is non-empty")
}

/// Runs self-correction over a clustering of `log`.
pub fn self_correct(
    universe: &Universe,
    log: &Log,
    clustering: &Clustering,
    config: &CorrectionConfig,
) -> CorrectionReport {
    self_correct_with(universe, log, clustering, config, &Obs::disabled())
}

/// [`self_correct`] reporting per-cluster quorum outcomes and probe costs
/// to `obs` as `selfcorrect.*` counters (the quorum verdict for each
/// sampled cluster — homogeneous, split, or no-signal — plus absorption,
/// merge, and probe/retry totals). Observation never changes the sampling
/// or probing schedule.
pub fn self_correct_with(
    universe: &Universe,
    log: &Log,
    clustering: &Clustering,
    config: &CorrectionConfig,
    obs: &Obs,
) -> CorrectionReport {
    let _run = obs.span("selfcorrect.run");
    let mut tracer = Traceroute::optimized(universe);
    if let Some(model) = config.faults {
        tracer = tracer.with_faults(model, config.retry);
    }
    let mut rng = stream_rng(config.seed, &[0x5E1F]);
    // `None` = the probe learned nothing (empty path or every suffix hop
    // unresponsive); such clients are never regrouped on noise.
    let sig_of = |tr: &mut Traceroute<'_>, addr: Ipv4Addr| -> Option<String> {
        let path = tr.trace(addr);
        let suffix = path.path_suffix(2);
        if suffix.is_empty()
            || suffix
                .iter()
                .all(|h| *h == netclust_probe::UNRESPONSIVE_HOP)
        {
            None
        } else {
            Some(suffix.join(">"))
        }
    };

    let mut groups: Groups = Groups::new();
    let mut split = 0usize;
    let mut unknown = 0usize;
    let mut homogeneous = 0usize;
    let mut no_signal = 0usize;
    for cluster in &clustering.clusters {
        let mut sample: Vec<Ipv4Addr> = cluster.clients.iter().map(|c| c.addr).collect();
        sample.shuffle(&mut rng);
        sample.truncate(config.samples_per_cluster.max(1));
        let sigs: Vec<Option<String>> = sample.iter().map(|&a| sig_of(&mut tracer, a)).collect();
        let informative: Vec<&String> = sigs.iter().flatten().collect();
        unknown += sigs.len() - informative.len();
        let members: Vec<Ipv4Addr> = cluster.clients.iter().map(|c| c.addr).collect();
        if informative.is_empty() {
            // Probing told us nothing about this cluster: keep it intact
            // under a synthetic key rather than scattering its clients.
            no_signal += 1;
            insert_group(
                &mut groups,
                format!("?cluster:{}", cluster.prefix),
                members,
                Some(cluster.prefix),
            );
            continue;
        }
        let (modal, compatible) = modal_signature(&informative);
        if compatible as f64 >= config.quorum * informative.len() as f64 {
            // Homogeneous by quorum: whole cluster keeps the modal
            // signature.
            homogeneous += 1;
            insert_group(&mut groups, modal.clone(), members, Some(cluster.prefix));
        } else {
            // Mixed: trace everyone and partition by signature. Clients
            // whose probe yields nothing stay together as the remainder
            // of the original cluster.
            split += 1;
            for client in &cluster.clients {
                match sig_of(&mut tracer, client.addr) {
                    Some(sig) => {
                        insert_group(&mut groups, sig, vec![client.addr], None);
                    }
                    None => {
                        unknown += 1;
                        insert_group(
                            &mut groups,
                            format!("?cluster:{}", cluster.prefix),
                            vec![client.addr],
                            None,
                        );
                    }
                }
            }
        }
    }

    // Absorb unclustered clients.
    let mut absorbed = 0usize;
    let mut new_groups = 0usize;
    for client in &clustering.unclustered {
        match sig_of(&mut tracer, client.addr) {
            Some(sig) => {
                if insert_group(&mut groups, sig, vec![client.addr], None) {
                    absorbed += 1;
                } else {
                    new_groups += 1;
                }
            }
            None => {
                // Nothing learned: a deterministic singleton, so coverage
                // still reaches 1.0 without inventing a grouping.
                unknown += 1;
                groups.insert(
                    format!("?addr:{}", client.addr),
                    (vec![client.addr], Vec::new()),
                );
                new_groups += 1;
            }
        }
    }

    // Merge accounting: groups fed by more than one original prefix.
    let merged_away: usize = groups
        .values()
        .map(|(_, prefixes)| prefixes.len().saturating_sub(1))
        .sum();

    // Parked clients: everyone sitting under a synthetic `?` key
    // (collected before `groups` is consumed; `BTreeMap` order keeps the
    // list deterministic and canonical for persistence).
    let parked: Vec<(Ipv4Addr, String)> = groups
        .iter()
        .filter(|(key, _)| key.starts_with('?'))
        .flat_map(|(key, (members, _))| members.iter().map(|&addr| (addr, key.clone())))
        .collect();

    // Identifying prefix per group: the common supernet of the original
    // prefixes when any exist, else of the member host routes.
    let mut assign: HashMap<u32, Ipv4Net> = HashMap::new();
    for (_, (members, prefixes)) in groups {
        let prefix = if prefixes.is_empty() {
            members
                .iter()
                .map(|&a| Ipv4Net::host(a))
                .reduce(|a, b| a.common_supernet(b))
                .expect("groups are non-empty")
        } else {
            prefixes
                .iter()
                .copied()
                .reduce(|a, b| a.common_supernet(b))
                .expect("non-empty prefix list")
        };
        for addr in members {
            assign.insert(u32::from(addr), prefix);
        }
    }

    let corrected = Clustering::build(log, format!("{}+corrected", clustering.method), |a| {
        assign.get(&u32::from(a)).copied()
    });

    let probe_stats = tracer.stats();
    if obs.is_enabled() {
        // One correction pass per counter resolution: this is a cold path,
        // so going through the registry here is fine.
        obs.counter("selfcorrect.quorum.homogeneous")
            .add(homogeneous as u64);
        obs.counter("selfcorrect.quorum.split").add(split as u64);
        obs.counter("selfcorrect.quorum.no_signal")
            .add(no_signal as u64);
        obs.counter("selfcorrect.absorbed").add(absorbed as u64);
        obs.counter("selfcorrect.new_clusters")
            .add(new_groups as u64);
        obs.counter("selfcorrect.merged_away")
            .add(merged_away as u64);
        obs.counter("selfcorrect.unknown_signatures")
            .add(unknown as u64);
        obs.counter("selfcorrect.probes").add(probe_stats.probes);
        obs.counter("selfcorrect.probe_retries")
            .add(probe_stats.retries);
        obs.counter("selfcorrect.probe_timeouts")
            .add(probe_stats.timeouts);
        obs.counter("selfcorrect.probe_gave_up")
            .add(probe_stats.gave_up);
    }

    CorrectionReport {
        absorbed,
        new_from_unclustered: new_groups,
        merged_away,
        homogeneous,
        split,
        no_signal,
        unknown_signatures: unknown,
        parked,
        probe_stats,
        clustering: corrected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::UniverseConfig;
    use netclust_weblog::{generate, LogSpec};

    fn setup() -> (Universe, Log, Clustering) {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut spec = LogSpec::tiny("sc", 17);
        spec.target_clients = 500;
        spec.total_requests = 15_000;
        let log = generate(&u, &spec);
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        (u, log, clustering)
    }

    #[test]
    fn correction_improves_purity_and_coverage() {
        let (u, log, clustering) = setup();
        let before_purity = org_purity(&u, &clustering);
        let report = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        let after_purity = org_purity(&u, &report.clustering);
        assert!(
            after_purity >= before_purity,
            "purity {before_purity} -> {after_purity}"
        );
        // Noise-free probing pins sampled clients to their org; only mixed
        // clusters the r-sample missed can stay impure.
        assert!(after_purity > 0.95, "after purity {after_purity}");
        // Everything is clustered afterwards.
        assert!(report.clustering.unclustered.is_empty());
        assert!((report.clustering.coverage() - 1.0).abs() < 1e-12);
        // Client conservation.
        assert_eq!(report.clustering.client_count(), clustering.client_count());
        assert_eq!(
            report.absorbed + report.new_from_unclustered,
            clustering.unclustered.len()
        );
    }

    #[test]
    fn merges_fragmented_orgs() {
        // An org announcing more-specifics yields several clusters for one
        // administrative entity; self-correction should reduce such
        // fragmentation (pure clusters of the same org share a signature).
        let (u, log, clustering) = setup();
        let fragmented = |cl: &Clustering| -> usize {
            // Administrative entities owning more than one *pure* cluster.
            let mut per_entity: std::collections::HashMap<u64, usize> =
                std::collections::HashMap::new();
            for c in &cl.clusters {
                let keys: std::collections::BTreeSet<_> =
                    c.clients.iter().map(|cc| u.admin_key(cc.addr)).collect();
                if keys.len() == 1 {
                    if let Some(key) = keys.into_iter().next().flatten() {
                        *per_entity.entry(key).or_default() += 1;
                    }
                }
            }
            per_entity.values().filter(|&&n| n > 1).count()
        };
        let before = fragmented(&clustering);
        let report = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        let after = fragmented(&report.clustering);
        assert!(after <= before, "fragmented orgs {before} -> {after}");
        if before > 0 {
            assert!(
                report.merged_away > 0,
                "expected merges for {before} fragmented orgs"
            );
            assert_eq!(after, 0, "all fragmentation should be repaired");
        }
    }

    #[test]
    fn splits_mixed_clusters() {
        let (u, log, clustering) = setup();
        // Count impure clusters before.
        let impure = |cl: &Clustering| {
            cl.clusters
                .iter()
                .filter(|c| {
                    let set: std::collections::BTreeSet<_> =
                        c.clients.iter().map(|cc| u.admin_key(cc.addr)).collect();
                    set.len() > 1
                })
                .count()
        };
        let impure_before = impure(&clustering);
        let report = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        if impure_before > 0 {
            assert!(
                report.split > 0,
                "expected splits for {impure_before} impure clusters"
            );
        }
        let impure_after = impure(&report.clustering);
        assert!(impure_after <= impure_before);
    }

    #[test]
    fn deterministic() {
        let (u, log, clustering) = setup();
        let a = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        let b = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        assert_eq!(a.clustering.len(), b.clustering.len());
        assert_eq!(a.merged_away, b.merged_away);
        assert_eq!(a.split, b.split);
        assert_eq!(a.unknown_signatures, 0);
    }

    #[test]
    fn quorum_outcomes_reach_the_registry() {
        let (u, log, clustering) = setup();
        let obs = Obs::enabled();
        let report = self_correct_with(&u, &log, &clustering, &CorrectionConfig::default(), &obs);
        let snap = obs.snapshot(true);
        let get = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
        // Every sampled cluster got exactly one quorum verdict.
        assert_eq!(
            get("selfcorrect.quorum.homogeneous")
                + get("selfcorrect.quorum.split")
                + get("selfcorrect.quorum.no_signal"),
            clustering.clusters.len() as u64
        );
        assert_eq!(get("selfcorrect.quorum.split"), report.split as u64);
        assert_eq!(get("selfcorrect.absorbed"), report.absorbed as u64);
        assert_eq!(get("selfcorrect.probes"), report.probe_stats.probes);
        assert!(snap.spans.contains_key("selfcorrect.run"));
        // Observation is passive: the corrected clustering is identical to
        // an unobserved run.
        let plain = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        assert_eq!(plain.clustering.len(), report.clustering.len());
        assert_eq!(plain.split, report.split);
    }

    #[test]
    fn converges_under_injected_probe_loss() {
        let (u, log, clustering) = setup();
        let clean = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        let clean_purity = org_purity(&u, &clean.clustering);

        let lossy_config = CorrectionConfig {
            faults: Some(ProbeFaultModel::new(0xBAD).hop_loss(0.15).dest_loss(0.05)),
            quorum: 0.6,
            ..CorrectionConfig::default()
        };
        let lossy = self_correct(&u, &log, &clustering, &lossy_config);

        // The fault model actually bit, and the retry machinery engaged.
        let stats = lossy.probe_stats;
        assert!(
            stats.retries > 0 || stats.gave_up > 0,
            "loss model produced no recoveries: {stats:?}"
        );

        // Bounded error: correction under loss still clusters everyone and
        // conserves clients...
        assert!(lossy.clustering.unclustered.is_empty());
        assert!((lossy.clustering.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(lossy.clustering.client_count(), clustering.client_count());

        // ...and converges to the noise-free result within a documented
        // bound: purity within 0.10 of the clean run, cluster count within
        // 15%.
        let lossy_purity = org_purity(&u, &lossy.clustering);
        assert!(
            lossy_purity >= clean_purity - 0.10,
            "purity collapsed under loss: clean {clean_purity}, lossy {lossy_purity}"
        );
        let (clean_n, lossy_n) = (clean.clustering.len() as f64, lossy.clustering.len() as f64);
        assert!(
            (lossy_n - clean_n).abs() / clean_n <= 0.15,
            "cluster count diverged: clean {clean_n}, lossy {lossy_n}"
        );

        // Determinism under faults: same seed, same outcome.
        let replay = self_correct(&u, &log, &clustering, &lossy_config);
        assert_eq!(replay.clustering.len(), lossy.clustering.len());
        assert_eq!(replay.unknown_signatures, lossy.unknown_signatures);
        assert_eq!(replay.probe_stats.retries, lossy.probe_stats.retries);
    }
}
