//! Self-correction and adaptation (§3.5).
//!
//! Periodic traceroute sampling repairs the three residual defects of the
//! initial clustering:
//!
//! 1. **Unidentified clients** (~0.1 %): each starts as a singleton and is
//!    merged into the cluster whose traceroute signature it shares.
//! 2. **Too-small clusters** (case i): clusters with the same signature —
//!    e.g. the two halves of an org that announces more-specifics — are
//!    merged, and the identifying prefix/netmask recomputed as the common
//!    supernet.
//! 3. **Too-large clusters** (case ii): a cluster whose sampled clients
//!    disagree is re-traced in full and partitioned by signature.
//!
//! The *signature* of a client is the last-two-hop suffix of the optimized
//! traceroute toward it, which in the synthetic universe (noise-free
//! probing) pins down the owning organization exactly; real deployments
//! would see residual error from unresponsive or load-balanced routers.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use netclust_netgen::{stream_rng, Universe};
use netclust_prefix::Ipv4Net;
use netclust_probe::Traceroute;
use netclust_weblog::Log;
use rand::seq::SliceRandom;

use crate::cluster::Clustering;

/// Self-correction parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorrectionConfig {
    /// Clients sampled per cluster when probing for homogeneity (`r`).
    pub samples_per_cluster: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for CorrectionConfig {
    fn default() -> Self {
        CorrectionConfig {
            samples_per_cluster: 3,
            seed: 0xC0,
        }
    }
}

/// What self-correction did, plus the corrected clustering.
#[derive(Debug)]
pub struct CorrectionReport {
    /// Unclustered clients absorbed into existing clusters.
    pub absorbed: usize,
    /// Unclustered clients that formed new clusters.
    pub new_from_unclustered: usize,
    /// Clusters that disappeared by merging into another.
    pub merged_away: usize,
    /// Clusters partitioned because their members disagreed.
    pub split: usize,
    /// Probes spent.
    pub probe_stats: netclust_probe::ProbeStats,
    /// The corrected clustering.
    pub clustering: Clustering,
}

/// Fraction of clusters all of whose members belong to one administrative
/// entity (an org, or a delegated customer inside ISP space) — the
/// ground-truth accuracy measure self-correction should improve.
pub fn org_purity(universe: &Universe, clustering: &Clustering) -> f64 {
    if clustering.clusters.is_empty() {
        return 0.0;
    }
    let pure = clustering
        .clusters
        .iter()
        .filter(|c| {
            let mut keys = c.clients.iter().map(|cl| universe.admin_key(cl.addr));
            let first = keys.next().expect("clusters are non-empty");
            keys.all(|k| k == first)
        })
        .count();
    pure as f64 / clustering.clusters.len() as f64
}

/// Runs self-correction over a clustering of `log`.
pub fn self_correct(
    universe: &Universe,
    log: &Log,
    clustering: &Clustering,
    config: &CorrectionConfig,
) -> CorrectionReport {
    let mut tracer = Traceroute::optimized(universe);
    let mut rng = stream_rng(config.seed, &[0x5E1F]);
    let sig_of = |tr: &mut Traceroute<'_>, addr: Ipv4Addr| -> String {
        tr.trace(addr).path_suffix(2).join(">")
    };

    // Group membership: signature → (member addresses, original prefixes).
    let mut groups: HashMap<String, (Vec<Ipv4Addr>, Vec<Ipv4Net>)> = HashMap::new();
    let mut split = 0usize;
    for cluster in &clustering.clusters {
        let mut sample: Vec<Ipv4Addr> = cluster.clients.iter().map(|c| c.addr).collect();
        sample.shuffle(&mut rng);
        sample.truncate(config.samples_per_cluster.max(1));
        let sigs: std::collections::BTreeSet<String> =
            sample.iter().map(|&a| sig_of(&mut tracer, a)).collect();
        if sigs.len() <= 1 {
            // Homogeneous (as far as the sample shows): whole cluster keeps
            // one signature.
            let sig = sigs
                .into_iter()
                .next()
                .expect("sampled at least one client");
            let entry = groups.entry(sig).or_default();
            entry.0.extend(cluster.clients.iter().map(|c| c.addr));
            entry.1.push(cluster.prefix);
        } else {
            // Mixed: trace everyone and partition by signature.
            split += 1;
            for client in &cluster.clients {
                let sig = sig_of(&mut tracer, client.addr);
                groups.entry(sig).or_default().0.push(client.addr);
            }
        }
    }

    // Absorb unclustered clients.
    let mut absorbed = 0usize;
    let mut new_groups = 0usize;
    for client in &clustering.unclustered {
        let sig = sig_of(&mut tracer, client.addr);
        match groups.get_mut(&sig) {
            Some(entry) => {
                entry.0.push(client.addr);
                absorbed += 1;
            }
            None => {
                groups.insert(sig, (vec![client.addr], Vec::new()));
                new_groups += 1;
            }
        }
    }

    // Merge accounting: groups fed by more than one original prefix.
    let merged_away: usize = groups
        .values()
        .map(|(_, prefixes)| prefixes.len().saturating_sub(1))
        .sum();

    // Identifying prefix per group: the common supernet of the original
    // prefixes when any exist, else of the member host routes.
    let mut assign: HashMap<u32, Ipv4Net> = HashMap::new();
    for (_, (members, prefixes)) in groups {
        let prefix = if prefixes.is_empty() {
            members
                .iter()
                .map(|&a| Ipv4Net::host(a))
                .reduce(|a, b| a.common_supernet(b))
                .expect("groups are non-empty")
        } else {
            prefixes
                .iter()
                .copied()
                .reduce(|a, b| a.common_supernet(b))
                .expect("non-empty prefix list")
        };
        for addr in members {
            assign.insert(u32::from(addr), prefix);
        }
    }

    let corrected = Clustering::build(log, format!("{}+corrected", clustering.method), |a| {
        assign.get(&u32::from(a)).copied()
    });

    CorrectionReport {
        absorbed,
        new_from_unclustered: new_groups,
        merged_away,
        split,
        probe_stats: tracer.stats(),
        clustering: corrected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::UniverseConfig;
    use netclust_weblog::{generate, LogSpec};

    fn setup() -> (Universe, Log, Clustering) {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut spec = LogSpec::tiny("sc", 17);
        spec.target_clients = 500;
        spec.total_requests = 15_000;
        let log = generate(&u, &spec);
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        (u, log, clustering)
    }

    #[test]
    fn correction_improves_purity_and_coverage() {
        let (u, log, clustering) = setup();
        let before_purity = org_purity(&u, &clustering);
        let report = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        let after_purity = org_purity(&u, &report.clustering);
        assert!(
            after_purity >= before_purity,
            "purity {before_purity} -> {after_purity}"
        );
        // Noise-free probing pins sampled clients to their org; only mixed
        // clusters the r-sample missed can stay impure.
        assert!(after_purity > 0.95, "after purity {after_purity}");
        // Everything is clustered afterwards.
        assert!(report.clustering.unclustered.is_empty());
        assert!((report.clustering.coverage() - 1.0).abs() < 1e-12);
        // Client conservation.
        assert_eq!(report.clustering.client_count(), clustering.client_count());
        assert_eq!(
            report.absorbed + report.new_from_unclustered,
            clustering.unclustered.len()
        );
    }

    #[test]
    fn merges_fragmented_orgs() {
        // An org announcing more-specifics yields several clusters for one
        // administrative entity; self-correction should reduce such
        // fragmentation (pure clusters of the same org share a signature).
        let (u, log, clustering) = setup();
        let fragmented = |cl: &Clustering| -> usize {
            // Administrative entities owning more than one *pure* cluster.
            let mut per_entity: std::collections::HashMap<u64, usize> =
                std::collections::HashMap::new();
            for c in &cl.clusters {
                let keys: std::collections::BTreeSet<_> =
                    c.clients.iter().map(|cc| u.admin_key(cc.addr)).collect();
                if keys.len() == 1 {
                    if let Some(key) = keys.into_iter().next().flatten() {
                        *per_entity.entry(key).or_default() += 1;
                    }
                }
            }
            per_entity.values().filter(|&&n| n > 1).count()
        };
        let before = fragmented(&clustering);
        let report = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        let after = fragmented(&report.clustering);
        assert!(after <= before, "fragmented orgs {before} -> {after}");
        if before > 0 {
            assert!(
                report.merged_away > 0,
                "expected merges for {before} fragmented orgs"
            );
            assert_eq!(after, 0, "all fragmentation should be repaired");
        }
    }

    #[test]
    fn splits_mixed_clusters() {
        let (u, log, clustering) = setup();
        // Count impure clusters before.
        let impure = |cl: &Clustering| {
            cl.clusters
                .iter()
                .filter(|c| {
                    let set: std::collections::BTreeSet<_> =
                        c.clients.iter().map(|cc| u.admin_key(cc.addr)).collect();
                    set.len() > 1
                })
                .count()
        };
        let impure_before = impure(&clustering);
        let report = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        if impure_before > 0 {
            assert!(
                report.split > 0,
                "expected splits for {impure_before} impure clusters"
            );
        }
        let impure_after = impure(&report.clustering);
        assert!(impure_after <= impure_before);
    }

    #[test]
    fn deterministic() {
        let (u, log, clustering) = setup();
        let a = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        let b = self_correct(&u, &log, &clustering, &CorrectionConfig::default());
        assert_eq!(a.clustering.len(), b.clustering.len());
        assert_eq!(a.merged_away, b.merged_away);
        assert_eq!(a.split, b.split);
    }
}
