//! The unified query surface: one typed API for "what cluster is this
//! address in, what are the busiest clusters, is this client a spider".
//!
//! The paper's clustering is presented as an offline batch analysis, but
//! §4's real-time discussion and every downstream consumer (CDN server
//! ranking per cluster, role classification from connection patterns)
//! presume an online *ip → cluster oracle*. [`ClusterQuery`] is that
//! oracle's contract: the one-shot CLI answers it from a batch
//! [`Clustering`], the `netclustd` daemon answers it from a live
//! [`StreamingClustering`], and report rendering, verdicts, and top-N all
//! flow through the same typed requests and responses instead of
//! binary-private code paths.
//!
//! Responses render to JSON through hand-rolled, dependency-free writers
//! (the same discipline as `netclust-obs`): sorted/fixed key order, floats
//! printed with a fixed precision, so equal answers are byte-identical —
//! the property the daemon's `--deterministic` end-to-end tests pin.

use std::fmt::Write as _;
use std::net::Ipv4Addr;

use netclust_prefix::Ipv4Net;

use crate::anomaly::ClientClass;
use crate::cluster::Clustering;
use crate::stream::StreamingClustering;

/// The answer to "which cluster serves this address, and how busy is it".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterAnswer {
    /// The queried address.
    pub addr: Ipv4Addr,
    /// Its identifying prefix under the responder's view (`None` when the
    /// address matches no table entry).
    pub cluster: Option<Ipv4Net>,
    /// Distinct clients seen in that cluster (0 when unclustered or the
    /// cluster has seen no traffic).
    pub cluster_clients: u64,
    /// Requests seen from that cluster.
    pub cluster_requests: u64,
    /// Bytes served to that cluster.
    pub cluster_bytes: u64,
    /// Requests seen from the queried address itself (0 when unseen).
    pub client_requests: u64,
    /// Bytes served to the queried address itself.
    pub client_bytes: u64,
}

/// One row of a top-N answer: a cluster and its aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterRow {
    /// The cluster's identifying prefix.
    pub prefix: Ipv4Net,
    /// Distinct clients seen.
    pub clients: u64,
    /// Requests seen.
    pub requests: u64,
    /// Bytes served.
    pub bytes: u64,
    /// Distinct URLs accessed — tracked by the batch pipeline, not by the
    /// streaming aggregates, hence optional.
    pub unique_urls: Option<u64>,
}

/// Whole-view accounting: the header every report and `/healthz`-style
/// probe needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySummary {
    /// Requests consumed.
    pub total_requests: u64,
    /// Distinct clients seen.
    pub clients: u64,
    /// Clusters with at least one request.
    pub clusters: u64,
    /// Requests from clients matching no table entry.
    pub unclustered_requests: u64,
    /// Fraction of requests that were clusterable.
    pub coverage: f64,
    /// Patch-lineage version of the serving table (0 for a batch view,
    /// which never swaps).
    pub table_version: u64,
}

/// Thresholds for the *structural* spider/proxy verdict — the subset of
/// §4.1.2's signals available without the raw log: request volume and the
/// client's share of its cluster (Figure 10's "the spider dwarfs its
/// cluster-mates"). The timing and User-Agent signals need the full log
/// and stay in [`crate::detect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictPolicy {
    /// Minimum requests before a client is even suspicious.
    pub min_requests: u64,
    /// Cluster-request share at or above which a heavy client is a spider.
    pub min_cluster_share: f64,
}

impl Default for VerdictPolicy {
    fn default() -> Self {
        // Mirrors `AnomalyConfig::default()`'s volume/share thresholds.
        VerdictPolicy {
            min_requests: 5_000,
            min_cluster_share: 0.80,
        }
    }
}

/// The answer to "is this client a spider or a proxy".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictAnswer {
    /// The queried address.
    pub addr: Ipv4Addr,
    /// Its cluster under the responder's view.
    pub cluster: Option<Ipv4Net>,
    /// The structural classification (see [`VerdictPolicy`]).
    pub class: ClientClass,
    /// Requests the client issued.
    pub requests: u64,
    /// Its share of its cluster's requests (1.0 when unclustered — it *is*
    /// its whole "cluster", matching `detect`'s convention).
    pub cluster_share: f64,
}

/// The unified agent/server query surface. Batch and streaming views both
/// answer it; everything user-facing (CLI report, daemon endpoints)
/// consumes this trait instead of reaching into either representation.
pub trait ClusterQuery {
    /// Which cluster serves `addr`, with the cluster's and the client's
    /// observed traffic. Always answers — an unknown address comes back
    /// with `cluster: None` and zero counts, never an error.
    fn lookup(&self, addr: Ipv4Addr) -> ClusterAnswer;

    /// The `n` busiest clusters by request count, ties broken by prefix so
    /// equal views render byte-identical answers.
    fn top(&self, n: usize) -> Vec<ClusterRow>;

    /// Whole-view accounting.
    fn summary(&self) -> QuerySummary;

    /// Structural spider/proxy verdict for `addr` under `policy`: volume
    /// and cluster-share only (the log-dependent signals live in
    /// [`crate::detect`]). Default implementation derives everything from
    /// [`lookup`](Self::lookup).
    fn verdict(&self, addr: Ipv4Addr, policy: &VerdictPolicy) -> VerdictAnswer {
        let a = self.lookup(addr);
        let cluster_share = match a.cluster {
            Some(_) if a.cluster_requests > 0 => {
                a.client_requests as f64 / a.cluster_requests as f64
            }
            Some(_) => 0.0,
            None => 1.0,
        };
        let class = if a.client_requests < policy.min_requests {
            ClientClass::Normal
        } else if cluster_share >= policy.min_cluster_share {
            // Figure 10: "almost all the requests are issued by the
            // spider" — it dwarfs its cluster-mates.
            ClientClass::Spider
        } else {
            // Heavy but blended into a busy cluster: volume alone says
            // proxy-like; the UA/timing signals would firm this up.
            ClientClass::SuspectedProxy
        };
        VerdictAnswer {
            addr,
            cluster: a.cluster,
            class,
            requests: a.client_requests,
            cluster_share,
        }
    }
}

/// The wire name of a classification, used by JSON rendering.
pub fn class_name(class: ClientClass) -> &'static str {
    match class {
        ClientClass::Normal => "normal",
        ClientClass::Spider => "spider",
        ClientClass::SuspectedProxy => "suspected_proxy",
    }
}

fn json_opt_prefix(out: &mut String, key: &str, prefix: Option<Ipv4Net>) {
    match prefix {
        Some(p) => {
            let _ = write!(out, "\"{key}\": \"{p}\"");
        }
        None => {
            let _ = write!(out, "\"{key}\": null");
        }
    }
}

impl ClusterAnswer {
    /// Deterministic JSON rendering (fixed key order, no whitespace
    /// variance): equal answers are byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(out, "{{\"ip\": \"{}\", ", self.addr);
        json_opt_prefix(&mut out, "cluster", self.cluster);
        let _ = write!(
            out,
            ", \"cluster_clients\": {}, \"cluster_requests\": {}, \"cluster_bytes\": {}, \
             \"client_requests\": {}, \"client_bytes\": {}}}",
            self.cluster_clients,
            self.cluster_requests,
            self.cluster_bytes,
            self.client_requests,
            self.client_bytes
        );
        out
    }
}

impl ClusterRow {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"cluster\": \"{}\", \"clients\": {}, \"requests\": {}, \"bytes\": {}, ",
            self.prefix, self.clients, self.requests, self.bytes
        );
        match self.unique_urls {
            Some(u) => {
                let _ = write!(out, "\"unique_urls\": {u}}}");
            }
            None => out.push_str("\"unique_urls\": null}"),
        }
    }
}

/// Renders a top-N answer as a JSON document: `{"clusters": [...]}`.
pub fn top_to_json(rows: &[ClusterRow]) -> String {
    let mut out = String::with_capacity(64 + rows.len() * 96);
    out.push_str("{\"clusters\": [");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        row.write_json(&mut out);
    }
    out.push_str("]}");
    out
}

impl QuerySummary {
    /// Deterministic JSON rendering. `coverage` is printed with six fixed
    /// decimals so equal summaries are byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        let _ = write!(
            out,
            "{{\"total_requests\": {}, \"clients\": {}, \"clusters\": {}, \
             \"unclustered_requests\": {}, \"coverage\": {:.6}, \"table_version\": {}}}",
            self.total_requests,
            self.clients,
            self.clusters,
            self.unclustered_requests,
            self.coverage,
            self.table_version
        );
        out
    }
}

impl VerdictAnswer {
    /// Deterministic JSON rendering (fixed six-decimal share).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(out, "{{\"ip\": \"{}\", ", self.addr);
        json_opt_prefix(&mut out, "cluster", self.cluster);
        let _ = write!(
            out,
            ", \"class\": \"{}\", \"requests\": {}, \"cluster_share\": {:.6}}}",
            class_name(self.class),
            self.requests,
            self.cluster_share
        );
        out
    }
}

/// Renders the CLI's busiest-clusters table from typed rows — the one
/// rendering path both the batch report and any future streaming report
/// share. Column layout matches the historical `netclust cluster` output;
/// a view that does not track unique URLs prints `-`.
pub fn render_top_table(rows: &[ClusterRow]) -> String {
    let mut out = String::with_capacity(64 + rows.len() * 56);
    let _ = writeln!(
        out,
        "{:>20} {:>8} {:>10} {:>8}",
        "cluster", "clients", "requests", "URLs"
    );
    for row in rows {
        let urls = match row.unique_urls {
            Some(u) => u.to_string(),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>20} {:>8} {:>10} {:>8}",
            row.prefix.to_string(),
            row.clients,
            row.requests,
            urls
        );
    }
    out
}

impl ClusterQuery for StreamingClustering {
    fn lookup(&self, addr: Ipv4Addr) -> ClusterAnswer {
        let cluster = self.lookup_net(addr);
        let stats = cluster.and_then(|net| self.stats(net)).unwrap_or_default();
        let (client_requests, client_bytes) = self.client_totals(addr).unwrap_or((0, 0));
        ClusterAnswer {
            addr,
            cluster,
            cluster_clients: stats.clients,
            cluster_requests: stats.requests,
            cluster_bytes: stats.bytes,
            client_requests,
            client_bytes,
        }
    }

    fn top(&self, n: usize) -> Vec<ClusterRow> {
        self.top_k(n)
            .into_iter()
            .map(|(prefix, s)| ClusterRow {
                prefix,
                clients: s.clients,
                requests: s.requests,
                bytes: s.bytes,
                unique_urls: None,
            })
            .collect()
    }

    fn summary(&self) -> QuerySummary {
        QuerySummary {
            total_requests: self.total_requests(),
            clients: self.client_count() as u64,
            clusters: self.len() as u64,
            unclustered_requests: self.unclustered_requests(),
            coverage: self.coverage(),
            table_version: self.table_version(),
        }
    }
}

impl ClusterQuery for Clustering {
    fn lookup(&self, addr: Ipv4Addr) -> ClusterAnswer {
        match self.cluster_of(addr) {
            Some(cluster) => {
                let member = cluster
                    .clients
                    .binary_search_by_key(&addr, |c| c.addr)
                    .ok()
                    .and_then(|i| cluster.clients.get(i));
                let (client_requests, client_bytes) =
                    member.map_or((0, 0), |c| (c.requests, c.bytes));
                ClusterAnswer {
                    addr,
                    cluster: Some(cluster.prefix),
                    cluster_clients: cluster.client_count() as u64,
                    cluster_requests: cluster.requests,
                    cluster_bytes: cluster.bytes,
                    client_requests,
                    client_bytes,
                }
            }
            None => {
                // Unclustered clients are retained sorted by address.
                let member = self
                    .unclustered
                    .binary_search_by_key(&addr, |c| c.addr)
                    .ok()
                    .and_then(|i| self.unclustered.get(i));
                let (client_requests, client_bytes) =
                    member.map_or((0, 0), |c| (c.requests, c.bytes));
                ClusterAnswer {
                    addr,
                    cluster: None,
                    cluster_clients: 0,
                    cluster_requests: 0,
                    cluster_bytes: 0,
                    client_requests,
                    client_bytes,
                }
            }
        }
    }

    fn top(&self, n: usize) -> Vec<ClusterRow> {
        let mut rows: Vec<ClusterRow> = self
            .clusters
            .iter()
            .map(|c| ClusterRow {
                prefix: c.prefix,
                clients: c.client_count() as u64,
                requests: c.requests,
                bytes: c.bytes,
                unique_urls: Some(u64::from(c.unique_urls)),
            })
            .collect();
        rows.sort_by(|a, b| b.requests.cmp(&a.requests).then(a.prefix.cmp(&b.prefix)));
        rows.truncate(n);
        rows
    }

    fn summary(&self) -> QuerySummary {
        let unclustered_requests: u64 = self.unclustered.iter().map(|c| c.requests).sum();
        QuerySummary {
            total_requests: self.total_requests,
            clients: self.client_count() as u64,
            clusters: self.len() as u64,
            unclustered_requests,
            coverage: self.coverage(),
            table_version: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::{standard_merged, Universe, UniverseConfig};
    use netclust_weblog::{generate, LogSpec};

    fn setup() -> (Clustering, StreamingClustering) {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut spec = LogSpec::tiny("q", 13);
        spec.total_requests = 8_000;
        spec.target_clients = 300;
        let log = generate(&u, &spec);
        let batch = Clustering::network_aware(&log, &standard_merged(&u, 0));
        let mut stream = StreamingClustering::builder(standard_merged(&u, 0)).build();
        for r in &log.requests {
            stream.push(r);
        }
        (batch, stream)
    }

    #[test]
    fn batch_and_stream_agree_through_the_trait() {
        let (batch, stream) = setup();
        let bs = batch.summary();
        let ss = stream.summary();
        assert_eq!(bs.total_requests, ss.total_requests);
        assert_eq!(bs.clients, ss.clients);
        assert_eq!(bs.clusters, ss.clusters);
        assert_eq!(bs.unclustered_requests, ss.unclustered_requests);
        assert!((bs.coverage - ss.coverage).abs() < 1e-9);

        let bt = batch.top(10);
        let st = stream.top(10);
        assert_eq!(bt.len(), st.len());
        for (b, s) in bt.iter().zip(&st) {
            assert_eq!(b.prefix, s.prefix);
            assert_eq!(b.clients, s.clients);
            assert_eq!(b.requests, s.requests);
            assert_eq!(b.bytes, s.bytes);
            assert!(b.unique_urls.is_some());
            assert_eq!(s.unique_urls, None);
        }

        // Per-address lookups agree wherever the batch view can answer
        // (every member client).
        for row in &bt {
            let b = batch.lookup(row.prefix.addr());
            let s = stream.lookup(row.prefix.addr());
            // The network address itself may be unseen; counts still agree.
            assert_eq!(b.client_requests, s.client_requests);
        }
        for cluster in &batch.clusters {
            let Some(member) = cluster.clients.first() else {
                continue;
            };
            let b = batch.lookup(member.addr);
            let s = stream.lookup(member.addr);
            assert_eq!(b.cluster, s.cluster);
            assert_eq!(b.cluster_requests, s.cluster_requests);
            assert_eq!(b.cluster_bytes, s.cluster_bytes);
            assert_eq!(b.client_requests, s.client_requests);
            assert_eq!(b.client_bytes, s.client_bytes);
            assert_eq!(b.client_requests, member.requests);
        }
    }

    #[test]
    fn unknown_address_answers_cleanly() {
        let (batch, stream) = setup();
        let addr = Ipv4Addr::new(203, 0, 113, 7); // TEST-NET-3: never generated
        for view in [&batch as &dyn ClusterQuery, &stream as &dyn ClusterQuery] {
            let a = view.lookup(addr);
            assert_eq!(a.client_requests, 0);
            assert_eq!(a.client_bytes, 0);
            let v = view.verdict(addr, &VerdictPolicy::default());
            assert_eq!(v.class, ClientClass::Normal);
            assert_eq!(v.requests, 0);
        }
    }

    #[test]
    fn verdict_classifies_by_volume_and_share() {
        let (_, mut stream) = setup();
        // A synthetic spider: one client hammers a quiet corner of the
        // address space far beyond the volume floor.
        let spider = stream.top(1).first().map(|r| r.prefix.addr());
        let spider = spider.expect("clusters exist");
        for _ in 0..10_000 {
            stream.push_raw_for_tests(u32::from(spider), 100);
        }
        let policy = VerdictPolicy::default();
        let v = stream.verdict(spider, &policy);
        assert_eq!(v.class, ClientClass::Spider, "{v:?}");
        assert!(v.cluster_share >= policy.min_cluster_share);
        let json = v.to_json();
        assert!(json.contains("\"class\": \"spider\""), "{json}");
    }

    #[test]
    fn json_rendering_is_deterministic_and_shaped() {
        let (batch, stream) = setup();
        assert_eq!(
            top_to_json(&batch.top(5)),
            top_to_json(&batch.top(5)),
            "equal answers must render byte-identically"
        );
        let s = stream.summary().to_json();
        assert!(s.starts_with("{\"total_requests\": "), "{s}");
        assert!(s.contains("\"coverage\": 1.000000"), "{s}");
        let member = batch
            .clusters
            .iter()
            .find_map(|c| c.clients.first())
            .expect("a member");
        let a = batch.lookup(member.addr).to_json();
        assert!(a.contains("\"cluster\": \""), "{a}");
        let miss = stream.lookup(Ipv4Addr::new(203, 0, 113, 9)).to_json();
        assert!(miss.contains("\"cluster\": null"), "{miss}");
    }

    #[test]
    fn top_table_renders_both_views() {
        let (batch, stream) = setup();
        let bt = render_top_table(&batch.top(3));
        assert!(bt.contains("cluster"), "{bt}");
        assert!(bt.lines().count() >= 2);
        let st = render_top_table(&stream.top(3));
        assert!(st.contains(" -"), "streaming view has no URL column: {st}");
    }
}
