//! Epoch-based reclamation for hot-swappable shared state.
//!
//! The streaming pipeline serves LPM lookups from a compiled table that a
//! writer periodically *patches* (see `StreamingClustering::apply_deltas`).
//! Readers must never block on the writer and never observe a half-written
//! table; the writer must eventually free superseded tables without a
//! stop-the-world handshake. [`EpochTable`] provides exactly that seam:
//!
//! * the current generation lives behind an atomic pointer — a **swap is
//!   one store**, so readers see either the old or the new table, never a
//!   torn mix;
//! * each reader owns a slot in a fixed pin array; a read **pins** the
//!   global epoch into its slot, dereferences the current generation, and
//!   unpins — two atomic stores, no locks, wait-free with respect to the
//!   writer;
//! * the writer retires a superseded generation tagged with the epoch at
//!   which it was unlinked and frees it only once every pinned reader has
//!   advanced past that epoch (a reader pinned at epoch `e ≥ E` provably
//!   loaded the pointer *after* the swap that retired at `E`).
//!
//! Retired-but-not-yet-freed generations can also be **recycled**
//! ([`take_recycled`](EpochTable::take_recycled)): the streaming patch path
//! takes a safe old generation, replays the delta journal it missed, and
//! republishes it — avoiding a full multi-megabyte clone of the serving
//! table on every patch batch.
//!
//! A reader that pins and then stalls indefinitely delays reclamation (the
//! retired list grows) but never blocks the writer or other readers.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of reader slots; [`EpochTable::reader`] panics past this many
/// simultaneously-live handles.
pub const MAX_READERS: usize = 64;

/// Slot value: unclaimed.
const SLOT_FREE: u64 = u64::MAX;
/// Slot value: claimed by a reader handle, not currently inside a read.
const SLOT_IDLE: u64 = u64::MAX - 1;

/// One published version of the value. Heap-boxed so the swap is a single
/// pointer store.
struct Generation<T> {
    value: T,
}

/// Retired generations awaiting reclamation, newest last.
struct Retired<T> {
    list: Vec<(u64, *mut Generation<T>)>,
}

struct Shared<T> {
    /// The serving generation.
    current: AtomicPtr<Generation<T>>,
    /// Global epoch, bumped after every publish.
    epoch: AtomicU64,
    /// Per-reader pin slots: `SLOT_FREE`, `SLOT_IDLE`, or a pinned epoch.
    slots: [AtomicU64; MAX_READERS],
    /// Writer-side state; also serializes publishes.
    writer: Mutex<Retired<T>>,
}

// SAFETY: the raw pointers in `current` and `Retired` own heap allocations
// of `Generation<T>`; moving the structure between threads moves ownership
// of those boxes, which is sound whenever `T: Send`.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: shared access hands out `&T` from the current generation across
// threads (requires `T: Sync`) and retires boxes through the writer mutex
// (requires `T: Send`).
unsafe impl<T: Send + Sync> Sync for Shared<T> {}

impl<T> Shared<T> {
    /// Smallest epoch pinned by any reader (`u64::MAX` when none are mid-read).
    fn min_pinned(&self) -> u64 {
        self.slots
            .iter()
            // ordering: must observe every pin store that precedes a
            // publish in the SeqCst total order; Acquire alone could miss
            // a pin racing the writer's reclaim scan.
            .map(|s| s.load(SeqCst))
            .filter(|&v| v < SLOT_IDLE)
            .min()
            .unwrap_or(u64::MAX)
    }

    fn lock_writer(&self) -> MutexGuard<'_, Retired<T>> {
        self.writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Frees retired generations no pinned reader can still hold, keeping
    /// the newest `keep_spares` safe ones around as recycling candidates
    /// ([`EpochTable::take_recycled`]); returns how many were freed.
    fn reclaim_locked(&self, retired: &mut Retired<T>, keep_spares: usize) -> usize {
        let min_pin = self.min_pinned();
        let safe = retired.list.iter().filter(|&&(e, _)| min_pin >= e).count();
        let mut to_free = safe.saturating_sub(keep_spares);
        let before = retired.list.len();
        // The list is ordered oldest-first, so the retained spares are the
        // newest safe generations.
        retired.list.retain(|&(e, ptr)| {
            if min_pin >= e && to_free > 0 {
                to_free -= 1;
                // SAFETY: retired at epoch `e`; every reader pinned at an
                // epoch ≥ `e` loaded `current` after the swap that unlinked
                // this generation, so no live reference remains.
                unsafe { drop(Box::from_raw(ptr)) };
                false
            } else {
                true
            }
        });
        before - retired.list.len()
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no readers or writers remain; every
        // pointer in `current` and the retired list is a live Box we own.
        unsafe { drop(Box::from_raw(*self.current.get_mut())) };
        let retired = self
            .writer
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for (_, ptr) in retired.list.drain(..) {
            // SAFETY: as above — exclusive access, pointers own their boxes.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

/// A shared, hot-swappable value with epoch-based reclamation: cloneable
/// handle; [`reader`](Self::reader) mints wait-free read handles and
/// [`publish`](Self::publish) installs a new generation without ever
/// blocking them.
pub struct EpochTable<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for EpochTable<T> {
    fn clone(&self) -> Self {
        EpochTable {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for EpochTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochTable")
            .field("epoch", &self.epoch())
            .field("retired", &self.retired())
            .finish()
    }
}

impl<T> EpochTable<T> {
    /// Publishes `value` as generation zero.
    pub fn new(value: T) -> Self {
        EpochTable {
            shared: Arc::new(Shared {
                current: AtomicPtr::new(Box::into_raw(Box::new(Generation { value }))),
                epoch: AtomicU64::new(0),
                slots: std::array::from_fn(|_| AtomicU64::new(SLOT_FREE)),
                writer: Mutex::new(Retired { list: Vec::new() }),
            }),
        }
    }

    /// Claims a reader slot and returns a wait-free read handle (released
    /// on drop).
    ///
    /// # Panics
    /// When more than [`MAX_READERS`] handles are simultaneously live.
    pub fn reader(&self) -> EpochReader<T> {
        for (i, slot) in self.shared.slots.iter().enumerate() {
            if slot
                // ordering: claim must be totally ordered against other
                // claimants and the writer's slot scan (both success and
                // failure sides participate in reclaim decisions).
                .compare_exchange(SLOT_FREE, SLOT_IDLE, SeqCst, SeqCst)
                .is_ok()
            {
                return EpochReader {
                    shared: Arc::clone(&self.shared),
                    slot: i,
                };
            }
        }
        panic!("EpochTable: all {MAX_READERS} reader slots claimed");
    }

    /// Installs `value` as the new serving generation, retires the old one,
    /// and frees retired generations no reader can still hold — except the
    /// newest safe one, kept as a recycling spare for
    /// [`take_recycled`](Self::take_recycled). Readers in flight keep the
    /// old generation until they unpin. Returns the new epoch.
    pub fn publish(&self, value: T) -> u64 {
        let mut retired = self.shared.lock_writer();
        let fresh = Box::into_raw(Box::new(Generation { value }));
        // ordering: the pointer swap and epoch bump must be totally
        // ordered against readers' pin-then-load sequence; see `with`.
        let old = self.shared.current.swap(fresh, SeqCst);
        let e = self.shared.epoch.fetch_add(1, SeqCst) + 1;
        retired.list.push((e, old));
        self.shared.reclaim_locked(&mut retired, 1);
        e
    }

    /// Removes and returns the newest retired generation that no reader can
    /// still hold, freeing any older safe ones along the way. The caller
    /// typically replays missed deltas into it and republishes — recycling
    /// the allocation instead of cloning the serving table.
    pub fn take_recycled(&self) -> Option<T> {
        let mut retired = self.shared.lock_writer();
        let min_pin = self.shared.min_pinned();
        let newest_safe = retired.list.iter().rposition(|&(e, _)| min_pin >= e)?;
        let (_, ptr) = retired.list.remove(newest_safe);
        self.shared.reclaim_locked(&mut retired, 0);
        // SAFETY: same reclamation argument as `reclaim_locked`; we take
        // ownership of the box instead of dropping it.
        let generation = unsafe { Box::from_raw(ptr) };
        Some(generation.value)
    }

    /// Frees every retired generation no reader can still hold (including
    /// the recycling spare); returns how many were freed.
    pub fn try_reclaim(&self) -> usize {
        let mut retired = self.shared.lock_writer();
        self.shared.reclaim_locked(&mut retired, 0)
    }

    /// The current global epoch (number of publishes so far).
    pub fn epoch(&self) -> u64 {
        // ordering: observability read; SeqCst keeps it coherent with the
        // publish counter without reasoning about weaker pairings.
        self.shared.epoch.load(SeqCst)
    }

    /// Retired generations not yet freed (0 when every reader has caught up).
    pub fn retired(&self) -> usize {
        self.shared.lock_writer().list.len()
    }

    /// How many epochs the slowest mid-read reader lags the current epoch
    /// (0 when no reader is inside a read). Exported as the
    /// `stream.epoch.lag` gauge.
    pub fn reader_lag(&self) -> u64 {
        let min_pin = self.shared.min_pinned();
        if min_pin == u64::MAX {
            0
        } else {
            self.epoch().saturating_sub(min_pin)
        }
    }
}

/// Restores a reader slot to idle even if the read closure unwinds, so a
/// panicking reader delays reclamation only until its stack unwinds.
struct Unpin<'a> {
    slot: &'a AtomicU64,
}

impl Drop for Unpin<'_> {
    fn drop(&mut self) {
        // ordering: the unpin must not be reordered before the guarded
        // read completes; SeqCst keeps it after in the total order the
        // writer's reclaim scan observes.
        self.slot.store(SLOT_IDLE, SeqCst);
    }
}

/// A wait-free read handle over an [`EpochTable`]; owns one pin slot.
pub struct EpochReader<T> {
    shared: Arc<Shared<T>>,
    slot: usize,
}

impl<T> EpochReader<T> {
    /// Runs `f` against the current generation. Pins the epoch for the
    /// duration: two atomic stores, no locks, never blocks the writer.
    /// Concurrent publishes do not affect the generation `f` observes.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let slot = &self.shared.slots[self.slot];
        // Pin first, then load: a writer that retires the loaded pointer
        // afterwards must observe our pin (its retire epoch exceeds our
        // pinned value) and will not free it until we unpin.
        //
        // ordering: pin store + epoch read sit in one SeqCst total order
        // with the writer's swap/fetch_add in `publish`.
        slot.store(self.shared.epoch.load(SeqCst), SeqCst);
        let unpin = Unpin { slot };
        // ordering: the pointer load must come after the pin store in
        // the same total order, or the writer could miss the pin.
        let ptr = self.shared.current.load(SeqCst);
        // SAFETY: `ptr` was `current` after our pin store; it cannot be
        // freed while our slot holds an epoch below its retire epoch.
        let out = f(unsafe { &(*ptr).value });
        drop(unpin);
        out
    }

    /// A second handle over the same table (claims its own slot).
    ///
    /// # Panics
    /// When more than [`MAX_READERS`] handles are simultaneously live.
    pub fn fork(&self) -> EpochReader<T> {
        EpochTable {
            shared: Arc::clone(&self.shared),
        }
        .reader()
    }
}

impl<T> Drop for EpochReader<T> {
    fn drop(&mut self) {
        // ordering: releasing the slot must follow any still-visible pin
        // epoch in the writer-observed total order; SLOT_FREE makes the
        // slot claimable again.
        self.shared.slots[self.slot].store(SLOT_FREE, SeqCst);
    }
}

impl<T> std::fmt::Debug for EpochReader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochReader")
            .field("slot", &self.slot)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn reads_see_published_values() {
        let table = EpochTable::new(1u64);
        let reader = table.reader();
        assert_eq!(reader.with(|&v| v), 1);
        assert_eq!(table.publish(2), 1);
        assert_eq!(reader.with(|&v| v), 2);
        assert_eq!(table.epoch(), 1);
    }

    #[test]
    fn reclamation_waits_for_pinned_reader() {
        let table = EpochTable::new(10u64);
        let reader = table.reader();
        reader.with(|&v| {
            assert_eq!(v, 10);
            table.publish(20);
            // We are pinned below the retire epoch: the old generation must
            // survive (we still hold `&v`).
            assert_eq!(table.retired(), 1);
            assert_eq!(table.try_reclaim(), 0);
            assert_eq!(v, 10);
            assert_eq!(table.reader_lag(), 1);
        });
        // Unpinned: the writer can now free it.
        assert_eq!(table.try_reclaim(), 1);
        assert_eq!(table.retired(), 0);
        assert_eq!(table.reader_lag(), 0);
    }

    #[test]
    fn publish_keeps_one_spare_when_no_reader_is_pinned() {
        let table = EpochTable::new(0u64);
        let _reader = table.reader(); // claimed but idle: never blocks
        for i in 1..=8 {
            table.publish(i);
            // Idle readers must not pin; exactly one safe generation is
            // kept as the recycling spare, the rest are freed.
            assert_eq!(table.retired(), 1, "publish {i}");
        }
        assert_eq!(table.try_reclaim(), 1);
        assert_eq!(table.retired(), 0);
    }

    #[test]
    fn take_recycled_returns_newest_safe_generation() {
        let table = EpochTable::new(1u64);
        table.publish(2);
        table.publish(3);
        // Generations 1 and 2 were retired; with no readers, publish freed
        // 1 and kept 2 as the spare. Recycling yields it.
        assert_eq!(table.retired(), 1);
        assert_eq!(table.take_recycled(), Some(2));
        assert_eq!(table.retired(), 0);
        assert_eq!(table.take_recycled(), None);
    }

    #[test]
    fn take_recycled_skips_generations_readers_hold() {
        let table = EpochTable::new(1u64);
        let reader = table.reader();
        reader.with(|&v| {
            assert_eq!(v, 1);
            table.publish(2);
            assert_eq!(table.take_recycled(), None, "still pinned");
        });
        assert_eq!(table.take_recycled(), Some(1));
    }

    #[test]
    fn drop_frees_current_and_retired() {
        struct Tally(Arc<AtomicU64>);
        impl Drop for Tally {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        let table = EpochTable::new(Tally(Arc::clone(&drops)));
        table.publish(Tally(Arc::clone(&drops)));
        table.publish(Tally(Arc::clone(&drops)));
        // Publishing already freed what it safely could.
        let freed_early = drops.load(SeqCst);
        drop(table);
        assert_eq!(drops.load(SeqCst), 3, "freed_early = {freed_early}");
    }

    #[test]
    fn reader_slots_release_on_drop() {
        let table = EpochTable::new(0u64);
        // Far more sequential handles than slots: they must recycle.
        for _ in 0..MAX_READERS * 3 {
            let r = table.reader();
            assert_eq!(r.with(|&v| v), 0);
        }
        let held: Vec<_> = (0..MAX_READERS).map(|_| table.reader()).collect();
        drop(held);
        let _ = table.reader();
    }

    #[test]
    fn concurrent_readers_never_observe_torn_generations() {
        // Each generation is a pair summing to a constant; a torn read
        // (fields from different generations) would break the invariant.
        const SUM: u64 = 1 << 40;
        const PUBLISHES: u64 = 2_000;
        let table = EpochTable::new((0u64, SUM));
        let stop = Arc::new(AtomicBool::new(false));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let reader = table.reader();
            let stop = Arc::clone(&stop);
            joins.push(std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(SeqCst) {
                    reader.with(|&(a, b)| {
                        assert_eq!(a + b, SUM, "torn read: ({a}, {b})");
                    });
                    reads += 1;
                }
                reads
            }));
        }
        for i in 1..=PUBLISHES {
            match table.take_recycled() {
                Some(_) => table.publish((i, SUM - i)),
                None => table.publish((i, SUM - i)),
            };
        }
        stop.store(true, SeqCst);
        let reads: u64 = joins.into_iter().map(|j| j.join().expect("reader")).sum();
        assert!(reads > 0);
        assert_eq!(table.epoch(), PUBLISHES);
        // Readers are gone (handles dropped with the threads): everything
        // retired must now be reclaimable.
        table.try_reclaim();
        assert_eq!(table.retired(), 0);
    }

    #[test]
    fn forked_reader_reads_independently() {
        let table = EpochTable::new(5u64);
        let a = table.reader();
        let b = a.fork();
        drop(a);
        assert_eq!(b.with(|&v| v), 5);
    }
}
