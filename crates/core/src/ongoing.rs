//! The paper's stated *ongoing work*, implemented (§3.3 end, §6):
//!
//! * **Merging too-small clusters by name suffix** — "it is possible for
//!   clients with similar suffixes to be present in other clusters ... we
//!   are looking into merging such clusters as part of ongoing work".
//!   [`merge_by_name_suffix`] resolves a sample of each cluster and merges
//!   clusters sharing a non-trivial DNS suffix, optionally guarded by the
//!   origin AS of the identifying prefix ("Ongoing work includes using
//!   information on ASes to reduce the error ratio").
//! * **Selective-sampling validation** — "an alternative way to validate
//!   is to set a threshold (say 5%) ... performed in either a client-based
//!   or a request-based manner". [`selective_validate`] scores each
//!   sampled cluster by the fraction of (clients | requests) agreeing with
//!   the majority identity and passes it under a tolerance.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use netclust_netgen::{stream_rng, Universe};
use netclust_prefix::Ipv4Net;
use netclust_probe::{name_suffix, Nslookup, TraceOutcome, Traceroute};
use netclust_weblog::Log;
use rand::seq::SliceRandom;

use crate::cluster::Clustering;
use crate::validation::SamplePlan;

/// Result of a suffix-based merge pass.
#[derive(Debug)]
pub struct MergeReport {
    /// Merge operations applied (clusters removed by merging).
    pub merged_away: usize,
    /// Clusters with no resolvable sample (left untouched).
    pub unresolvable_clusters: usize,
    /// Merges prevented by the AS guard (same suffix, different AS).
    pub blocked_by_as_guard: usize,
    /// The merged clustering.
    pub clustering: Clustering,
}

/// Merges clusters whose sampled clients share a non-trivial DNS suffix.
///
/// For each cluster, up to `samples_per_cluster` clients are resolved; the
/// first resolvable name's suffix labels the cluster. Clusters sharing a
/// label merge (identifying prefix = common supernet). When `as_of` is
/// provided, clusters only merge if their identifying prefixes map to the
/// same origin AS — the §6 AS hint that prevents accidentally merging
/// identically-named-but-unrelated networks.
pub fn merge_by_name_suffix<F>(
    universe: &Universe,
    log: &Log,
    clustering: &Clustering,
    samples_per_cluster: usize,
    seed: u64,
    as_of: Option<F>,
) -> MergeReport
where
    F: Fn(Ipv4Net) -> Option<u32>,
{
    let mut nslookup = Nslookup::new(universe);
    let mut rng = stream_rng(seed, &[0x4E66E]);
    // Label each cluster by (suffix, AS hint).
    let mut label_of: Vec<Option<(String, Option<u32>)>> =
        Vec::with_capacity(clustering.clusters.len());
    let mut unresolvable = 0usize;
    for cluster in &clustering.clusters {
        let mut sample: Vec<Ipv4Addr> = cluster.clients.iter().map(|c| c.addr).collect();
        sample.shuffle(&mut rng);
        sample.truncate(samples_per_cluster.max(1));
        let suffix = sample
            .iter()
            .find_map(|&a| nslookup.resolve(a))
            .map(|name| name_suffix(&name).to_string());
        match suffix {
            Some(s) => {
                let hint = as_of.as_ref().and_then(|f| f(cluster.prefix));
                label_of.push(Some((s, hint)));
            }
            None => {
                unresolvable += 1;
                label_of.push(None);
            }
        }
    }

    // Group by suffix; the AS guard splits a suffix group by hint.
    let mut groups: HashMap<(String, Option<u32>), Vec<usize>> = HashMap::new();
    let mut suffix_only: HashMap<String, std::collections::BTreeSet<Option<u32>>> = HashMap::new();
    for (idx, label) in label_of.iter().enumerate() {
        if let Some((suffix, hint)) = label {
            groups.entry((suffix.clone(), *hint)).or_default().push(idx);
            suffix_only.entry(suffix.clone()).or_default().insert(*hint);
        }
    }
    let blocked_by_as_guard = if as_of.is_some() {
        suffix_only
            .values()
            .map(|hints| hints.len().saturating_sub(1))
            .sum()
    } else {
        0
    };

    // Build the merged assignment.
    let mut assign: HashMap<u32, Ipv4Net> = HashMap::new();
    let mut merged_away = 0usize;
    let mut grouped = vec![false; clustering.clusters.len()];
    for members in groups.values() {
        let prefix = members
            .iter()
            .map(|&i| clustering.clusters[i].prefix)
            .reduce(|a, b| a.common_supernet(b))
            .expect("groups are non-empty");
        merged_away += members.len() - 1;
        for &i in members {
            grouped[i] = true;
            for c in &clustering.clusters[i].clients {
                assign.insert(u32::from(c.addr), prefix);
            }
        }
    }
    for (idx, cluster) in clustering.clusters.iter().enumerate() {
        if !grouped[idx] {
            for c in &cluster.clients {
                assign.insert(u32::from(c.addr), cluster.prefix);
            }
        }
    }

    let merged = Clustering::build(log, format!("{}+suffix-merged", clustering.method), |a| {
        assign.get(&u32::from(a)).copied()
    });
    MergeReport {
        merged_away,
        unresolvable_clusters: unresolvable,
        blocked_by_as_guard,
        clustering: merged,
    }
}

/// How selective validation weighs agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectiveMode {
    /// Fraction of *clients* agreeing with the majority identity.
    ClientBased,
    /// Fraction of *requests* issued by agreeing clients.
    RequestBased,
}

/// Result of selective-sampling validation.
#[derive(Debug, Clone)]
pub struct SelectiveReport {
    /// Tolerance used (e.g. 0.05 = a cluster passes at ≥95 % agreement).
    pub tolerance: f64,
    /// Mode used.
    pub mode: SelectiveMode,
    /// Sampled clusters.
    pub sampled_clusters: usize,
    /// Clusters passing under the tolerance.
    pub passed: usize,
    /// Clusters that would fail the strict (all-must-agree) test but pass
    /// the tolerant one — the benefit of selective sampling.
    pub rescued: usize,
}

impl SelectiveReport {
    /// Pass rate among sampled clusters.
    pub fn pass_rate(&self) -> f64 {
        if self.sampled_clusters == 0 {
            0.0
        } else {
            self.passed as f64 / self.sampled_clusters as f64
        }
    }
}

/// Validates sampled clusters with a tolerance: a cluster passes when at
/// least `1 - tolerance` of its sampled clients (or their requests) share
/// the majority traceroute identity (name suffix, or path suffix when
/// unresolvable).
pub fn selective_validate(
    universe: &Universe,
    clustering: &Clustering,
    plan: &SamplePlan,
    tolerance: f64,
    mode: SelectiveMode,
) -> SelectiveReport {
    assert!((0.0..1.0).contains(&tolerance), "tolerance in [0,1)");
    let mut tracer = Traceroute::optimized(universe);
    let mut rng = stream_rng(plan.seed, &[0x5E1_EC7]);
    let mut order: Vec<usize> = (0..clustering.clusters.len()).collect();
    order.shuffle(&mut rng);
    let n_sample = ((clustering.clusters.len() as f64 * plan.fraction).round() as usize)
        .max(plan.min_clusters)
        .min(clustering.clusters.len());
    order.truncate(n_sample);

    let mut passed = 0usize;
    let mut rescued = 0usize;
    for &idx in &order {
        let cluster = &clustering.clusters[idx];
        // Identity per sampled client, weighted by requests.
        let mut weights: HashMap<String, (u64, u64)> = HashMap::new(); // id -> (clients, requests)
        for client in cluster.clients.iter().take(plan.max_clients_per_cluster) {
            let outcome = tracer.trace(client.addr);
            let id = match &outcome {
                TraceOutcome::Reached {
                    name: Some(name), ..
                } => {
                    format!("n:{}", name_suffix(name))
                }
                _ => format!("p:{}", outcome.path_suffix(2).join(">")),
            };
            let e = weights.entry(id).or_default();
            e.0 += 1;
            e.1 += client.requests;
        }
        let total: (u64, u64) = weights
            .values()
            .fold((0, 0), |acc, v| (acc.0 + v.0, acc.1 + v.1));
        let majority = weights
            .values()
            .map(|v| match mode {
                SelectiveMode::ClientBased => v.0,
                SelectiveMode::RequestBased => v.1,
            })
            .max()
            .unwrap_or(0);
        let denom = match mode {
            SelectiveMode::ClientBased => total.0,
            SelectiveMode::RequestBased => total.1,
        };
        let agreement = if denom == 0 {
            1.0
        } else {
            majority as f64 / denom as f64
        };
        if agreement >= 1.0 - tolerance {
            passed += 1;
            if weights.len() > 1 {
                rescued += 1; // strict test would have failed
            }
        }
    }
    SelectiveReport {
        tolerance,
        mode,
        sampled_clusters: n_sample,
        passed,
        rescued,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfcorrect::org_purity;
    use netclust_netgen::UniverseConfig;
    use netclust_weblog::{generate, LogSpec};

    fn setup() -> (Universe, Log, Clustering) {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut spec = LogSpec::tiny("og", 17);
        spec.target_clients = 500;
        spec.total_requests = 15_000;
        let log = generate(&u, &spec);
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        (u, log, clustering)
    }

    #[test]
    fn suffix_merge_reduces_cluster_count_and_keeps_clients() {
        // A universe where a fifth of the orgs announce more-specifics, so
        // fragmentation (the merge target) is plentiful.
        let u = Universe::generate(UniverseConfig {
            more_specific_fraction: 0.3,
            num_ases: 60,
            ..UniverseConfig::small(7)
        });
        let mut spec = LogSpec::tiny("og-frag", 17);
        spec.target_clients = 900;
        spec.total_requests = 20_000;
        let log = generate(&u, &spec);
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        let report = merge_by_name_suffix(
            &u,
            &log,
            &clustering,
            6,
            1,
            None::<fn(Ipv4Net) -> Option<u32>>,
        );
        assert_eq!(report.clustering.client_count(), clustering.client_count());
        assert_eq!(
            report.clustering.len(),
            clustering.len() - report.merged_away,
            "count bookkeeping"
        );
        // There are more-specific orgs in the universe, so some merges
        // should happen.
        assert!(report.merged_away > 0, "expected suffix merges");
        // Merging same-suffix clusters cannot reduce admin purity much:
        // suffixes identify admin entities.
        let before = org_purity(&u, &clustering);
        let after = org_purity(&u, &report.clustering);
        assert!(after >= before - 0.02, "purity {before} -> {after}");
    }

    #[test]
    fn as_guard_blocks_cross_as_merges() {
        let (u, log, clustering) = setup();
        // A degenerate AS hint that maps every prefix to a distinct "AS"
        // blocks every merge.
        let mut counter = 0u32;
        let unique: HashMap<Ipv4Net, u32> = clustering
            .clusters
            .iter()
            .map(|c| {
                counter += 1;
                (c.prefix, counter)
            })
            .collect();
        let report = merge_by_name_suffix(
            &u,
            &log,
            &clustering,
            3,
            1,
            Some(|p: Ipv4Net| unique.get(&p).copied()),
        );
        assert_eq!(
            report.merged_away, 0,
            "unique AS hints must block all merges"
        );
        // And the constant hint behaves like no guard.
        let constant =
            merge_by_name_suffix(&u, &log, &clustering, 3, 1, Some(|_: Ipv4Net| Some(1u32)));
        let unguarded = merge_by_name_suffix(
            &u,
            &log,
            &clustering,
            3,
            1,
            None::<fn(Ipv4Net) -> Option<u32>>,
        );
        assert_eq!(constant.merged_away, unguarded.merged_away);
    }

    #[test]
    fn selective_validation_is_more_tolerant_than_strict() {
        let (u, _log, clustering) = setup();
        let plan = SamplePlan {
            fraction: 1.0,
            min_clusters: 10,
            ..Default::default()
        };
        let strict = selective_validate(&u, &clustering, &plan, 0.0, SelectiveMode::ClientBased);
        let tolerant = selective_validate(&u, &clustering, &plan, 0.10, SelectiveMode::ClientBased);
        assert!(tolerant.passed >= strict.passed);
        assert!(tolerant.pass_rate() >= strict.pass_rate());
        assert_eq!(strict.rescued, 0, "strict mode rescues nothing");
        // Request-based mode also works and stays in range.
        let by_req = selective_validate(&u, &clustering, &plan, 0.05, SelectiveMode::RequestBased);
        assert!((0.0..=1.0).contains(&by_req.pass_rate()));
        assert_eq!(by_req.sampled_clusters, strict.sampled_clusters);
    }
}
