//! Effect of BGP dynamics on cluster identification (§3.4, Table 4).
//!
//! For a vantage point observed over a period of days, the paper computes
//! the **dynamic prefix set** (prefixes not present in *every* snapshot of
//! the period) and its size, the **maximum effect**. It then intersects
//! that set with the prefixes each log's clusters are identified by —
//! overall and for the busy subset — and finds that churn touches under
//! 3 % of clusters.

use std::collections::BTreeSet;

use netclust_netgen::{snapshot, Universe, VantageSpec};
use netclust_prefix::Ipv4Net;
use netclust_rtable::{dynamic_prefix_set, RoutingTable};

use crate::cluster::Clustering;

/// Per-log dynamics figures for one period (the per-log rows of Table 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogDynamics {
    /// Log name.
    pub log_name: String,
    /// Total clusters in the log's clustering.
    pub total_clusters: usize,
    /// Clusters whose identifying prefix appears in this vantage point's
    /// end-of-period table ("`<log>` prefix" rows).
    pub prefixes_in_table: usize,
    /// Of those, prefixes in the period's dynamic set ("Maximum effect").
    pub prefix_effect: usize,
    /// Busy clusters in the log (after thresholding).
    pub busy_total: usize,
    /// Busy clusters identified via this vantage point's table.
    pub busy_in_table: usize,
    /// Of those, in the dynamic set.
    pub busy_effect: usize,
}

/// One period row of Table 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicsRow {
    /// Period length in days (0 = intra-day snapshots only).
    pub period_days: u32,
    /// Table size at the end of the period.
    pub table_size: usize,
    /// Size of the dynamic prefix set over the period.
    pub max_effect: usize,
    /// Per-log figures.
    pub logs: Vec<LogDynamics>,
}

/// A log to analyze: name, its clustering, and the indices of its busy
/// clusters (from [`crate::threshold::threshold_busy`]).
pub struct LogUnderStudy<'a> {
    /// Log name for the report.
    pub name: String,
    /// The log's network-aware clustering.
    pub clustering: &'a Clustering,
    /// Busy-cluster indices within `clustering.clusters`.
    pub busy: &'a [usize],
}

/// Runs the Table 4 analysis for one vantage point over several periods.
///
/// `ticks_per_day` controls how many intra-day snapshots are generated per
/// day (the paper's sites dump every ~2 hours → 12/day; smaller values
/// speed up large experiments without changing the qualitative shape).
pub fn dynamics_analysis(
    universe: &Universe,
    spec: &VantageSpec,
    logs: &[LogUnderStudy<'_>],
    periods: &[u32],
    ticks_per_day: u32,
) -> Vec<DynamicsRow> {
    assert!(ticks_per_day >= 1, "need at least one snapshot per day");
    let mut rows = Vec::with_capacity(periods.len());
    for &period in periods {
        // All snapshots of the period.
        let mut snaps: Vec<RoutingTable> = Vec::new();
        for day in 0..=period {
            for tick in 0..ticks_per_day {
                snaps.push(snapshot(universe, spec, day, tick));
            }
        }
        let refs: Vec<&RoutingTable> = snaps.iter().collect();
        let dynamic = dynamic_prefix_set(&refs);
        let end_table = snaps.last().expect("at least one snapshot");
        let end_set: BTreeSet<Ipv4Net> = end_table.prefix_set();

        let logs_out = logs
            .iter()
            .map(|study| {
                let in_table =
                    |idx: &usize| end_set.contains(&study.clustering.clusters[*idx].prefix);
                let in_dynamic =
                    |idx: &usize| dynamic.contains(&study.clustering.clusters[*idx].prefix);
                let all: Vec<usize> = (0..study.clustering.clusters.len()).collect();
                LogDynamics {
                    log_name: study.name.clone(),
                    total_clusters: study.clustering.clusters.len(),
                    prefixes_in_table: all.iter().filter(|i| in_table(i)).count(),
                    prefix_effect: all.iter().filter(|i| in_dynamic(i)).count(),
                    busy_total: study.busy.len(),
                    busy_in_table: study.busy.iter().filter(|i| in_table(i)).count(),
                    busy_effect: study.busy.iter().filter(|i| in_dynamic(i)).count(),
                }
            })
            .collect();

        rows.push(DynamicsRow {
            period_days: period,
            table_size: end_table.len(),
            max_effect: dynamic.len(),
            logs: logs_out,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::threshold_busy;
    use netclust_netgen::UniverseConfig;
    use netclust_weblog::{generate, LogSpec};

    #[test]
    fn effects_grow_with_period_and_stay_small() {
        let u = Universe::generate(UniverseConfig::small(7));
        let log = generate(&u, &LogSpec::tiny("d", 3));
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        let thresh = threshold_busy(&clustering, 0.7);
        let spec = VantageSpec::new("OREGON", 0.94, 0.03);
        let studies = [LogUnderStudy {
            name: "d".into(),
            clustering: &clustering,
            busy: &thresh.busy,
        }];
        let rows = dynamics_analysis(&u, &spec, &studies, &[0, 4, 14], 4);
        assert_eq!(rows.len(), 3);
        // Maximum effect grows (weakly) with the period.
        assert!(rows[0].max_effect <= rows[1].max_effect);
        assert!(rows[1].max_effect <= rows[2].max_effect);
        // Even intra-day snapshots churn a little.
        assert!(rows[0].max_effect > 0);
        // Churn touches a minority of the table.
        for row in &rows {
            assert!(
                (row.max_effect as f64) < row.table_size as f64 * 0.25,
                "effect {} of {}",
                row.max_effect,
                row.table_size
            );
            let l = &row.logs[0];
            assert!(l.prefix_effect <= l.total_clusters);
            assert!(l.busy_effect <= l.busy_total);
            assert!(l.busy_in_table <= l.busy_total);
            assert!(l.prefixes_in_table <= l.total_clusters);
            // Busy clusters are a subset, so their in-table count cannot
            // exceed the overall one.
            assert!(l.busy_in_table <= l.prefixes_in_table);
        }
    }

    #[test]
    fn table_sizes_grow_over_weeks() {
        let u = Universe::generate(UniverseConfig::small(11));
        let spec = VantageSpec::new("OREGON", 0.94, 0.03);
        let rows = dynamics_analysis(&u, &spec, &[], &[0, 14], 2);
        assert!(rows[1].table_size > rows[0].table_size);
    }

    #[test]
    #[should_panic(expected = "at least one snapshot")]
    fn zero_ticks_panics() {
        let u = Universe::generate(UniverseConfig::small(7));
        let spec = VantageSpec::new("X", 0.5, 0.05);
        let _ = dynamics_analysis(&u, &spec, &[], &[0], 0);
    }
}
