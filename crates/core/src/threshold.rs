//! Busy-cluster thresholding (§4.1.3, Table 5).
//!
//! After removing spiders and proxies, the paper keeps only *busy* client
//! clusters: the smallest set of top clusters (by request count) whose
//! requests add up to at least a target fraction (70 %) of all requests in
//! the log. Table 5 reports the resulting threshold and the client/request
//! ranges of the kept and filtered clusters.

use crate::cluster::Clustering;

/// Outcome of thresholding one clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdReport {
    /// Total clusters before thresholding.
    pub total_clusters: usize,
    /// Requests-per-cluster of the smallest kept cluster (Table 5's
    /// "Threshold" row).
    pub threshold: u64,
    /// Indices (into `Clustering::clusters`) of busy clusters, descending
    /// by requests.
    pub busy: Vec<usize>,
    /// Clients across busy clusters.
    pub busy_clients: u64,
    /// Requests across busy clusters.
    pub busy_requests: u64,
    /// Request range (min, max) among busy clusters.
    pub busy_request_range: (u64, u64),
    /// Client-count range among busy clusters.
    pub busy_client_range: (u64, u64),
    /// Request range among filtered (less-busy) clusters.
    pub lessbusy_request_range: (u64, u64),
    /// Client-count range among filtered clusters.
    pub lessbusy_client_range: (u64, u64),
}

/// Selects busy clusters covering `fraction` of the clustering's clustered
/// requests.
///
/// # Panics
///
/// Panics unless `0.0 < fraction <= 1.0`.
pub fn threshold_busy(clustering: &Clustering, fraction: f64) -> ThresholdReport {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1]"
    );
    let mut order: Vec<usize> = (0..clustering.clusters.len()).collect();
    order.sort_by(|&a, &b| {
        clustering.clusters[b]
            .requests
            .cmp(&clustering.clusters[a].requests)
            .then(a.cmp(&b))
    });
    let clustered_total: u64 = clustering.clusters.iter().map(|c| c.requests).sum();
    let target = (clustered_total as f64 * fraction).ceil() as u64;

    let mut busy = Vec::new();
    let mut acc = 0u64;
    for &idx in &order {
        if acc >= target {
            break;
        }
        acc += clustering.clusters[idx].requests;
        busy.push(idx);
    }

    let range = |indices: &[usize], f: &dyn Fn(usize) -> u64| -> (u64, u64) {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for &i in indices {
            let v = f(i);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo == u64::MAX {
            (0, 0)
        } else {
            (lo, hi)
        }
    };
    let lessbusy: Vec<usize> = order[busy.len()..].to_vec();
    let req = |i: usize| clustering.clusters[i].requests;
    let cli = |i: usize| clustering.clusters[i].client_count() as u64;
    let busy_clients: u64 = busy.iter().map(|&i| cli(i)).sum();

    ThresholdReport {
        total_clusters: clustering.clusters.len(),
        threshold: busy.last().map(|&i| req(i)).unwrap_or(0),
        busy_requests: acc,
        busy_request_range: range(&busy, &req),
        busy_client_range: range(&busy, &cli),
        lessbusy_request_range: range(&lessbusy, &req),
        lessbusy_client_range: range(&lessbusy, &cli),
        busy_clients,
        busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use netclust_weblog::{Log, LogTruth, Request, UrlMeta};

    /// Clusters with requests 1000, 500, 300, 100, 50 (five /24s).
    fn log() -> Log {
        let volumes = [1000u64, 500, 300, 100, 50];
        let mut requests = Vec::new();
        for (i, &n) in volumes.iter().enumerate() {
            // Two clients per cluster, splitting the volume 70/30.
            for (c, share) in [(1u8, 7u64), (2, 3)] {
                let addr = u32::from_be_bytes([10, 0, i as u8, c]);
                for j in 0..(n * share / 10) {
                    requests.push(Request {
                        time: j as u32 % 100,
                        client: addr,
                        url: 0,
                        bytes: 1,
                        status: 200,
                        ua: 0,
                    });
                }
            }
        }
        requests.sort_by_key(|r| r.time);
        Log {
            name: "t".into(),
            requests,
            urls: vec![UrlMeta {
                path: "/".into(),
                size: 1,
            }],
            user_agents: vec!["UA".into()],
            start_time: 0,
            duration_s: 100,
            truth: LogTruth::default(),
        }
    }

    #[test]
    fn seventy_percent_rule() {
        let clustering = Clustering::simple24(&log());
        let report = threshold_busy(&clustering, 0.7);
        // Total 1950; 70 % = 1365; clusters 1000 + 500 = 1500 suffice.
        assert_eq!(report.busy.len(), 2);
        assert_eq!(report.busy_requests, 1500);
        assert_eq!(report.threshold, 500);
        assert_eq!(report.busy_request_range, (500, 1000));
        assert_eq!(report.busy_client_range, (2, 2));
        assert_eq!(report.busy_clients, 4);
        assert_eq!(report.lessbusy_request_range, (50, 300));
        assert_eq!(report.total_clusters, 5);
    }

    #[test]
    fn full_fraction_keeps_everything() {
        let clustering = Clustering::simple24(&log());
        let report = threshold_busy(&clustering, 1.0);
        assert_eq!(report.busy.len(), 5);
        assert_eq!(report.threshold, 50);
        assert_eq!(report.lessbusy_request_range, (0, 0));
    }

    #[test]
    fn busy_order_is_descending() {
        let clustering = Clustering::simple24(&log());
        let report = threshold_busy(&clustering, 0.9);
        let reqs: Vec<u64> = report
            .busy
            .iter()
            .map(|&i| clustering.clusters[i].requests)
            .collect();
        assert!(reqs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let clustering = Clustering::simple24(&log());
        let _ = threshold_busy(&clustering, 0.0);
    }

    #[test]
    fn empty_clustering() {
        let empty = Log {
            name: "e".into(),
            requests: vec![],
            urls: vec![],
            user_agents: vec!["UA".into()],
            start_time: 0,
            duration_s: 0,
            truth: LogTruth::default(),
        };
        let clustering = Clustering::simple24(&empty);
        let report = threshold_busy(&clustering, 0.7);
        assert!(report.busy.is_empty());
        assert_eq!(report.threshold, 0);
    }
}
