//! Network-aware clustering of Web clients — the paper's contribution.
//!
//! This crate implements the full pipeline of *On Network-Aware Clustering
//! of Web Clients* (Krishnamurthy & Wang, SIGCOMM 2000) on top of the
//! substrate crates:
//!
//! * [`Clustering`] — longest-prefix-match clustering against a merged
//!   BGP/registry table, plus the simple `/24` and classful baselines (§2,
//!   §3.2),
//! * [`IngestPipeline`] — fused zero-copy ingest from raw CLF bytes
//!   (memory-mapped files included) straight to a [`Clustering`],
//! * [`Distributions`], [`cdf`] — the per-cluster client/request/URL
//!   metrics of Figures 3–7,
//! * [`validate`] — sampled nslookup/traceroute validation (§3.3, Table 3),
//! * [`dynamics_analysis`] — the effect of BGP churn (§3.4, Table 4),
//! * [`self_correct`] — merge/split/absorb repair via traceroute sampling
//!   (§3.5),
//! * [`detect`] — spider and proxy identification (§4.1.2, Figures 9–10),
//! * [`threshold_busy`] — busy-cluster selection (§4.1.3, Table 5),
//! * [`network_clusters`] — second-level clustering and
//!   [`session_report`] — time-partitioned stability (§3.6).
//!
//! The Web-caching simulation the clusters feed (§4.1.5, Figures 11–12)
//! lives in `netclust-cachesim`. Crash-safe persistence of the streaming
//! state — checksummed snapshots plus a write-ahead delta journal — lives
//! in [`persist`].

#![warn(missing_docs)]

mod anomaly;
mod cluster;
mod config;
mod dynamics;
mod epoch;
mod faults;
mod fx;
mod ingest;
mod metrics;
mod netcluster;
mod ongoing;
pub mod persist;
pub mod query;
mod selfcorrect;
mod sessions;
mod stream;
mod threshold;
mod validation;

pub use anomaly::{
    cluster_request_distribution, correlation, detect, hourly_histogram, strip_clients,
    AnomalyConfig, ClientClass, Detection,
};
pub use cluster::{ClientStats, Cluster, Clustering};
pub use config::RunConfig;
pub use dynamics::{dynamics_analysis, DynamicsRow, LogDynamics, LogUnderStudy};
pub use epoch::{EpochReader, EpochTable, MAX_READERS};
pub use faults::{failpoints, FaultInjector, FaultPlan};
pub use ingest::{IngestError, IngestPipeline, IngestReport, QuarantinedLine};
pub use metrics::{cdf, cdf_at, Distributions, Summary};
pub use netcluster::{network_clusters, NetworkCluster};
pub use ongoing::{
    merge_by_name_suffix, selective_validate, MergeReport, SelectiveMode, SelectiveReport,
};
pub use persist::{
    CorrectionState, FeedProgress, FsyncPolicy, JournalBatch, PersistError, RecoveryReport,
    StateStore, StreamState,
};
pub use query::{
    ClusterAnswer, ClusterQuery, ClusterRow, QuerySummary, VerdictAnswer, VerdictPolicy,
};
pub use selfcorrect::{
    org_purity, self_correct, self_correct_with, CorrectionConfig, CorrectionReport,
};
pub use sessions::{session_report, SessionReport, SessionStats};
pub use stream::{
    PatchBatchReport, PatchStats, RestoreError, StreamHandle, StreamStats, StreamingBuilder,
    StreamingClustering, SwapPolicy, SwapRejection, SwapReport, SwapStats,
};
// The shared error-accounting shape carried by `IngestReport`, consumed by
// `StreamingClustering::try_swap`, and produced by rtable's `ParseReport`;
// defined in `netclust-obs`, re-exported so core users need no extra import.
pub use netclust_obs::ErrorCounts;
pub use threshold::{threshold_busy, ThresholdReport};
pub use validation::{validate, SamplePlan, TestCounts, ValidationReport};
