//! Fused zero-copy log ingest: bytes in, clusters out.
//!
//! The classic route from a Common Log Format file to a [`Clustering`]
//! materializes an intermediate `Log` — every line becomes a `String`
//! split, every path and user agent an interned allocation — before the
//! clustering pass re-aggregates it all per client. For the multi-million
//! line logs of the paper's evaluation that intermediate costs more than
//! the clustering itself.
//!
//! [`IngestPipeline`] fuses the stages instead:
//!
//! 1. the input buffer (ideally an `mmap`'d file, see
//!    [`chunk::LogData`]) is cut into line-aligned chunks
//!    ([`chunk::split_lines`]),
//! 2. each chunk is scanned by the zero-copy byte parser
//!    ([`clf_bytes::records_no_ua`]) straight into per-client
//!    accumulators — sharded by address range when parallel, one global
//!    accumulator when serial — no `Log`, no per-line allocation; paths
//!    intern to dense ids as borrowed `&[u8]` slices of the input,
//! 3. the address-range shards merge into one address-sorted client
//!    list, batch longest-prefix matching assigns clusters over the
//!    compiled table, and the standard assembly produces a [`Clustering`]
//!    byte-identical to the `from_clf` → `network_aware_compiled` route.
//!
//! Determinism matches the batch paths: chunk outputs merge per address
//! partition (summation commutes) and concatenate in address order, and
//! parse errors are reported with buffer-global line numbers in line
//! order, so the result is independent of thread count and scheduling.

use std::io;
use std::net::Ipv4Addr;
use std::path::Path;

use netclust_prefix::Ipv4Net;
use netclust_rtable::CompiledMerged;
use netclust_weblog::chunk::{self, Chunk, LogData};
use netclust_weblog::clf::ClfError;
use netclust_weblog::clf_bytes;
use rayon::prelude::*;

use crate::cluster::{self, ClientStats, Clustering};
use crate::fx::FxHashMap;

/// Default chunk size: large enough to amortise per-chunk setup, small
/// enough that a handful of chunks per thread keeps the pool busy.
const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// A configured fused ingest pipeline over a compiled routing table.
///
/// ```no_run
/// use netclust_core::IngestPipeline;
/// # fn demo(table: &netclust_rtable::CompiledMerged) -> std::io::Result<()> {
/// let report = IngestPipeline::new(table).run_file("access.log")?;
/// println!(
///     "{} clusters from {} lines ({} malformed)",
///     report.clustering.len(),
///     report.lines,
///     report.errors.len()
/// );
/// # Ok(())
/// # }
/// ```
pub struct IngestPipeline<'t> {
    table: &'t CompiledMerged,
    chunk_bytes: usize,
    url_stats: bool,
}

/// What one ingest run produced.
pub struct IngestReport {
    /// The network-aware clustering of the log's clients.
    pub clustering: Clustering,
    /// Malformed lines, in line order, with buffer-global line numbers —
    /// identical to what the string parser would report.
    pub errors: Vec<ClfError>,
    /// Total input lines (blank and malformed included).
    pub lines: usize,
    /// Input size in bytes.
    pub bytes: usize,
}

impl<'t> IngestPipeline<'t> {
    /// A pipeline over `table` with default chunking and per-cluster
    /// unique-URL counting enabled.
    pub fn new(table: &'t CompiledMerged) -> Self {
        IngestPipeline {
            table,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            url_stats: true,
        }
    }

    /// Sets the target chunk size in bytes (chunks always extend to a
    /// line boundary).
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes.max(1);
        self
    }

    /// Enables or disables per-cluster unique-URL counting. Disabling it
    /// skips retaining (client, path) pairs entirely; `unique_urls` stays
    /// 0 on every cluster.
    pub fn url_stats(mut self, on: bool) -> Self {
        self.url_stats = on;
        self
    }

    /// Runs the fused pipeline over an in-memory (or memory-mapped) CLF
    /// buffer.
    pub fn run<'a>(&self, data: &'a [u8]) -> IngestReport {
        let chunks = chunk::split_lines(data, self.chunk_bytes);
        let lines = chunks
            .last()
            .map(|c| c.first_line + count_lines(c.data))
            .unwrap_or(0);

        // Stage 1+2: parse chunks straight into per-client accumulators.
        // In parallel each chunk gets its own address-partitioned output;
        // serially one unpartitioned accumulator runs across all chunks —
        // no per-chunk maps to re-merge.
        let parallel = rayon::current_num_threads() > 1 && chunks.len() > 1;
        let n_parts = if parallel {
            cluster::merge_partitions()
        } else {
            1
        };
        let shift = 32 - n_parts.trailing_zeros();
        let mut outs: Vec<ChunkOut<'a>> = if parallel {
            chunks
                .par_iter()
                .map(|c| {
                    let mut out = ChunkOut::new(n_parts);
                    out.scan(c, shift, self.url_stats);
                    out
                })
                .collect()
        } else {
            let mut out = ChunkOut::new(1);
            for c in &chunks {
                out.scan(c, shift, self.url_stats);
            }
            vec![out]
        };

        // Errors: chunks are in line order and each chunk's errors are
        // ascending, so concatenation is the serial parse's error list.
        let mut errors = Vec::new();
        for o in &outs {
            errors.extend_from_slice(&o.errors);
        }

        // Stage 3a: one worker per address partition merges its slice of
        // every chunk; sorted runs concatenate into global address order
        // (partition p holds exactly the clients whose top bits equal p).
        // The serial accumulator is already global: just sort it.
        let (clients, dense_addr): (Vec<ClientStats>, Vec<u32>) = if parallel {
            let parts: Vec<usize> = (0..n_parts).collect();
            let merged: Vec<Vec<ClientStats>> = parts
                .par_iter()
                .map(|&p| {
                    let mut per_client: FxHashMap<u32, (u64, u64)> = FxHashMap::default();
                    for o in &outs {
                        for (&client, &id) in &o.parts[p] {
                            let (requests, bytes) = o.accum[id as usize];
                            let e = per_client.entry(client).or_insert((0, 0));
                            e.0 += requests;
                            e.1 += bytes;
                        }
                    }
                    cluster::finish_aggregation(per_client)
                })
                .collect();
            (merged.into_iter().flatten().collect(), Vec::new())
        } else {
            let o = &mut outs[0];
            serial_clients(
                std::mem::take(&mut o.accum),
                std::mem::take(&mut o.dense_addr),
            )
        };

        // Stage 3b: batch LPM assignment over the compiled table.
        let addrs: Vec<u32> = clients.iter().map(|c| u32::from(c.addr)).collect();
        let assignments: Vec<Option<Ipv4Net>> = if parallel {
            addrs
                .par_chunks(cluster::CLIENT_CHUNK)
                .map(|chunk| self.table.net_for_batch(chunk))
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect()
        } else {
            let mut out = Vec::new();
            self.table.net_for_batch_into(&addrs, &mut out);
            out
        };

        let total_requests: u64 = clients.iter().map(|c| c.requests).sum();
        let mut clustering =
            Clustering::from_assignments("network-aware", clients, assignments, total_requests);

        // Unique URLs per cluster: each scan interned its paths to dense
        // chunk-local ids (equal ids ⇔ equal byte strings — exactly the
        // `Log` URL-interning identity); translate those to global ids in
        // chunk order, map clients to clusters, and sort-dedup the compact
        // (cluster, url) id pairs.
        if self.url_stats {
            if parallel {
                // Translate chunk-local url ids to global ids in chunk
                // order, map clients to clusters, and sort-dedup the
                // packed (cluster, url) pairs.
                let mut global: FxHashMap<&[u8], u32> = FxHashMap::default();
                let mut pairs = Vec::with_capacity(outs.iter().map(|o| o.pairs.len()).sum());
                for o in &outs {
                    let trans: Vec<u32> = o
                        .url_paths
                        .iter()
                        .map(|&p| {
                            let next = global.len() as u32;
                            *global.entry(p).or_insert(next)
                        })
                        .collect();
                    pairs.extend(o.pairs.iter().map(|&(c, id)| (c, trans[id as usize])));
                }
                let to_key = |&(client, url): &(u32, u32)| {
                    clustering
                        .cluster_index(Ipv4Addr::from(client))
                        .map(|idx| ((idx as u64) << 32) | url as u64)
                };
                let mapped: Vec<u64> = pairs
                    .par_chunks(cluster::REQUEST_CHUNK)
                    .map(|ch| ch.iter().filter_map(to_key).collect::<Vec<_>>())
                    .collect::<Vec<_>>()
                    .into_iter()
                    .flatten()
                    .collect();
                count_unique_sorted(&mut clustering, mapped);
            } else {
                // The serial scan already produced globally-dense client
                // and url ids, so cluster mapping is one table build away
                // from being an array index per pair.
                let pairs = std::mem::take(&mut outs[0].pairs);
                let n_urls = outs[0].url_paths.len();
                let cluster_of: Vec<u32> = dense_addr
                    .iter()
                    .map(|&a| {
                        clustering
                            .cluster_index(Ipv4Addr::from(a))
                            .map_or(u32::MAX, |i| i as u32)
                    })
                    .collect();
                let n_bits = clustering.clusters.len() as u64 * n_urls as u64;
                if n_bits > 0 && n_bits <= BITMAP_MAX_BITS {
                    count_unique_bitmap(&mut clustering, &pairs, &cluster_of, n_urls);
                } else {
                    let mapped: Vec<u64> = pairs
                        .iter()
                        .filter_map(|&(dense, url)| {
                            let idx = cluster_of[dense as usize];
                            (idx != u32::MAX).then_some(((idx as u64) << 32) | url as u64)
                        })
                        .collect();
                    count_unique_sorted(&mut clustering, mapped);
                }
            }
        }

        IngestReport {
            clustering,
            errors,
            lines,
            bytes: data.len(),
        }
    }

    /// Opens `path` (memory-mapping when the platform allows, see
    /// [`chunk::LogData::open`]) and runs the pipeline over it.
    pub fn run_file(&self, path: impl AsRef<Path>) -> io::Result<IngestReport> {
        let data = LogData::open(path)?;
        Ok(self.run(&data))
    }
}

/// Bitmap dedup ceiling: above this many (cluster × url) bits the serial
/// unique-URL count falls back to sort-dedup (32 MiB of bitmap).
const BITMAP_MAX_BITS: u64 = 1 << 28;

/// Scan output: clients interned to dense ids through small address →
/// id maps (partitioned by address range; one partition when serial)
/// with (requests, bytes) accumulated in a dense-indexed vector — the
/// map entry stays 8 bytes so the randomly-probed table fits cache —
/// plus paths interned to dense local ids with their (client, url id)
/// pairs, and parse errors with global line numbers. Parallel runs hold
/// one instance per chunk and key pairs by client *address*; the serial
/// run feeds every chunk through a single unpartitioned instance and
/// keys pairs by the dense client *id*.
struct ChunkOut<'a> {
    parts: Vec<FxHashMap<u32, u32>>,
    accum: Vec<(u64, u64)>,
    dense_addr: Vec<u32>,
    url_ids: FxHashMap<&'a [u8], u32>,
    url_paths: Vec<&'a [u8]>,
    pairs: Vec<(u32, u32)>,
    errors: Vec<ClfError>,
}

impl<'a> ChunkOut<'a> {
    fn new(n_parts: usize) -> Self {
        ChunkOut {
            parts: vec![FxHashMap::default(); n_parts],
            accum: Vec::new(),
            dense_addr: Vec::new(),
            url_ids: FxHashMap::default(),
            url_paths: Vec::new(),
            pairs: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Accumulates one chunk. The User-Agent field is never consumed
    /// downstream, so the scan uses the no-UA record parser (identical
    /// records and errors, minus the per-line UA quote scan).
    fn scan(&mut self, c: &Chunk<'a>, shift: u32, url_stats: bool) {
        let serial = self.parts.len() == 1;
        for item in clf_bytes::records_no_ua(c.data, c.first_line) {
            match item {
                Ok((_, r)) => {
                    // u64 shift: an unpartitioned scan passes shift == 32.
                    let part = ((r.addr as u64) >> shift) as usize;
                    let accum = &mut self.accum;
                    let dense_addr = &mut self.dense_addr;
                    let id = *self.parts[part].entry(r.addr).or_insert_with(|| {
                        let id = accum.len() as u32;
                        accum.push((0, 0));
                        dense_addr.push(r.addr);
                        id
                    });
                    let e = &mut self.accum[id as usize];
                    e.0 += 1;
                    e.1 += r.bytes as u64;
                    let client_key = if serial { id } else { r.addr };
                    if url_stats {
                        let url_paths = &mut self.url_paths;
                        let id = *self.url_ids.entry(r.path).or_insert_with(|| {
                            url_paths.push(r.path);
                            (url_paths.len() - 1) as u32
                        });
                        self.pairs.push((client_key, id));
                    }
                }
                Err(e) => self.errors.push(e),
            }
        }
    }
}

/// Sorts the serial accumulator into address order, also returning the
/// scan's dense-id → address table.
fn serial_clients(accum: Vec<(u64, u64)>, dense_addr: Vec<u32>) -> (Vec<ClientStats>, Vec<u32>) {
    let mut clients: Vec<ClientStats> = dense_addr
        .iter()
        .zip(&accum)
        .map(|(&client, &(requests, bytes))| ClientStats {
            addr: Ipv4Addr::from(client),
            requests,
            bytes,
        })
        .collect();
    clients.sort_by_key(|c| c.addr);
    (clients, dense_addr)
}

/// Counts distinct (cluster, url) pairs into `unique_urls` by sorting
/// packed `cluster << 32 | url` keys.
fn count_unique_sorted(clustering: &mut Clustering, mut mapped: Vec<u64>) {
    mapped.sort_unstable();
    mapped.dedup();
    for key in mapped {
        clustering.clusters[(key >> 32) as usize].unique_urls += 1;
    }
}

/// Bitmap window size for [`count_unique_bitmap`]: 2²¹ bits = 256 KiB,
/// small enough to stay cache-resident while a bucket's keys scatter
/// into it.
const BITMAP_WINDOW_BITS: u64 = 1 << 21;

/// Counts distinct (cluster, url) pairs into `unique_urls` via one bit
/// per (cluster, url) — `pairs` hold dense client ids, `cluster_of` maps
/// them to cluster indices (`u32::MAX` = unclustered).
fn count_unique_bitmap(
    clustering: &mut Clustering,
    pairs: &[(u32, u32)],
    cluster_of: &[u32],
    n_urls: usize,
) {
    count_unique_bitmap_windowed(clustering, pairs, cluster_of, n_urls, BITMAP_WINDOW_BITS)
}

/// [`count_unique_bitmap`] with an explicit window size (tests shrink it
/// to exercise the bucketed path on small inputs).
///
/// Setting bits straight into a `clusters × urls` bitmap costs one cache
/// miss per pair once the bitmap outgrows the cache. Instead, keys first
/// scatter into per-window buckets (sequential appends), then each
/// window's bits are set and popcount-walked inside one cache-resident
/// slice that is reused across windows.
fn count_unique_bitmap_windowed(
    clustering: &mut Clustering,
    pairs: &[(u32, u32)],
    cluster_of: &[u32],
    n_urls: usize,
    window_bits: u64,
) {
    let n_bits = clustering.clusters.len() as u64 * n_urls as u64;
    let to_key = |&(dense, url): &(u32, u32)| {
        let idx = cluster_of[dense as usize];
        (idx != u32::MAX).then(|| idx as u64 * n_urls as u64 + url as u64)
    };
    if n_bits <= window_bits {
        let mut bits = vec![0u64; (n_bits as usize).div_ceil(64)];
        for key in pairs.iter().filter_map(to_key) {
            bits[(key >> 6) as usize] |= 1 << (key & 63);
        }
        tally_window(clustering, &bits, 0, n_urls);
        return;
    }
    let n_windows = n_bits.div_ceil(window_bits) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_windows];
    for key in pairs.iter().filter_map(to_key) {
        buckets[(key / window_bits) as usize].push((key % window_bits) as u32);
    }
    let mut window = vec![0u64; (window_bits as usize) / 64];
    for (w, keys) in buckets.iter().enumerate() {
        if keys.is_empty() {
            continue;
        }
        window.fill(0);
        for &k in keys {
            window[(k >> 6) as usize] |= 1 << (k & 63);
        }
        tally_window(clustering, &window, w as u64 * window_bits, n_urls);
    }
}

/// Adds each set bit of `bits` (bit `i` = global key `base + i`) to its
/// cluster's `unique_urls`.
fn tally_window(clustering: &mut Clustering, bits: &[u64], base: u64, n_urls: usize) {
    for (w, &word) in bits.iter().enumerate() {
        let mut word = word;
        while word != 0 {
            let key = base + (w as u64) * 64 + word.trailing_zeros() as u64;
            clustering.clusters[(key / n_urls as u64) as usize].unique_urls += 1;
            word &= word - 1;
        }
    }
}

/// Line count with `str::lines` semantics: newlines, plus a final
/// unterminated line when present.
fn count_lines(data: &[u8]) -> usize {
    let newlines = chunk::count_newlines(data);
    if data.last().is_some_and(|&b| b != b'\n') {
        newlines + 1
    } else {
        newlines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_rtable::{MergedTable, RoutingTable, TableKind};
    use netclust_weblog::clf;

    fn table() -> CompiledMerged {
        let bgp = RoutingTable::new(
            "B",
            "d0",
            TableKind::Bgp,
            vec![
                "12.65.128.0/19".parse().unwrap(),
                "24.48.2.0/23".parse().unwrap(),
            ],
        );
        MergedTable::merge([&bgp]).compile()
    }

    const SAMPLE: &str = "\
12.65.147.94 - - [13/Feb/1998:07:00:00 +0000] \"GET /a HTTP/1.0\" 200 120 \"-\" \"UA one\"\n\
not a log line\n\
12.65.144.247 - - [13/Feb/1998:07:00:01 +0000] \"GET /b HTTP/1.0\" 200 80 \"-\" \"UA two\"\n\
24.48.3.87 - - [13/Feb/1998:07:00:02 +0000] \"GET /a HTTP/1.0\" 404 0\n\
12.65.147.94 - - [13/Feb/1998:07:00:03 +0000] \"GET /a HTTP/1.0\" 200 120\n\
99.1.1.1 - - [13/Feb/1998:07:00:04 +0000] \"GET /c HTTP/1.0\" 200 10\n";

    #[test]
    fn matches_string_parser_route() {
        let table = table();
        let (log, log_errors) = clf::from_clf("s", SAMPLE);
        let expect = Clustering::network_aware_compiled(&log, &table);

        for chunk_bytes in [1usize, 50, 1 << 20] {
            let report = IngestPipeline::new(&table)
                .chunk_bytes(chunk_bytes)
                .run(SAMPLE.as_bytes());
            let got = &report.clustering;
            assert_eq!(got.method, expect.method);
            assert_eq!(got.total_requests, expect.total_requests);
            assert_eq!(got.clusters.len(), expect.clusters.len());
            for (g, e) in got.clusters.iter().zip(&expect.clusters) {
                assert_eq!(g.prefix, e.prefix, "chunk_bytes={chunk_bytes}");
                assert_eq!(g.clients, e.clients);
                assert_eq!(g.requests, e.requests);
                assert_eq!(g.bytes, e.bytes);
                assert_eq!(g.unique_urls, e.unique_urls);
            }
            assert_eq!(got.unclustered, expect.unclustered);
            assert_eq!(report.errors, log_errors);
            assert_eq!(report.lines, 6);
            assert_eq!(report.bytes, SAMPLE.len());
        }
    }

    #[test]
    fn url_stats_off_skips_counting() {
        let table = table();
        let report = IngestPipeline::new(&table)
            .url_stats(false)
            .run(SAMPLE.as_bytes());
        assert!(report
            .clustering
            .clusters
            .iter()
            .all(|c| c.unique_urls == 0));
        // Everything else is unaffected.
        let with = IngestPipeline::new(&table).run(SAMPLE.as_bytes());
        assert_eq!(
            report.clustering.total_requests,
            with.clustering.total_requests
        );
        assert_eq!(report.clustering.len(), with.clustering.len());
    }

    #[test]
    fn bitmap_and_sorted_counts_agree() {
        let table = table();
        let base = IngestPipeline::new(&table).run(SAMPLE.as_bytes());
        // Rebuild a pair set by hand and count it every way. With 40
        // urls the key space (clusters × 40 bits) crosses a 64-bit
        // window boundary: cluster 1's keys 40..80 straddle it.
        let pairs: &[(u32, u32)] = &[(0, 0), (0, 1), (1, 39), (1, 39), (2, 0), (2, 39), (3, 1)];
        let cluster_of: &[u32] = &[0, 0, 1, u32::MAX];
        let n_urls = 40usize;
        let mut via_bitmap = base.clustering.clone();
        for c in &mut via_bitmap.clusters {
            c.unique_urls = 0;
        }
        let mut via_sort = via_bitmap.clone();
        count_unique_bitmap(&mut via_bitmap, pairs, cluster_of, n_urls);
        let mapped: Vec<u64> = pairs
            .iter()
            .filter_map(|&(dense, url)| {
                let idx = cluster_of[dense as usize];
                (idx != u32::MAX).then_some(((idx as u64) << 32) | url as u64)
            })
            .collect();
        count_unique_sorted(&mut via_sort, mapped);
        for (b, s) in via_bitmap.clusters.iter().zip(&via_sort.clusters) {
            assert_eq!(b.unique_urls, s.unique_urls);
        }
        // Clients 0+1 share cluster 0 with urls {0,1} ∪ {39} = 3 distinct;
        // client 2 gives cluster 1 urls {0,39}; client 3 is unclustered.
        assert_eq!(via_bitmap.clusters[0].unique_urls, 3);
        assert_eq!(via_bitmap.clusters[1].unique_urls, 2);
        // A window of 64 bits (smaller than clusters × urls) forces the
        // bucketed multi-window path; counts must not change. Window
        // boundaries land mid-cluster when n_urls doesn't divide 64,
        // which is exactly the seam worth covering.
        for window_bits in [64u64, 128] {
            let mut via_windows = via_sort.clone();
            for c in &mut via_windows.clusters {
                c.unique_urls = 0;
            }
            count_unique_bitmap_windowed(&mut via_windows, pairs, cluster_of, n_urls, window_bits);
            for (w, s) in via_windows.clusters.iter().zip(&via_sort.clusters) {
                assert_eq!(w.unique_urls, s.unique_urls, "window_bits={window_bits}");
            }
        }
    }

    #[test]
    fn empty_input() {
        let table = table();
        let report = IngestPipeline::new(&table).run(b"");
        assert!(report.clustering.is_empty());
        assert!(report.errors.is_empty());
        assert_eq!(report.lines, 0);
        assert_eq!(report.bytes, 0);
    }

    #[test]
    fn run_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("netclust-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        std::fs::write(&path, SAMPLE).unwrap();
        let table = table();
        let from_file = IngestPipeline::new(&table).run_file(&path).unwrap();
        let from_mem = IngestPipeline::new(&table).run(SAMPLE.as_bytes());
        assert_eq!(from_file.clustering.len(), from_mem.clustering.len());
        assert_eq!(from_file.errors, from_mem.errors);
        assert_eq!(from_file.lines, from_mem.lines);
        std::fs::remove_dir_all(&dir).ok();
    }
}
