//! Fused zero-copy log ingest: bytes in, clusters out.
//!
//! The classic route from a Common Log Format file to a [`Clustering`]
//! materializes an intermediate `Log` — every line becomes a `String`
//! split, every path and user agent an interned allocation — before the
//! clustering pass re-aggregates it all per client. For the multi-million
//! line logs of the paper's evaluation that intermediate costs more than
//! the clustering itself.
//!
//! [`IngestPipeline`] fuses the stages instead:
//!
//! 1. the input buffer (ideally an `mmap`'d file, see
//!    [`chunk::LogData`]) is cut into line-aligned chunks
//!    ([`chunk::split_lines`]),
//! 2. N independent per-shard pipelines — scoped `std::thread` workers,
//!    one shard each — steal chunks off a shared atomic index and scan
//!    them with the zero-copy byte parser
//!    ([`clf_bytes::records_no_ua`]) straight into shard-local
//!    accumulators: dense client ids behind address-range-partitioned
//!    maps, dense url ids, no `Log`, no per-line allocation (paths
//!    intern as borrowed `&[u8]` slices of the input),
//! 3. a deterministic merge remaps shard-local ids into canonical global
//!    order — per-partition client sums concatenate in address order,
//!    shard url ids translate through one global intern — then batch
//!    longest-prefix matching with software prefetch assigns clusters
//!    over the compiled table, and the standard assembly produces a
//!    [`Clustering`] byte-identical to the `from_clf` →
//!    `network_aware_compiled` route.
//!
//! Determinism holds by construction, not by scheduling: client sums
//! commute, partition runs concatenate in address order, parse errors
//! carry buffer-global line numbers (one sort restores line order), and
//! unique-URL counts are invariant under url-id relabeling. The report
//! is therefore byte-identical across thread counts and across
//! work-stealing schedules — [`threads(1)`](IngestPipeline::threads) is
//! the reference the parallel bench asserts against.
//!
//! ## Hardening
//!
//! Real access logs are torn, truncated, and occasionally garbage. The
//! pipeline therefore supports:
//!
//! * **error budgets** — [`IngestPipeline::max_error_rate`] turns "skip
//!   malformed lines forever" into "abort with context past N%"
//!   ([`IngestError::ErrorBudget`]),
//! * **quarantine** — [`IngestReport::quarantine`] resolves every rejected
//!   line to its byte range in the input so operators can extract exactly
//!   what was dropped,
//! * **fault injection** — [`IngestPipeline::fault_plan`] arms the
//!   [`failpoints::INGEST_CHUNK_IO`] failpoint: chunk reads fail
//!   mid-scan, the partial chunk state is discarded (chunk-granularity
//!   checkpoint), and the read retries up to
//!   [`io_retries`](IngestPipeline::io_retries) times. A recovered run is
//!   byte-identical to an unfaulted one; an unrecovered one fails cleanly
//!   ([`IngestError::ChunkIo`]) with nothing half-counted.

use std::fmt;
use std::io;
use std::net::Ipv4Addr;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use netclust_obs::{Counter, ErrorCounts, Histogram, Obs};
use netclust_prefix::Ipv4Net;
use netclust_rtable::{CompiledMerged, DEFAULT_PREFETCH_DISTANCE};
use netclust_weblog::chunk::{self, Chunk, LogData};
use netclust_weblog::clf::ClfError;
use netclust_weblog::clf_bytes;

use crate::cluster::{self, ClientStats, Clustering};
use crate::faults::{failpoints, FaultPlan};
use crate::fx::FxHashMap;

/// Pre-resolved ingest instrumentation. Handles are looked up once when an
/// [`Obs`] is attached ([`IngestPipeline::obs`]) so the hot loops never
/// touch the registry; from a disabled `Obs` every handle is a no-op.
/// Counting is per chunk or per run — never per line.
#[derive(Clone, Debug, Default)]
struct IngestObs {
    chunks: Counter,
    bytes: Counter,
    lines: Counter,
    malformed: Counter,
    clients: Counter,
    io_faults: Counter,
    chunks_retried: Counter,
    chunk_bytes: Histogram,
    chunk_errors: Histogram,
}

impl IngestObs {
    fn resolve(obs: &Obs) -> Self {
        Self {
            chunks: obs.counter("ingest.chunks"),
            bytes: obs.counter("ingest.bytes"),
            lines: obs.counter("ingest.lines"),
            malformed: obs.counter("ingest.malformed"),
            clients: obs.counter("ingest.clients"),
            io_faults: obs.counter("ingest.io_faults"),
            chunks_retried: obs.counter("ingest.chunks_retried"),
            chunk_bytes: obs.histogram("ingest.chunk_bytes"),
            chunk_errors: obs.histogram("ingest.chunk_errors"),
        }
    }
}

/// Default chunk size: large enough to amortise per-chunk setup, small
/// enough that a handful of chunks per thread keeps the pool busy.
const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// A configured fused ingest pipeline over a compiled routing table.
///
/// ```no_run
/// use netclust_core::IngestPipeline;
/// # fn demo(table: &netclust_rtable::CompiledMerged) -> Result<(), netclust_core::IngestError> {
/// let report = IngestPipeline::new(table).run_file("access.log")?;
/// println!(
///     "{} clusters from {} lines ({} malformed)",
///     report.clustering.len(),
///     report.counts.records,
///     report.counts.malformed
/// );
/// # Ok(())
/// # }
/// ```
pub struct IngestPipeline<'t> {
    table: &'t CompiledMerged,
    chunk_bytes: usize,
    url_stats: bool,
    max_error_rate: Option<f64>,
    io_retries: u32,
    threads: Option<usize>,
    deterministic: bool,
    faults: FaultPlan,
    obs: Obs,
    metrics: IngestObs,
}

/// Why a hardened ingest run ([`IngestPipeline::try_run`] /
/// [`IngestPipeline::run_file`]) aborted.
#[derive(Debug)]
pub enum IngestError {
    /// Opening or reading the input file failed.
    Io(io::Error),
    /// A chunk read kept failing past the retry budget; nothing from the
    /// failing chunk was counted.
    ChunkIo {
        /// 0-based index of the failing chunk.
        chunk: usize,
        /// Buffer-global line number of the chunk's first line.
        first_line: usize,
        /// Read attempts made (1 initial + retries).
        attempts: u32,
    },
    /// The malformed-line ratio blew the configured budget.
    ErrorBudget {
        /// Lines seen vs lines malformed (the workspace-wide shape).
        counts: ErrorCounts,
        /// The configured budget ([`IngestPipeline::max_error_rate`]).
        max_ratio: f64,
        /// The first few parse errors, for context.
        sample: Vec<ClfError>,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest I/O error: {e}"),
            IngestError::ChunkIo {
                chunk,
                first_line,
                attempts,
            } => write!(
                f,
                "chunk {chunk} (first line {first_line}) failed after {attempts} read attempts"
            ),
            IngestError::ErrorBudget {
                counts,
                max_ratio,
                sample,
            } => {
                write!(
                    f,
                    "{} of {} lines malformed ({:.2}% > {:.2}% budget)",
                    counts.malformed,
                    counts.records,
                    counts.ratio() * 100.0,
                    max_ratio * 100.0
                )?;
                if let Some(first) = sample.first() {
                    write!(f, "; first at line {}", first.line)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// One rejected input line resolved to its byte range (see
/// [`IngestReport::quarantine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedLine {
    /// 0-based buffer-global line number.
    pub line: usize,
    /// Byte offset of the line's first byte.
    pub start: usize,
    /// Byte offset one past the line's last content byte (the trailing
    /// newline, when present, is not included).
    pub end: usize,
}

/// What one ingest run produced.
#[derive(Debug)]
pub struct IngestReport {
    /// The network-aware clustering of the log's clients.
    pub clustering: Clustering,
    /// Malformed lines, in line order, with buffer-global line numbers —
    /// identical to what the string parser would report.
    pub errors: Vec<ClfError>,
    /// Lines seen vs lines malformed — the workspace-wide error-accounting
    /// shape (`counts.records` is the old `lines` field; `counts.malformed`
    /// always equals `errors.len()`).
    pub counts: ErrorCounts,
    /// Input size in bytes.
    pub bytes: usize,
    /// Injected chunk-read faults encountered (0 unless a fault plan is
    /// armed).
    pub io_faults: u64,
    /// Chunks that needed at least one re-read to ingest.
    pub chunks_retried: u64,
}

impl IngestReport {
    /// Fraction of *parsed* requests assigned to a cluster. Quarantined
    /// (malformed) lines never became requests and are excluded from the
    /// denominator — they are accounted in [`counts`](Self::counts), not
    /// as clustered misses — so injected `ingest.chunk_io` faults or log
    /// corruption cannot dilute coverage. `1.0` on an empty input.
    pub fn coverage(&self) -> f64 {
        if self.clustering.total_requests == 0 {
            return 1.0;
        }
        let unclustered: u64 = self.clustering.unclustered.iter().map(|c| c.requests).sum();
        1.0 - unclustered as f64 / self.clustering.total_requests as f64
    }

    /// Resolves every malformed line to its byte range in `data` (the
    /// buffer this report was produced from) — the quarantine sink: the
    /// exact rejected bytes, with line numbers, ready to be written out
    /// for offline inspection. One pass, in line order.
    pub fn quarantine(&self, data: &[u8]) -> Vec<QuarantinedLine> {
        let mut out = Vec::with_capacity(self.errors.len());
        let mut wanted = self.errors.iter().map(|e| e.line).peekable();
        let mut line = 0usize;
        let mut pos = 0usize;
        while pos < data.len() {
            let Some(&want) = wanted.peek() else { break };
            let nl = data[pos..].iter().position(|&b| b == b'\n');
            let end = nl.map_or(data.len(), |p| pos + p);
            if line == want {
                out.push(QuarantinedLine {
                    line,
                    start: pos,
                    end,
                });
                wanted.next();
            }
            line += 1;
            pos = end + 1;
        }
        out
    }
}

impl<'t> IngestPipeline<'t> {
    /// A pipeline over `table` with default chunking and per-cluster
    /// unique-URL counting enabled.
    pub fn new(table: &'t CompiledMerged) -> Self {
        IngestPipeline {
            table,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            url_stats: true,
            max_error_rate: None,
            io_retries: 2,
            threads: None,
            deterministic: false,
            faults: FaultPlan::disabled(),
            obs: Obs::disabled(),
            metrics: IngestObs::default(),
        }
    }

    /// Attaches an observability handle: stage spans (`ingest.run/chunk`,
    /// `parse`, `lpm`, `aggregate`), per-chunk byte/error histograms, and
    /// run counters all record into it. Resolution happens here, once —
    /// with the default [`Obs::disabled`] the instrumentation is inert.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.metrics = IngestObs::resolve(&obs);
        self.obs = obs;
        self
    }

    /// Sets the target chunk size in bytes (chunks always extend to a
    /// line boundary).
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes.max(1);
        self
    }

    /// Enables or disables per-cluster unique-URL counting. Disabling it
    /// skips retaining (client, path) pairs entirely; `unique_urls` stays
    /// 0 on every cluster.
    pub fn url_stats(mut self, on: bool) -> Self {
        self.url_stats = on;
        self
    }

    /// Sets the malformed-line budget for [`try_run`](Self::try_run) /
    /// [`run_file`](Self::run_file): a run whose error ratio exceeds
    /// `ratio` (clamped to `[0, 1]`) aborts with
    /// [`IngestError::ErrorBudget`] instead of silently skipping bad
    /// lines forever. Unset by default (skip-and-report, the classic
    /// behaviour).
    pub fn max_error_rate(mut self, ratio: f64) -> Self {
        self.max_error_rate = Some(ratio.clamp(0.0, 1.0));
        self
    }

    /// Sets how many times a failed chunk read is retried before the run
    /// aborts with [`IngestError::ChunkIo`] (default 2).
    pub fn io_retries(mut self, retries: u32) -> Self {
        self.io_retries = retries;
        self
    }

    /// Pins the worker count for the sharded scan. Default: the host's
    /// available parallelism. `1` pins the serial reference path; the
    /// report is byte-identical at every setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Replaces work stealing with a static strided chunk assignment
    /// (worker *w* scans chunks `w, w + N, …`). The report is already
    /// schedule-independent; this additionally makes *observability*
    /// reproducible — per-shard `ingest.shard<w>.*` counters depend on
    /// which worker scanned which chunk, so two `--deterministic` runs
    /// must not let the race decide. Costs load balance; off by default.
    pub fn deterministic(mut self, on: bool) -> Self {
        self.deterministic = on;
        self
    }

    /// Arms a fault plan. When [`failpoints::INGEST_CHUNK_IO`] is armed,
    /// [`try_run`](Self::try_run) injects chunk-read failures on the
    /// plan's deterministic schedule and exercises the
    /// discard-and-retry checkpoint path.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The worker count one run uses: the pinned
    /// [`threads`](Self::threads) value, or the host's available
    /// parallelism.
    fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1)
    }

    /// Runs the fused pipeline over an in-memory (or memory-mapped) CLF
    /// buffer. Never fails: malformed lines are skipped and reported.
    /// Budgets and fault injection apply only to
    /// [`try_run`](Self::try_run) / [`run_file`](Self::run_file).
    pub fn run(&self, data: &[u8]) -> IngestReport {
        match self.run_inner(data, false, None) {
            Ok(report) => report,
            // analyze:allow(panic-free-hot-path) with faults disarmed and
            // no budget the engine has no error path.
            Err(_) => unreachable!("unfaulted, unbudgeted ingest cannot fail"),
        }
    }

    /// Per-chunk accounting, called once per successful chunk scan on
    /// whichever thread scanned it (counters and histograms are sharded
    /// atomics — safe and contention-free from workers).
    fn record_chunk(&self, c: &Chunk<'_>, chunk_errors: usize) {
        self.metrics.chunks.inc();
        self.metrics.chunk_bytes.record(c.data.len() as u64);
        self.metrics.chunk_errors.record(chunk_errors as u64);
    }

    /// Per-run accounting (coordinating thread, after assembly).
    fn record_run(&self, report: &IngestReport) {
        self.metrics.bytes.add(report.bytes as u64);
        self.metrics.lines.add(report.counts.records);
        self.metrics.malformed.add(report.counts.malformed);
        self.metrics
            .clients
            .add(report.clustering.client_count() as u64);
    }

    /// Runs the hardened pipeline: injected chunk-read faults (when a
    /// plan arms [`failpoints::INGEST_CHUNK_IO`]) are retried at chunk
    /// granularity, and the malformed-line budget (when set) is enforced
    /// — cooperatively across workers: a blown budget stops every shard.
    /// A successful faulted run is byte-identical to [`run`](Self::run).
    pub fn try_run(&self, data: &[u8]) -> Result<IngestReport, IngestError> {
        let faulted = self.faults.is_armed(failpoints::INGEST_CHUNK_IO);
        // Early cross-worker budget abort is enabled only on unfaulted
        // runs: under faults, ChunkIo is detected mid-scan and must win
        // deterministically, with the budget checked on the full counts
        // below — exactly the serial precedence.
        let budget = if faulted { None } else { self.max_error_rate };
        let report = self.run_inner(data, faulted, budget)?;
        if let Some(max_ratio) = self.max_error_rate {
            if report.counts.records > 0 && report.counts.ratio() > max_ratio {
                return Err(IngestError::ErrorBudget {
                    counts: report.counts,
                    max_ratio,
                    sample: report.errors.into_iter().take(5).collect(),
                });
            }
        }
        Ok(report)
    }

    /// The shared engine behind [`run`](Self::run) and
    /// [`try_run`](Self::try_run): chunk, scan (serial fast path or the
    /// sharded worker scan), merge, account.
    fn run_inner(
        &self,
        data: &[u8],
        faulted: bool,
        budget_ratio: Option<f64>,
    ) -> Result<IngestReport, IngestError> {
        let _run = self.obs.span("ingest.run");
        let chunks = {
            let _s = self.obs.span("chunk");
            chunk::split_lines(data, self.chunk_bytes)
        };
        let lines = total_lines(&chunks);
        let workers = self.effective_threads().min(chunks.len()).max(1);
        if !faulted && workers <= 1 {
            // Serial reference path: one unpartitioned accumulator, no
            // worker machinery. (Budget enforcement happens on the full
            // report in `try_run` — identical outcome, zero extra work.)
            let report = self.finish_serial(chunks, lines, data.len());
            self.record_run(&report);
            return Ok(report);
        }

        let n_parts = cluster::merge_partitions_for(workers);
        let scanned = {
            let _s = self.obs.span("parse");
            self.scan_sharded(
                &chunks,
                workers,
                n_parts,
                faulted,
                budget_ratio.map(|r| (r, lines)),
            )
        };
        match scanned {
            ScanOutcome::Done {
                outs,
                io_faults,
                chunks_retried,
            } => {
                let mut report = self.finish_shards(outs, n_parts, workers, lines, data.len());
                report.io_faults = io_faults;
                report.chunks_retried = chunks_retried;
                self.metrics.io_faults.add(io_faults);
                self.metrics.chunks_retried.add(chunks_retried);
                self.record_run(&report);
                Ok(report)
            }
            ScanOutcome::ChunkIo {
                chunk,
                io_faults,
                chunks_retried,
            } => {
                self.metrics.io_faults.add(io_faults);
                self.metrics.chunks_retried.add(chunks_retried);
                Err(IngestError::ChunkIo {
                    chunk,
                    // analyze:allow(panic-free-hot-path) workers only publish in-range chunk indices.
                    first_line: chunks[chunk].first_line,
                    attempts: self.io_retries + 1,
                })
            }
            ScanOutcome::Budget => {
                // Workers stopped early, so their partial outputs are not
                // the authoritative error list; one serial errors-only
                // rescan rebuilds exactly what the full run would report.
                let mut errors = Vec::new();
                for c in &chunks {
                    errors.extend(
                        clf_bytes::records_no_ua(c.data, c.first_line).filter_map(Result::err),
                    );
                }
                let counts = ErrorCounts::new(lines as u64, errors.len() as u64);
                Err(IngestError::ErrorBudget {
                    counts,
                    max_ratio: budget_ratio.unwrap_or(1.0),
                    sample: errors.into_iter().take(5).collect(),
                })
            }
        }
    }

    /// The sharded scan: `workers` scoped threads, each owning one
    /// [`ChunkOut`] shard, steal chunks off a shared atomic index (or
    /// walk a static stride in [`deterministic`](Self::deterministic)
    /// mode) until the chunk list drains.
    ///
    /// Hardening seams, across workers:
    ///
    /// * **chunk retry** — fault draws are keyed by `(chunk, attempt)`
    ///   ([`FaultInjector::should_fire_keyed`]), so a plan trips the same
    ///   chunks no matter which worker steals them. A chunk that exhausts
    ///   its retries publishes its index via `fetch_min`; because the
    ///   shared index hands chunks out in order and every stolen chunk
    ///   still gets its fault draws (scans are skipped once an abort is
    ///   pending — their output would be discarded), the published
    ///   minimum is exactly the chunk the serial scan would abort on.
    /// * **error budget** — shards add their malformed counts to a shared
    ///   counter after each chunk; the worker that pushes it past the
    ///   budget raises a stop flag and every shard winds down.
    fn scan_sharded<'a>(
        &self,
        chunks: &[Chunk<'a>],
        workers: usize,
        n_parts: usize,
        faulted: bool,
        budget: Option<(f64, usize)>,
    ) -> ScanOutcome<'a> {
        let shift = 32 - n_parts.trailing_zeros();
        let next = AtomicUsize::new(0);
        let abort_chunk = AtomicUsize::new(usize::MAX);
        let malformed = AtomicU64::new(0);
        let budget_stop = AtomicBool::new(false);

        let worker = |w: usize| -> (ChunkOut<'a>, u64, u64) {
            let _span = self.obs.span("ingest.worker");
            let shard_obs = self.obs.is_enabled().then(|| {
                (
                    self.obs.counter(&format!("ingest.shard{w}.chunks")),
                    self.obs.counter(&format!("ingest.shard{w}.bytes")),
                )
            });
            let mut injector = faulted.then(|| self.faults.injector_with_obs(&self.obs));
            let mut out = ChunkOut::new(n_parts);
            let mut io_faults = 0u64;
            let mut chunks_retried = 0u64;
            let mut cursor = w;
            loop {
                let i = if self.deterministic {
                    let i = cursor;
                    cursor += workers;
                    i
                } else {
                    // ordering: pure work-stealing ticket counter; only
                    // atomicity matters, no data is published through it.
                    next.fetch_add(1, Ordering::Relaxed)
                };
                if i >= chunks.len() {
                    break;
                }
                // analyze:allow(panic-free-hot-path) i < chunks.len() just checked.
                let c = &chunks[i];
                if let Some(inj) = injector.as_mut() {
                    let mut attempt = 0u32;
                    let exhausted = loop {
                        if !inj.should_fire_keyed(
                            failpoints::INGEST_CHUNK_IO,
                            &[i as u64, u64::from(attempt)],
                        ) {
                            break false;
                        }
                        io_faults += 1;
                        if attempt == 0 {
                            chunks_retried += 1;
                        }
                        if attempt >= self.io_retries {
                            break true;
                        }
                        attempt += 1;
                    };
                    if exhausted {
                        // ordering: monotone min over chunk indices; the
                        // join below is the synchronization point.
                        abort_chunk.fetch_min(i, Ordering::Relaxed);
                        continue;
                    }
                    // An abort is pending: keep draining chunks for their
                    // fault draws (the minimum must be exact) but skip
                    // scans — the output is about to be discarded.
                    // ordering: advisory fast-path skip; a stale read only
                    // delays the skip by one chunk, never changes the result.
                    if abort_chunk.load(Ordering::Relaxed) != usize::MAX {
                        continue;
                    }
                }
                // ordering: advisory early-exit flag; serial replay after
                // the join recomputes the authoritative outcome.
                if budget_stop.load(Ordering::Relaxed) {
                    break;
                }
                let before = out.errors.len();
                out.scan(c, shift, self.url_stats);
                let chunk_errors = out.errors.len() - before;
                self.record_chunk(c, chunk_errors);
                if let Some((chunks_ctr, bytes_ctr)) = &shard_obs {
                    chunks_ctr.inc();
                    bytes_ctr.add(c.data.len() as u64);
                }
                if let Some((max_ratio, lines)) = budget {
                    if chunk_errors > 0 {
                        // ordering: shared error tally; atomic add is all
                        // the trip check needs, no publication involved.
                        let total = malformed.fetch_add(chunk_errors as u64, Ordering::Relaxed)
                            + chunk_errors as u64;
                        // Monotone in `total`, so tripping early ⇔ the
                        // final ratio would trip: same outcome as the
                        // end-of-run check, minus the wasted scans.
                        if ErrorCounts::new(lines as u64, total).ratio() > max_ratio {
                            // analyze:allow(atomic-ordering-audit) Relaxed
                            // store is a stop hint other workers may see
                            // late; the thread join publishes the real
                            // outcome, so no happens-before edge is needed.
                            budget_stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }
            (out, io_faults, chunks_retried)
        };

        let results: Vec<(ChunkOut<'a>, u64, u64)> = if workers <= 1 {
            vec![worker(0)]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers).map(|w| s.spawn(move || worker(w))).collect();
                handles
                    .into_iter()
                    // analyze:allow(panic-free-hot-path) propagating a worker panic, not creating one.
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        };

        let mut outs = Vec::with_capacity(results.len());
        let mut io_faults = 0u64;
        let mut chunks_retried = 0u64;
        for (out, f, r) in results {
            outs.push(out);
            io_faults += f;
            chunks_retried += r;
        }
        // ordering: reads after every worker has been joined, which
        // already established the happens-before edges.
        let aborted = abort_chunk.load(Ordering::Relaxed);
        if aborted != usize::MAX {
            ScanOutcome::ChunkIo {
                chunk: aborted,
                io_faults,
                chunks_retried,
            }
        // ordering: post-join read, same as `aborted` above.
        } else if budget_stop.load(Ordering::Relaxed) {
            ScanOutcome::Budget
        } else {
            ScanOutcome::Done {
                outs,
                io_faults,
                chunks_retried,
            }
        }
    }

    /// The deterministic merge behind the sharded scan: shard-local ids
    /// are remapped into canonical global order, so the report is
    /// byte-identical to the serial reference no matter which worker
    /// scanned which chunk.
    ///
    /// * **errors** carry buffer-global line numbers (each malformed line
    ///   produces exactly one error), so one sort restores line order.
    /// * **clients** merge per address partition — sums commute — and the
    ///   per-partition sorted runs concatenate into global address order.
    /// * **url ids** translate through one global intern walked in shard
    ///   order; unique-URL *counts* are invariant under that relabeling
    ///   because equal ids ⇔ equal path bytes.
    fn finish_shards(
        &self,
        outs: Vec<ChunkOut<'_>>,
        n_parts: usize,
        threads: usize,
        lines: usize,
        bytes: usize,
    ) -> IngestReport {
        let mut errors = Vec::new();
        for o in &outs {
            errors.extend_from_slice(&o.errors);
        }
        errors.sort_unstable_by_key(|e| e.line);

        // Stage 3a: one worker per address partition merges its slice of
        // every shard; sorted runs concatenate into global address order
        // (partition p holds exactly the clients whose top bits equal p).
        let aggregate = self.obs.span("aggregate");
        let mut merged: Vec<Vec<ClientStats>> = Vec::new();
        merged.resize_with(n_parts, Vec::new);
        for_spans(&mut merged, threads, &|start, span| {
            for (off, slot) in span.iter_mut().enumerate() {
                let p = start + off;
                let mut per_client: FxHashMap<u32, (u64, u64)> = FxHashMap::default();
                for o in &outs {
                    // analyze:allow(panic-free-hot-path) p < n_parts == o.parts.len().
                    for (&client, &id) in &o.parts[p] {
                        // analyze:allow(panic-free-hot-path) id was handed out from accum.len().
                        let (requests, bytes) = o.accum[id as usize];
                        let e = per_client.entry(client).or_insert((0, 0));
                        e.0 += requests;
                        e.1 += bytes;
                    }
                }
                *slot = cluster::finish_aggregation(per_client);
            }
        });
        let clients: Vec<ClientStats> = merged.into_iter().flatten().collect();
        drop(aggregate);

        // Stage 3b: batch LPM with software prefetch, one span of the
        // assignment buffer per worker.
        let lpm = self.obs.span("lpm");
        let addrs: Vec<u32> = clients.iter().map(|c| u32::from(c.addr)).collect();
        let mut assignments: Vec<Option<Ipv4Net>> = vec![None; addrs.len()];
        for_spans(&mut assignments, threads, &|start, span| {
            self.table.net_for_slice(
                &addrs[start..start + span.len()],
                span,
                DEFAULT_PREFETCH_DISTANCE,
            );
        });
        drop(lpm);

        let _assemble = self.obs.span("aggregate");
        let total_requests: u64 = clients.iter().map(|c| c.requests).sum();
        let mut clustering =
            Clustering::from_assignments("network-aware", clients, assignments, total_requests);

        // Unique URLs per cluster: translate shard-local url ids through
        // one global intern (equal ids ⇔ equal byte strings — exactly the
        // `Log` URL-interning identity), map shard-local client ids to
        // clusters, and sort-dedup the packed (cluster, url) keys. The
        // key mapping writes into disjoint per-shard segments of one
        // buffer, so shards proceed concurrently; unclustered pairs leave
        // the `u64::MAX` sentinel in place for the sort-dedup to drop.
        if self.url_stats {
            let trans: Vec<Vec<u32>> = {
                let mut global: FxHashMap<&[u8], u32> = FxHashMap::default();
                outs.iter()
                    .map(|o| {
                        o.url_paths
                            .iter()
                            .map(|&p| {
                                // analyze:allow(cast-truncation) url ids are u32 by format.
                                let next = global.len() as u32;
                                *global.entry(p).or_insert(next)
                            })
                            .collect()
                    })
                    .collect()
            };
            let total_pairs: usize = outs.iter().map(|o| o.pairs.len()).sum();
            let mut mapped = vec![u64::MAX; total_pairs];
            let fill_segment = |o: &ChunkOut<'_>, tr: &[u32], seg: &mut [u64]| {
                let cluster_of: Vec<u32> = o
                    .dense_addr
                    .iter()
                    .map(|&a| {
                        clustering
                            .cluster_index(Ipv4Addr::from(a))
                            // analyze:allow(cast-truncation) cluster count < 2^32 (u32 ids by design).
                            .map_or(u32::MAX, |i| i as u32)
                    })
                    .collect();
                for (slot, &(dense, url)) in seg.iter_mut().zip(&o.pairs) {
                    // analyze:allow(panic-free-hot-path) dense ids index dense_addr == cluster_of.
                    let idx = cluster_of[dense as usize];
                    if idx != u32::MAX {
                        // analyze:allow(panic-free-hot-path) url < url_paths.len() == tr.len().
                        *slot = ((idx as u64) << 32) | tr[url as usize] as u64;
                    }
                }
            };
            if outs.len() <= 1 {
                if let (Some(o), Some(tr)) = (outs.first(), trans.first()) {
                    fill_segment(o, tr, &mut mapped);
                }
            } else {
                std::thread::scope(|s| {
                    let mut rest: &mut [u64] = &mut mapped;
                    for (o, tr) in outs.iter().zip(&trans) {
                        let (seg, tail) = rest.split_at_mut(o.pairs.len());
                        rest = tail;
                        s.spawn(|| fill_segment(o, tr, seg));
                    }
                });
            }
            count_unique_sorted(&mut clustering, mapped);
        }

        let counts = ErrorCounts::new(lines as u64, errors.len() as u64);
        IngestReport {
            clustering,
            errors,
            counts,
            bytes,
            io_faults: 0,
            chunks_retried: 0,
        }
    }

    /// Stages 1–3 with one unpartitioned accumulator across all chunks:
    /// dense client ids come straight out of the scan, so cluster mapping
    /// and URL dedup work on array indices (bitmap path) instead of maps.
    fn finish_serial(&self, chunks: Vec<Chunk<'_>>, lines: usize, bytes: usize) -> IngestReport {
        let mut out = ChunkOut::new(1);
        {
            let _s = self.obs.span("parse");
            for c in &chunks {
                let before = out.errors.len();
                out.scan(c, 32, self.url_stats);
                self.metrics.chunks.inc();
                self.metrics.chunk_bytes.record(c.data.len() as u64);
                self.metrics
                    .chunk_errors
                    .record((out.errors.len() - before) as u64);
            }
        }
        let errors = std::mem::take(&mut out.errors);
        let aggregate = self.obs.span("aggregate");
        let (clients, dense_addr) = serial_clients(
            std::mem::take(&mut out.accum),
            std::mem::take(&mut out.dense_addr),
        );
        drop(aggregate);

        let lpm = self.obs.span("lpm");
        let addrs: Vec<u32> = clients.iter().map(|c| u32::from(c.addr)).collect();
        let mut assignments = Vec::new();
        self.table.net_for_batch_into(&addrs, &mut assignments);
        drop(lpm);

        let _assemble = self.obs.span("aggregate");
        let total_requests: u64 = clients.iter().map(|c| c.requests).sum();
        let mut clustering =
            Clustering::from_assignments("network-aware", clients, assignments, total_requests);

        // The serial scan already produced globally-dense client and url
        // ids, so cluster mapping is one table build away from being an
        // array index per pair.
        if self.url_stats {
            let pairs = std::mem::take(&mut out.pairs);
            let n_urls = out.url_paths.len();
            let cluster_of: Vec<u32> = dense_addr
                .iter()
                .map(|&a| {
                    clustering
                        .cluster_index(Ipv4Addr::from(a))
                        // analyze:allow(cast-truncation) cluster count < 2^32 (u32 ids by design).
                        .map_or(u32::MAX, |i| i as u32)
                })
                .collect();
            let n_bits = clustering.clusters.len() as u64 * n_urls as u64;
            if n_bits > 0 && n_bits <= BITMAP_MAX_BITS {
                count_unique_bitmap(&mut clustering, &pairs, &cluster_of, n_urls);
            } else {
                let mapped: Vec<u64> = pairs
                    .iter()
                    .filter_map(|&(dense, url)| {
                        // analyze:allow(panic-free-hot-path) dense ids index dense_addr == cluster_of.
                        let idx = cluster_of[dense as usize];
                        (idx != u32::MAX).then_some(((idx as u64) << 32) | url as u64)
                    })
                    .collect();
                count_unique_sorted(&mut clustering, mapped);
            }
        }

        let counts = ErrorCounts::new(lines as u64, errors.len() as u64);
        IngestReport {
            clustering,
            errors,
            counts,
            bytes,
            io_faults: 0,
            chunks_retried: 0,
        }
    }

    /// Opens `path` (memory-mapping when the platform allows, see
    /// [`chunk::LogData::open`]) and runs the hardened pipeline over it —
    /// fault injection and error budgets included (see
    /// [`try_run`](Self::try_run)).
    pub fn run_file(&self, path: impl AsRef<Path>) -> Result<IngestReport, IngestError> {
        let data = LogData::open(path)?;
        self.try_run(&data)
    }
}

/// What the sharded scan produced: the per-worker shard outputs, or the
/// abort condition that stopped it (plus the fault tallies either way).
enum ScanOutcome<'a> {
    /// Every chunk scanned; shard outputs ready for the merge.
    Done {
        outs: Vec<ChunkOut<'a>>,
        io_faults: u64,
        chunks_retried: u64,
    },
    /// A chunk exhausted its read retries; `chunk` is the first such
    /// chunk in input order (the one the serial scan would abort on).
    ChunkIo {
        chunk: usize,
        io_faults: u64,
        chunks_retried: u64,
    },
    /// The malformed-line budget tripped mid-scan and workers stopped.
    Budget,
}

/// Runs `f(start_index, span)` over near-equal contiguous spans of `out`,
/// one scoped thread per span — the merge-side analogue of the scan's
/// work stealing (span sizes are static because merge work is uniform).
/// Inlines without spawning when one span suffices.
fn for_spans<T: Send, F: Fn(usize, &mut [T]) + Sync>(out: &mut [T], threads: usize, f: &F) {
    let workers = threads.min(out.len()).max(1);
    if workers <= 1 {
        f(0, out);
        return;
    }
    let base = out.len() / workers;
    let extra = out.len() % workers;
    std::thread::scope(|s| {
        let mut rest = out;
        let mut start = 0usize;
        for w in 0..workers {
            let take = base + usize::from(w < extra);
            let (span, tail) = rest.split_at_mut(take);
            rest = tail;
            s.spawn(move || f(start, span));
            start += take;
        }
    });
}

/// Buffer-global line count from the chunk list.
fn total_lines(chunks: &[Chunk<'_>]) -> usize {
    chunks
        .last()
        .map(|c| c.first_line + count_lines(c.data))
        .unwrap_or(0)
}

/// Bitmap dedup ceiling: above this many (cluster × url) bits the serial
/// unique-URL count falls back to sort-dedup (32 MiB of bitmap).
const BITMAP_MAX_BITS: u64 = 1 << 28;

/// Scan output: clients interned to dense ids through small address →
/// id maps (partitioned by address range; one partition when serial)
/// with (requests, bytes) accumulated in a dense-indexed vector — the
/// map entry stays 8 bytes so the randomly-probed table fits cache —
/// plus paths interned to dense local ids with their (client, url id)
/// pairs (keyed by the dense local client id), and parse errors with
/// global line numbers. The sharded scan holds one instance per worker;
/// the serial run feeds every chunk through a single unpartitioned
/// instance — dense ids are then already global.
struct ChunkOut<'a> {
    parts: Vec<FxHashMap<u32, u32>>,
    accum: Vec<(u64, u64)>,
    dense_addr: Vec<u32>,
    url_ids: FxHashMap<&'a [u8], u32>,
    url_paths: Vec<&'a [u8]>,
    pairs: Vec<(u32, u32)>,
    errors: Vec<ClfError>,
}

impl<'a> ChunkOut<'a> {
    fn new(n_parts: usize) -> Self {
        ChunkOut {
            parts: vec![FxHashMap::default(); n_parts],
            accum: Vec::new(),
            dense_addr: Vec::new(),
            url_ids: FxHashMap::default(),
            url_paths: Vec::new(),
            pairs: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Accumulates one chunk. The User-Agent field is never consumed
    /// downstream, so the scan uses the no-UA record parser (identical
    /// records and errors, minus the per-line UA quote scan).
    fn scan(&mut self, c: &Chunk<'a>, shift: u32, url_stats: bool) {
        for item in clf_bytes::records_no_ua(c.data, c.first_line) {
            match item {
                Ok((_, r)) => {
                    // u64 shift: an unpartitioned scan passes shift == 32.
                    let part = ((r.addr as u64) >> shift) as usize;
                    let accum = &mut self.accum;
                    let dense_addr = &mut self.dense_addr;
                    // analyze:allow(panic-free-hot-path) part = addr >> shift < n_parts.
                    let id = *self.parts[part].entry(r.addr).or_insert_with(|| {
                        // analyze:allow(cast-truncation) dense client ids are u32 by design.
                        let id = accum.len() as u32;
                        accum.push((0, 0));
                        dense_addr.push(r.addr);
                        id
                    });
                    // analyze:allow(panic-free-hot-path) id was handed out from accum.len().
                    let e = &mut self.accum[id as usize];
                    e.0 += 1;
                    e.1 += r.bytes as u64;
                    if url_stats {
                        let url_paths = &mut self.url_paths;
                        let url = *self.url_ids.entry(r.path).or_insert_with(|| {
                            url_paths.push(r.path);
                            // analyze:allow(cast-truncation) url ids are u32 by format.
                            (url_paths.len() - 1) as u32
                        });
                        self.pairs.push((id, url));
                    }
                }
                Err(e) => self.errors.push(e),
            }
        }
    }
}

/// Sorts the serial accumulator into address order, also returning the
/// scan's dense-id → address table.
fn serial_clients(accum: Vec<(u64, u64)>, dense_addr: Vec<u32>) -> (Vec<ClientStats>, Vec<u32>) {
    let mut clients: Vec<ClientStats> = dense_addr
        .iter()
        .zip(&accum)
        .map(|(&client, &(requests, bytes))| ClientStats {
            addr: Ipv4Addr::from(client),
            requests,
            bytes,
        })
        .collect();
    clients.sort_by_key(|c| c.addr);
    (clients, dense_addr)
}

/// Counts distinct (cluster, url) pairs into `unique_urls` by sorting
/// packed `cluster << 32 | url` keys. `u64::MAX` entries are the sharded
/// merge's unclustered-pair sentinel and are dropped (a real key cannot
/// be `u64::MAX`: cluster index `u32::MAX` is excluded before packing).
fn count_unique_sorted(clustering: &mut Clustering, mut mapped: Vec<u64>) {
    mapped.sort_unstable();
    mapped.dedup();
    if mapped.last() == Some(&u64::MAX) {
        mapped.pop();
    }
    for key in mapped {
        // analyze:allow(panic-free-hot-path) key's high half is a valid cluster index by construction.
        clustering.clusters[(key >> 32) as usize].unique_urls += 1;
    }
}

/// Bitmap window size for [`count_unique_bitmap`]: 2²¹ bits = 256 KiB,
/// small enough to stay cache-resident while a bucket's keys scatter
/// into it.
const BITMAP_WINDOW_BITS: u64 = 1 << 21;

/// Counts distinct (cluster, url) pairs into `unique_urls` via one bit
/// per (cluster, url) — `pairs` hold dense client ids, `cluster_of` maps
/// them to cluster indices (`u32::MAX` = unclustered).
fn count_unique_bitmap(
    clustering: &mut Clustering,
    pairs: &[(u32, u32)],
    cluster_of: &[u32],
    n_urls: usize,
) {
    count_unique_bitmap_windowed(clustering, pairs, cluster_of, n_urls, BITMAP_WINDOW_BITS)
}

/// [`count_unique_bitmap`] with an explicit window size (tests shrink it
/// to exercise the bucketed path on small inputs).
///
/// Setting bits straight into a `clusters × urls` bitmap costs one cache
/// miss per pair once the bitmap outgrows the cache. Instead, keys first
/// scatter into per-window buckets (sequential appends), then each
/// window's bits are set and popcount-walked inside one cache-resident
/// slice that is reused across windows.
fn count_unique_bitmap_windowed(
    clustering: &mut Clustering,
    pairs: &[(u32, u32)],
    cluster_of: &[u32],
    n_urls: usize,
    window_bits: u64,
) {
    let n_bits = clustering.clusters.len() as u64 * n_urls as u64;
    let to_key = |&(dense, url): &(u32, u32)| {
        // analyze:allow(panic-free-hot-path) dense ids index dense_addr == cluster_of.
        let idx = cluster_of[dense as usize];
        (idx != u32::MAX).then(|| idx as u64 * n_urls as u64 + url as u64)
    };
    if n_bits <= window_bits {
        let mut bits = vec![0u64; (n_bits as usize).div_ceil(64)];
        for key in pairs.iter().filter_map(to_key) {
            // analyze:allow(panic-free-hot-path) key < n_bits and bits holds n_bits bits.
            bits[(key >> 6) as usize] |= 1 << (key & 63);
        }
        tally_window(clustering, &bits, 0, n_urls);
        return;
    }
    let n_windows = n_bits.div_ceil(window_bits) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_windows];
    for key in pairs.iter().filter_map(to_key) {
        // analyze:allow(panic-free-hot-path, cast-truncation) key < n_bits so the
        // bucket index < n_windows, and key % window_bits < 2^21 fits u32.
        buckets[(key / window_bits) as usize].push((key % window_bits) as u32);
    }
    let mut window = vec![0u64; (window_bits as usize) / 64];
    for (w, keys) in buckets.iter().enumerate() {
        if keys.is_empty() {
            continue;
        }
        window.fill(0);
        for &k in keys {
            // analyze:allow(panic-free-hot-path) k < window_bits and window holds window_bits bits.
            window[(k >> 6) as usize] |= 1 << (k & 63);
        }
        tally_window(clustering, &window, w as u64 * window_bits, n_urls);
    }
}

/// Adds each set bit of `bits` (bit `i` = global key `base + i`) to its
/// cluster's `unique_urls`.
fn tally_window(clustering: &mut Clustering, bits: &[u64], base: u64, n_urls: usize) {
    for (w, &word) in bits.iter().enumerate() {
        let mut word = word;
        while word != 0 {
            let key = base + (w as u64) * 64 + word.trailing_zeros() as u64;
            // analyze:allow(panic-free-hot-path) key < clusters.len() * n_urls.
            clustering.clusters[(key / n_urls as u64) as usize].unique_urls += 1;
            word &= word - 1;
        }
    }
}

/// Line count with `str::lines` semantics: newlines, plus a final
/// unterminated line when present.
fn count_lines(data: &[u8]) -> usize {
    let newlines = chunk::count_newlines(data);
    if data.last().is_some_and(|&b| b != b'\n') {
        newlines + 1
    } else {
        newlines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_rtable::{MergedTable, RoutingTable, TableKind};
    use netclust_weblog::clf;

    fn table() -> CompiledMerged {
        let bgp = RoutingTable::new(
            "B",
            "d0",
            TableKind::Bgp,
            vec![
                "12.65.128.0/19".parse().unwrap(),
                "24.48.2.0/23".parse().unwrap(),
            ],
        );
        MergedTable::merge([&bgp]).compile()
    }

    const SAMPLE: &str = "\
12.65.147.94 - - [13/Feb/1998:07:00:00 +0000] \"GET /a HTTP/1.0\" 200 120 \"-\" \"UA one\"\n\
not a log line\n\
12.65.144.247 - - [13/Feb/1998:07:00:01 +0000] \"GET /b HTTP/1.0\" 200 80 \"-\" \"UA two\"\n\
24.48.3.87 - - [13/Feb/1998:07:00:02 +0000] \"GET /a HTTP/1.0\" 404 0\n\
12.65.147.94 - - [13/Feb/1998:07:00:03 +0000] \"GET /a HTTP/1.0\" 200 120\n\
99.1.1.1 - - [13/Feb/1998:07:00:04 +0000] \"GET /c HTTP/1.0\" 200 10\n";

    #[test]
    fn matches_string_parser_route() {
        let table = table();
        let (log, log_errors) = clf::from_clf("s", SAMPLE);
        let expect = Clustering::network_aware_compiled(&log, &table);

        for chunk_bytes in [1usize, 50, 1 << 20] {
            let report = IngestPipeline::new(&table)
                .chunk_bytes(chunk_bytes)
                .run(SAMPLE.as_bytes());
            let got = &report.clustering;
            assert_eq!(got.method, expect.method);
            assert_eq!(got.total_requests, expect.total_requests);
            assert_eq!(got.clusters.len(), expect.clusters.len());
            for (g, e) in got.clusters.iter().zip(&expect.clusters) {
                assert_eq!(g.prefix, e.prefix, "chunk_bytes={chunk_bytes}");
                assert_eq!(g.clients, e.clients);
                assert_eq!(g.requests, e.requests);
                assert_eq!(g.bytes, e.bytes);
                assert_eq!(g.unique_urls, e.unique_urls);
            }
            assert_eq!(got.unclustered, expect.unclustered);
            assert_eq!(report.errors, log_errors);
            assert_eq!(report.counts.records, 6);
            assert_eq!(report.bytes, SAMPLE.len());
        }
    }

    #[test]
    fn url_stats_off_skips_counting() {
        let table = table();
        let report = IngestPipeline::new(&table)
            .url_stats(false)
            .run(SAMPLE.as_bytes());
        assert!(report
            .clustering
            .clusters
            .iter()
            .all(|c| c.unique_urls == 0));
        // Everything else is unaffected.
        let with = IngestPipeline::new(&table).run(SAMPLE.as_bytes());
        assert_eq!(
            report.clustering.total_requests,
            with.clustering.total_requests
        );
        assert_eq!(report.clustering.len(), with.clustering.len());
    }

    #[test]
    fn bitmap_and_sorted_counts_agree() {
        let table = table();
        let base = IngestPipeline::new(&table).run(SAMPLE.as_bytes());
        // Rebuild a pair set by hand and count it every way. With 40
        // urls the key space (clusters × 40 bits) crosses a 64-bit
        // window boundary: cluster 1's keys 40..80 straddle it.
        let pairs: &[(u32, u32)] = &[(0, 0), (0, 1), (1, 39), (1, 39), (2, 0), (2, 39), (3, 1)];
        let cluster_of: &[u32] = &[0, 0, 1, u32::MAX];
        let n_urls = 40usize;
        let mut via_bitmap = base.clustering.clone();
        for c in &mut via_bitmap.clusters {
            c.unique_urls = 0;
        }
        let mut via_sort = via_bitmap.clone();
        count_unique_bitmap(&mut via_bitmap, pairs, cluster_of, n_urls);
        let mapped: Vec<u64> = pairs
            .iter()
            .filter_map(|&(dense, url)| {
                let idx = cluster_of[dense as usize];
                (idx != u32::MAX).then_some(((idx as u64) << 32) | url as u64)
            })
            .collect();
        count_unique_sorted(&mut via_sort, mapped);
        for (b, s) in via_bitmap.clusters.iter().zip(&via_sort.clusters) {
            assert_eq!(b.unique_urls, s.unique_urls);
        }
        // Clients 0+1 share cluster 0 with urls {0,1} ∪ {39} = 3 distinct;
        // client 2 gives cluster 1 urls {0,39}; client 3 is unclustered.
        assert_eq!(via_bitmap.clusters[0].unique_urls, 3);
        assert_eq!(via_bitmap.clusters[1].unique_urls, 2);
        // A window of 64 bits (smaller than clusters × urls) forces the
        // bucketed multi-window path; counts must not change. Window
        // boundaries land mid-cluster when n_urls doesn't divide 64,
        // which is exactly the seam worth covering.
        for window_bits in [64u64, 128] {
            let mut via_windows = via_sort.clone();
            for c in &mut via_windows.clusters {
                c.unique_urls = 0;
            }
            count_unique_bitmap_windowed(&mut via_windows, pairs, cluster_of, n_urls, window_bits);
            for (w, s) in via_windows.clusters.iter().zip(&via_sort.clusters) {
                assert_eq!(w.unique_urls, s.unique_urls, "window_bits={window_bits}");
            }
        }
    }

    #[test]
    fn empty_input() {
        let table = table();
        let report = IngestPipeline::new(&table).run(b"");
        assert!(report.clustering.is_empty());
        assert!(report.errors.is_empty());
        assert_eq!(report.counts.records, 0);
        assert_eq!(report.bytes, 0);
    }

    #[test]
    fn run_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("netclust-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        std::fs::write(&path, SAMPLE).unwrap();
        let table = table();
        let from_file = IngestPipeline::new(&table).run_file(&path).unwrap();
        let from_mem = IngestPipeline::new(&table).run(SAMPLE.as_bytes());
        assert_eq!(from_file.clustering.len(), from_mem.clustering.len());
        assert_eq!(from_file.errors, from_mem.errors);
        assert_eq!(from_file.counts, from_mem.counts);

        // Zero-length file: clean empty report, not a panic.
        let empty_path = dir.join("empty.log");
        std::fs::write(&empty_path, b"").unwrap();
        let empty = IngestPipeline::new(&table).run_file(&empty_path).unwrap();
        assert!(empty.clustering.is_empty());
        assert_eq!(empty.counts.records, 0);

        // A missing file is a typed I/O error.
        let err = IngestPipeline::new(&table)
            .run_file(dir.join("nope.log"))
            .unwrap_err();
        assert!(matches!(err, IngestError::Io(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_budget_aborts_with_context() {
        let table = table();
        // SAMPLE has 1 malformed line out of 6 (≈16.7%).
        let err = IngestPipeline::new(&table)
            .max_error_rate(0.10)
            .try_run(SAMPLE.as_bytes())
            .unwrap_err();
        match err {
            IngestError::ErrorBudget {
                counts,
                max_ratio,
                sample,
            } => {
                assert_eq!(counts, ErrorCounts::new(6, 1));
                assert_eq!(max_ratio, 0.10);
                assert_eq!(sample.len(), 1);
                assert_eq!(sample[0].line, 1);
            }
            other => panic!("expected ErrorBudget, got {other:?}"),
        }
        // A budget the noise fits under passes through untouched.
        let ok = IngestPipeline::new(&table)
            .max_error_rate(0.20)
            .try_run(SAMPLE.as_bytes())
            .unwrap();
        assert_eq!(ok.errors.len(), 1);
    }

    #[test]
    fn quarantine_resolves_rejected_byte_ranges() {
        let table = table();
        let report = IngestPipeline::new(&table).run(SAMPLE.as_bytes());
        let q = report.quarantine(SAMPLE.as_bytes());
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].line, 1);
        assert_eq!(&SAMPLE.as_bytes()[q[0].start..q[0].end], b"not a log line");

        // Final malformed line with no trailing newline, small chunks so
        // it crosses the last chunk boundary: the byte range must still
        // land exactly on the line.
        let tail_garbage = format!("{}trailing junk", SAMPLE);
        let report = IngestPipeline::new(&table)
            .chunk_bytes(32)
            .run(tail_garbage.as_bytes());
        assert_eq!(report.counts.records, 7);
        let q = report.quarantine(tail_garbage.as_bytes());
        assert_eq!(q.len(), 2);
        assert_eq!(q[1].line, 6);
        assert_eq!(
            &tail_garbage.as_bytes()[q[1].start..q[1].end],
            b"trailing junk"
        );
        assert_eq!(q[1].end, tail_garbage.len());
    }

    #[test]
    fn recovered_faulted_run_is_byte_identical() {
        let table = table();
        let clean = IngestPipeline::new(&table)
            .chunk_bytes(64)
            .run(SAMPLE.as_bytes());
        // A 50% chunk-read fault rate with generous retries: every chunk
        // eventually reads, and the merged result must be exactly the
        // clean run — chunk-granularity checkpoints never double-count.
        let plan = FaultPlan::new(0xFA17).with(failpoints::INGEST_CHUNK_IO, 0.5);
        let faulted = IngestPipeline::new(&table)
            .chunk_bytes(64)
            .fault_plan(plan.clone())
            .io_retries(64)
            .try_run(SAMPLE.as_bytes())
            .unwrap();
        assert!(faulted.io_faults > 0, "seed produced no faults");
        assert!(faulted.chunks_retried > 0);
        assert_eq!(faulted.counts, clean.counts);
        assert_eq!(faulted.errors, clean.errors);
        assert_eq!(
            faulted.clustering.total_requests,
            clean.clustering.total_requests
        );
        assert_eq!(
            faulted.clustering.clusters.len(),
            clean.clustering.clusters.len()
        );
        for (f, c) in faulted
            .clustering
            .clusters
            .iter()
            .zip(&clean.clustering.clusters)
        {
            assert_eq!(f.prefix, c.prefix);
            assert_eq!(f.clients, c.clients);
            assert_eq!(f.requests, c.requests);
            assert_eq!(f.bytes, c.bytes);
            assert_eq!(f.unique_urls, c.unique_urls);
        }
        assert_eq!(faulted.clustering.unclustered, clean.clustering.unclustered);

        // Determinism: the same seed replays the same fault schedule.
        let replay = IngestPipeline::new(&table)
            .chunk_bytes(64)
            .fault_plan(plan)
            .io_retries(64)
            .try_run(SAMPLE.as_bytes())
            .unwrap();
        assert_eq!(replay.io_faults, faulted.io_faults);
        assert_eq!(replay.chunks_retried, faulted.chunks_retried);
    }

    #[test]
    fn exhausted_retries_fail_cleanly() {
        let table = table();
        let plan = FaultPlan::new(1).with(failpoints::INGEST_CHUNK_IO, 1.0);
        let err = IngestPipeline::new(&table)
            .chunk_bytes(64)
            .fault_plan(plan)
            .io_retries(3)
            .try_run(SAMPLE.as_bytes())
            .unwrap_err();
        match err {
            IngestError::ChunkIo {
                chunk,
                first_line,
                attempts,
            } => {
                assert_eq!(chunk, 0);
                assert_eq!(first_line, 0);
                assert_eq!(attempts, 4);
            }
            other => panic!("expected ChunkIo, got {other:?}"),
        }
    }

    #[test]
    fn final_line_without_newline_counts_once() {
        let table = table();
        let unterminated = SAMPLE.trim_end_matches('\n');
        for chunk_bytes in [16usize, 64, 1 << 20] {
            let report = IngestPipeline::new(&table)
                .chunk_bytes(chunk_bytes)
                .run(unterminated.as_bytes());
            assert_eq!(report.counts.records, 6, "chunk_bytes={chunk_bytes}");
            assert_eq!(report.errors.len(), 1);
            assert_eq!(
                report.clustering.total_requests, 5,
                "chunk_bytes={chunk_bytes}"
            );
        }
    }
}
