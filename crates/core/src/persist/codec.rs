//! Framed binary wire codec for the durability layer (DESIGN.md §16).
//!
//! Both persistence files — full snapshots and the write-ahead journal —
//! share one self-describing layout: a 12-byte versioned file header
//! followed by length-prefixed, CRC-checksummed frames. CRC32 (IEEE) is
//! chosen over a cheap FNV fold because it *mathematically* detects every
//! single-bit error, which is exactly the torn-write/bit-rot class the
//! recovery scan must stop on; multi-bit corruption is caught with
//! probability `1 - 2^-32` per frame.
//!
//! This module is on the journal append hot path and is manifest-listed
//! panic-free: every read is bounds-checked through [`Reader`], every
//! decode returns a typed [`FrameError`], and arbitrary input — flipped,
//! truncated, or adversarial — can never panic or over-allocate (frame
//! lengths are validated against the bytes actually present before any
//! allocation).

use std::fmt;

/// File magic: "NCLP" (netclust persist).
pub const MAGIC: [u8; 4] = *b"NCLP";

/// Current format version; bumped on any incompatible layout change.
pub const FORMAT_VERSION: u16 = 1;

/// File kind tag: a full-snapshot file (one [`REC_STATE`] frame).
pub const FILE_SNAPSHOT: u8 = 1;

/// File kind tag: an append-only write-ahead journal of [`REC_BATCH`]
/// frames.
pub const FILE_JOURNAL: u8 = 2;

/// Record kind: a serialized `StreamState` snapshot.
pub const REC_STATE: u8 = 1;

/// Record kind: one journaled feed batch (feed index, flags, deltas).
pub const REC_BATCH: u8 = 2;

/// Bytes in the file header: magic, version `u16` LE, file kind, flags,
/// CRC32 of the first 8 bytes.
pub const HEADER_BYTES: usize = 12;

/// Frame overhead around the payload: length `u32` LE, record kind `u8`,
/// trailing CRC32 of kind-plus-payload.
pub const FRAME_OVERHEAD: usize = 9;

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // analyze:allow(cast-truncation) i < 256 fits u32 losslessly.
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // analyze:allow(panic-free-hot-path) i ranges over 0..256 == table.len().
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes` — detects all single-bit errors by
/// construction.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        // analyze:allow(cast-truncation) `b as u32` widens a u8; the usize cast takes a value masked to 8 bits.
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        // analyze:allow(panic-free-hot-path) idx is masked to 0..256 == CRC_TABLE.len().
        crc = CRC_TABLE[idx] ^ (crc >> 8);
    }
    !crc
}

/// Why a header or frame failed to decode. Offsets are file-absolute so
/// recovery reports point at the corrupt byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before a full file header.
    TruncatedHeader {
        /// Bytes present.
        have: usize,
    },
    /// The magic bytes are not `NCLP`.
    BadMagic,
    /// The format version is newer (or older) than this build reads.
    BadVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The file kind tag is not a known file type.
    BadFileKind {
        /// Tag found in the header.
        found: u8,
    },
    /// The header checksum does not match its first 8 bytes.
    HeaderChecksum,
    /// A frame extends past the end of the buffer: the torn-tail signature
    /// of a crash mid-append.
    TornFrame {
        /// File offset where the frame starts.
        offset: u64,
        /// Bytes the frame claims to need (including overhead).
        need: u64,
        /// Bytes actually remaining.
        have: u64,
    },
    /// A complete frame whose CRC does not match its contents: bit rot or
    /// an overwritten tail.
    BadChecksum {
        /// File offset where the frame starts.
        offset: u64,
    },
    /// A checksummed frame carrying an unknown record kind.
    BadRecordKind {
        /// File offset where the frame starts.
        offset: u64,
        /// The unrecognized kind tag.
        found: u8,
    },
    /// A checksummed frame whose payload failed structural decode.
    Malformed {
        /// File offset where the frame starts.
        offset: u64,
        /// Which field or structure was malformed.
        what: &'static str,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TruncatedHeader { have } => {
                write!(f, "file header truncated: {have} of {HEADER_BYTES} bytes")
            }
            FrameError::BadMagic => write!(f, "bad magic (not a netclust persist file)"),
            FrameError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads {FORMAT_VERSION})"
                )
            }
            FrameError::BadFileKind { found } => write!(f, "unknown file kind tag {found:#04x}"),
            FrameError::HeaderChecksum => write!(f, "file header checksum mismatch"),
            FrameError::TornFrame { offset, need, have } => write!(
                f,
                "torn frame at offset {offset}: needs {need} bytes, {have} remain"
            ),
            FrameError::BadChecksum { offset } => {
                write!(f, "frame checksum mismatch at offset {offset}")
            }
            FrameError::BadRecordKind { offset, found } => {
                write!(f, "unknown record kind {found:#04x} at offset {offset}")
            }
            FrameError::Malformed { offset, what } => {
                write!(f, "malformed {what} in frame at offset {offset}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes the 12-byte file header for a file of `kind`.
pub fn encode_header(kind: u8) -> [u8; HEADER_BYTES] {
    let mut h = [0u8; HEADER_BYTES];
    let (magic, rest) = h.split_at_mut(4);
    magic.copy_from_slice(&MAGIC);
    let (ver, rest) = rest.split_at_mut(2);
    ver.copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    let (kf, _crc_dst) = rest.split_at_mut(2);
    if let Some(k) = kf.first_mut() {
        *k = kind;
    }
    let crc = crc32(h.get(..8).unwrap_or(&[]));
    if let Some(dst) = h.get_mut(8..12) {
        dst.copy_from_slice(&crc.to_le_bytes());
    }
    h
}

/// Validates a file header and returns its file-kind tag.
pub fn decode_header(bytes: &[u8]) -> Result<u8, FrameError> {
    let Some(h) = bytes.get(..HEADER_BYTES) else {
        return Err(FrameError::TruncatedHeader { have: bytes.len() });
    };
    let mut r = Reader::new(h);
    let magic = r.take(4).unwrap_or(&[]);
    if magic != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = r.u16_le().unwrap_or(u16::MAX);
    let kind = r.u8().unwrap_or(0);
    let _flags = r.u8();
    let stored = r.u32_le().unwrap_or(0);
    if crc32(h.get(..8).unwrap_or(&[])) != stored {
        return Err(FrameError::HeaderChecksum);
    }
    if version != FORMAT_VERSION {
        return Err(FrameError::BadVersion { found: version });
    }
    if kind != FILE_SNAPSHOT && kind != FILE_JOURNAL {
        return Err(FrameError::BadFileKind { found: kind });
    }
    Ok(kind)
}

/// Appends one frame — `[len u32][kind u8][payload][crc u32]` — to `out`.
/// `len` counts payload bytes only; the CRC covers the kind byte and the
/// payload, so neither can flip undetected.
pub fn encode_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    // analyze:allow(cast-truncation) payloads are single snapshot/batch records, far below u32::MAX; decode_frame re-validates the length against bytes present.
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let body_start = out.len();
    out.push(kind);
    out.extend_from_slice(payload);
    let crc = crc32(out.get(body_start..).unwrap_or(&[]));
    out.extend_from_slice(&crc.to_le_bytes());
}

/// One decoded frame plus how many file bytes it spanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Record kind tag ([`REC_STATE`] / [`REC_BATCH`]).
    pub kind: u8,
    /// The checksummed payload.
    pub payload: &'a [u8],
    /// Total bytes consumed from the buffer (payload plus overhead).
    pub span: usize,
}

/// Decodes the frame starting at `buf[offset..]`. `offset` is only used
/// for error reporting; the caller advances by [`Frame::span`] on success.
/// Returns `Ok(None)` exactly at a clean end of buffer.
pub fn decode_frame(buf: &[u8], offset: u64) -> Result<Option<Frame<'_>>, FrameError> {
    if buf.is_empty() {
        return Ok(None);
    }
    let torn = |need: u64| FrameError::TornFrame {
        offset,
        need,
        have: buf.len() as u64,
    };
    let Some(len_bytes) = buf.get(..4) else {
        return Err(torn(FRAME_OVERHEAD as u64));
    };
    let mut len = [0u8; 4];
    len.copy_from_slice(len_bytes);
    let len = u32::from_le_bytes(len) as usize;
    // Validate the claimed length against bytes actually present BEFORE
    // touching payload ranges: a bit-flipped length field must read as a
    // torn frame, never an allocation or a panic.
    let need = (len as u64).saturating_add(FRAME_OVERHEAD as u64);
    if need > buf.len() as u64 {
        return Err(torn(need));
    }
    let Some(body) = buf.get(4..5 + len) else {
        return Err(torn(need));
    };
    let Some(crc_bytes) = buf.get(5 + len..5 + len + 4) else {
        return Err(torn(need));
    };
    let mut stored = [0u8; 4];
    stored.copy_from_slice(crc_bytes);
    if crc32(body) != u32::from_le_bytes(stored) {
        return Err(FrameError::BadChecksum { offset });
    }
    let (&kind, payload) = body.split_first().ok_or(FrameError::Malformed {
        offset,
        what: "frame body",
    })?;
    if kind != REC_STATE && kind != REC_BATCH {
        return Err(FrameError::BadRecordKind {
            offset,
            found: kind,
        });
    }
    Ok(Some(Frame {
        kind,
        payload,
        span: len + FRAME_OVERHEAD,
    }))
}

/// Bounds-checked little-endian reader over a payload slice. Every
/// accessor returns `None` past the end instead of panicking, so decoders
/// built on it are total over arbitrary input.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf` starting at byte 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// `true` once every byte is consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|s| s.first().copied())
    }

    /// Next `u16`, little endian.
    pub fn u16_le(&mut self) -> Option<u16> {
        let s = self.take(2)?;
        let mut b = [0u8; 2];
        b.copy_from_slice(s);
        Some(u16::from_le_bytes(b))
    }

    /// Next `u32`, little endian.
    pub fn u32_le(&mut self) -> Option<u32> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Some(u32::from_le_bytes(b))
    }

    /// Next `u64`, little endian.
    pub fn u64_le(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Some(u64::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // IEEE CRC32 check values ("check" = crc of "123456789").
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_every_single_bit_flip() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let clean = crc32(data);
        let mut buf = data.to_vec();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert_ne!(crc32(&buf), clean, "flip at {byte}:{bit} undetected");
                buf[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn header_round_trip_and_rejections() {
        let h = encode_header(FILE_JOURNAL);
        assert_eq!(decode_header(&h), Ok(FILE_JOURNAL));
        assert_eq!(
            decode_header(&encode_header(FILE_SNAPSHOT)),
            Ok(FILE_SNAPSHOT)
        );
        // Truncated.
        assert_eq!(
            decode_header(&h[..7]),
            Err(FrameError::TruncatedHeader { have: 7 })
        );
        // Bad magic.
        let mut bad = h;
        bad[0] = b'X';
        assert_eq!(decode_header(&bad), Err(FrameError::BadMagic));
        // Every single-bit flip in the checksummed region is rejected.
        for byte in 0..8 {
            for bit in 0..8 {
                let mut bad = h;
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_header(&bad).is_err(),
                    "flip at {byte}:{bit} accepted"
                );
            }
        }
        // Future version.
        let mut future = [0u8; HEADER_BYTES];
        future[..4].copy_from_slice(&MAGIC);
        future[4..6].copy_from_slice(&99u16.to_le_bytes());
        future[6] = FILE_JOURNAL;
        let crc = crc32(&future[..8]);
        future[8..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_header(&future),
            Err(FrameError::BadVersion { found: 99 })
        );
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, REC_BATCH, b"hello");
        encode_frame(&mut buf, REC_STATE, b"");
        let f1 = decode_frame(&buf, 0).unwrap().unwrap();
        assert_eq!((f1.kind, f1.payload), (REC_BATCH, &b"hello"[..]));
        let f2 = decode_frame(&buf[f1.span..], f1.span as u64)
            .unwrap()
            .unwrap();
        assert_eq!((f2.kind, f2.payload.len()), (REC_STATE, 0));
        assert_eq!(f1.span + f2.span, buf.len());
        assert_eq!(decode_frame(&buf[buf.len()..], buf.len() as u64), Ok(None));
    }

    #[test]
    fn frame_rejects_torn_and_corrupt_input() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, REC_BATCH, b"payload-bytes");
        // Every truncation point is a typed error, never a panic.
        for cut in 1..buf.len() {
            match decode_frame(&buf[..cut], 0) {
                Err(FrameError::TornFrame { .. }) | Err(FrameError::BadChecksum { .. }) => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
        // Every single-bit flip is rejected.
        let mut bad = buf.clone();
        for byte in 0..bad.len() {
            for bit in 0..8 {
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad, 0).is_err(),
                    "flip at {byte}:{bit} accepted"
                );
                bad[byte] ^= 1 << bit;
            }
        }
        // A length field inflated to absurdity reads as torn, without
        // allocating.
        let mut huge = buf;
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&huge, 0),
            Err(FrameError::TornFrame { .. })
        ));
    }

    #[test]
    fn unknown_record_kind_is_rejected_after_checksum() {
        // Build a frame with kind 7 and a VALID checksum: the kind gate,
        // not the checksum, must reject it.
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        let body = [7u8, b'a', b'b', b'c'];
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        assert_eq!(
            decode_frame(&buf, 40),
            Err(FrameError::BadRecordKind {
                offset: 40,
                found: 7
            })
        );
    }
}
