//! Crash-safe persistence: checksummed snapshots plus a write-ahead delta
//! journal (DESIGN.md §16).
//!
//! A [`StateStore`] owns one state directory and rotates *generations*:
//! generation `g` is the pair `snapshot-{g:06}.snap` (one checksummed
//! [`StreamState`] frame) and `journal-{g:06}.wal` (an append-only log of
//! [`JournalBatch`] frames applied *since* that snapshot). The protocol:
//!
//! * **Snapshots are atomic**: written to a `.tmp` sibling, fsynced, then
//!   `rename(2)`d into place — a crash leaves either the old generation or
//!   the new one, never a half-written snapshot. A fresh journal with only
//!   its file header follows; a crash in the gap is benign (a snapshot
//!   with no journal recovers as "snapshot + zero batches", which is
//!   exactly the state the snapshot captured).
//! * **Journal appends are ordered before apply**: the caller appends a
//!   batch, then applies it in memory, so a crash at any point leaves the
//!   journal a (possibly torn) *superset* of the applied work and replay
//!   deterministically re-derives the in-memory state.
//! * **Recovery never panics**: it scans generations newest-first, skips
//!   snapshots that fail their checksum, replays the paired journal up to
//!   the first torn/corrupt frame, truncates the tail, and reports what it
//!   did in a typed [`RecoveryReport`]. Only a directory with no valid
//!   snapshot at all is [`PersistError::Unrecoverable`].
//!
//! Crash points are injectable through `core::faults`
//! ([`failpoints::PERSIST_JOURNAL_WRITE`] tears a frame in half,
//! [`failpoints::PERSIST_SNAPSHOT_RENAME`] strands the `.tmp`,
//! [`failpoints::PERSIST_FSYNC`] fails without syncing), so the recovery
//! path is exercised by the same multi-seed sweeps as the rest of the
//! pipeline.

pub mod codec;
mod state;

pub use state::{
    decode_batch, decode_state, encode_batch, encode_state, CorrectionState, FeedProgress,
    JournalBatch, StateDecodeError, StreamState,
};

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use netclust_obs::{Counter, Obs};

use crate::faults::{failpoints, FaultInjector};
use crate::stream::RestoreError;
use codec::{
    decode_frame, decode_header, encode_frame, encode_header, FrameError, FILE_JOURNAL,
    FILE_SNAPSHOT, HEADER_BYTES, REC_BATCH, REC_STATE,
};

/// Default journal-size threshold (bytes) past which
/// [`StateStore::wants_compaction`] suggests a snapshot-then-truncate
/// rotation.
pub const DEFAULT_COMPACT_THRESHOLD: u64 = 4 << 20;

/// Default number of generations retained after a checkpoint.
pub const DEFAULT_KEEP: u64 = 2;

/// When to fsync journal appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended batch (strongest durability, slowest).
    EveryBatch,
    /// fsync after every `n` appended batches.
    EveryN(u64),
    /// Never fsync explicitly; the OS writes back on its own schedule.
    /// Crash durability is then bounded by the kernel's dirty-page timer.
    Os,
}

/// A [`FsyncPolicy`] spelling that did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsyncParseError {
    /// The rejected spelling.
    pub found: String,
}

impl fmt::Display for FsyncParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fsync policy {:?}: expected every_batch, every_n:<N>, or os",
            self.found
        )
    }
}

impl std::error::Error for FsyncParseError {}

impl std::str::FromStr for FsyncPolicy {
    type Err = FsyncParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "every_batch" => Ok(FsyncPolicy::EveryBatch),
            "os" => Ok(FsyncPolicy::Os),
            _ => match s.strip_prefix("every_n:").and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(FsyncParseError {
                    found: s.to_string(),
                }),
            },
        }
    }
}

/// Why a persistence operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// A filesystem operation failed.
    Io {
        /// What the store was doing.
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// An armed failpoint fired (simulated crash); the on-disk state is
    /// whatever the real crash would have left.
    InjectedFault {
        /// The failpoint that fired.
        point: &'static str,
    },
    /// An earlier append failed, so the journal tail is torn; further
    /// appends would be lost past the tear. [`StateStore::checkpoint`]
    /// rotates to a fresh journal and clears this.
    Poisoned,
    /// [`StateStore::append_batch`] before the first
    /// [`checkpoint`](StateStore::checkpoint): no journal generation is
    /// open yet.
    MissingJournal,
    /// A persisted file failed checksum or structural validation.
    Corrupt {
        /// The file.
        path: PathBuf,
        /// What was wrong.
        cause: FrameError,
    },
    /// No generation in the directory has a valid snapshot; the state
    /// cannot be reconstructed (CLI exit code 4).
    Unrecoverable {
        /// The state directory scanned.
        dir: PathBuf,
        /// Snapshot files inspected.
        scanned: u64,
    },
    /// A recovered snapshot decoded cleanly but its integrity invariants
    /// do not hold (stored totals disagree with recomputed ones).
    StateMismatch(RestoreError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            PersistError::InjectedFault { point } => {
                write!(f, "injected fault at {point}")
            }
            PersistError::Poisoned => write!(
                f,
                "journal poisoned by an earlier append failure; checkpoint to rotate"
            ),
            PersistError::MissingJournal => {
                write!(f, "append before the first checkpoint: no journal is open")
            }
            PersistError::Corrupt { path, cause } => {
                write!(f, "{}: {cause}", path.display())
            }
            PersistError::Unrecoverable { dir, scanned } => write!(
                f,
                "no valid snapshot in {} ({scanned} scanned): state is unrecoverable",
                dir.display()
            ),
            PersistError::StateMismatch(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Corrupt { cause, .. } => Some(cause),
            PersistError::StateMismatch(cause) => Some(cause),
            _ => None,
        }
    }
}

impl From<RestoreError> for PersistError {
    fn from(e: RestoreError) -> Self {
        PersistError::StateMismatch(e)
    }
}

/// What recovery found and did.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The generation recovered from.
    pub generation: u64,
    /// Newer generations skipped because their snapshot was invalid.
    pub generations_skipped: u64,
    /// Size of the snapshot file loaded.
    pub snapshot_bytes: u64,
    /// Valid journal bytes retained (header included).
    pub journal_bytes: u64,
    /// Torn/corrupt tail bytes truncated off the journal.
    pub truncated_bytes: u64,
    /// Why the journal scan stopped before a clean end-of-file, when it
    /// did (`None` = the whole journal was valid).
    pub tail: Option<FrameError>,
    /// The journaled batches, in append order, to replay through
    /// `StreamingClustering::apply_deltas`.
    pub batches: Vec<JournalBatch>,
}

/// Resolved `persist.*` counters; inert without
/// [`StateStore::obs`]. Counters only — no spans — so a crashed-and-
/// recovered run and an uninterrupted one differ *only* under the
/// `persist.` namespace in an observability dump.
#[derive(Debug, Clone, Default)]
struct PersistObs {
    snapshot_writes: Counter,
    snapshot_bytes: Counter,
    journal_appends: Counter,
    journal_bytes: Counter,
    append_errors: Counter,
    fsyncs: Counter,
}

impl PersistObs {
    fn resolve(obs: &Obs) -> Self {
        PersistObs {
            snapshot_writes: obs.counter("persist.snapshot.writes"),
            snapshot_bytes: obs.counter("persist.snapshot.bytes"),
            journal_appends: obs.counter("persist.journal.appends"),
            journal_bytes: obs.counter("persist.journal.bytes"),
            append_errors: obs.counter("persist.journal.append_errors"),
            fsyncs: obs.counter("persist.fsyncs"),
        }
    }
}

/// A durable state directory: rotating checksummed snapshots plus the
/// write-ahead journal of the current generation. See the module docs for
/// the crash-safety protocol.
#[derive(Debug)]
pub struct StateStore {
    dir: PathBuf,
    /// Current generation (0 = no checkpoint yet).
    seq: u64,
    fsync: FsyncPolicy,
    keep: u64,
    compact_threshold: u64,
    /// Open append handle for `journal-{seq}.wal`.
    journal: Option<File>,
    journal_len: u64,
    appends_since_sync: u64,
    poisoned: bool,
    faults: FaultInjector,
    metrics: PersistObs,
}

fn io_err(op: &'static str, path: &Path, source: std::io::Error) -> PersistError {
    PersistError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

impl StateStore {
    /// Opens `dir` as a **fresh** store, deleting any persisted state from
    /// previous runs (`snapshot-*.snap`, `journal-*.wal`, orphan `*.tmp`).
    /// Use [`recover`](Self::recover) to resume instead.
    pub fn create(dir: impl AsRef<Path>, fsync: FsyncPolicy) -> Result<Self, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create state dir", &dir, e))?;
        for entry in fs::read_dir(&dir).map_err(|e| io_err("scan state dir", &dir, e))? {
            let entry = entry.map_err(|e| io_err("scan state dir", &dir, e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let stale = (name.starts_with("snapshot-") && name.ends_with(".snap"))
                || (name.starts_with("journal-") && name.ends_with(".wal"))
                || name.ends_with(".tmp");
            if stale {
                fs::remove_file(&path).map_err(|e| io_err("remove stale file", &path, e))?;
            }
        }
        Ok(StateStore {
            dir,
            seq: 0,
            fsync,
            keep: DEFAULT_KEEP,
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            journal: None,
            journal_len: 0,
            appends_since_sync: 0,
            poisoned: false,
            faults: FaultInjector::disabled(),
            metrics: PersistObs::default(),
        })
    }

    /// Sets the journal-size threshold for
    /// [`wants_compaction`](Self::wants_compaction).
    pub fn compact_threshold(mut self, bytes: u64) -> Self {
        self.compact_threshold = bytes.max(1);
        self
    }

    /// Sets how many generations [`checkpoint`](Self::checkpoint) retains.
    pub fn keep(mut self, generations: u64) -> Self {
        self.keep = generations.max(1);
        self
    }

    /// Resolves `persist.*` counters against `obs`.
    pub fn obs(mut self, obs: &Obs) -> Self {
        self.metrics = PersistObs::resolve(obs);
        self
    }

    /// Arms a fault injector on the store's `persist.*` failpoints.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Takes the armed injector back (draw counts included), leaving the
    /// store fault-free — how the kill-and-restart harness carries one
    /// flaky-disk model across simulated process lifetimes.
    pub fn take_faults(&mut self) -> FaultInjector {
        std::mem::replace(&mut self.faults, FaultInjector::disabled())
    }

    /// The state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current generation number (0 before the first checkpoint).
    pub fn generation(&self) -> u64 {
        self.seq
    }

    /// Bytes in the current journal, header included.
    pub fn journal_len(&self) -> u64 {
        self.journal_len
    }

    /// `true` after a failed append: the journal tail is torn and further
    /// appends would sit unreachable past the tear.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// `true` once the journal has outgrown the compaction threshold and
    /// the caller should [`checkpoint`](Self::checkpoint) to truncate it.
    pub fn wants_compaction(&self) -> bool {
        self.journal_len >= self.compact_threshold
    }

    /// Path of generation `seq`'s snapshot.
    pub fn snapshot_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snapshot-{seq:06}.snap"))
    }

    /// Path of generation `seq`'s journal.
    pub fn journal_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("journal-{seq:06}.wal"))
    }

    fn fsync_file(&mut self, file: &File, path: &Path) -> Result<(), PersistError> {
        if self.faults.should_fire(failpoints::PERSIST_FSYNC) {
            return Err(PersistError::InjectedFault {
                point: failpoints::PERSIST_FSYNC,
            });
        }
        file.sync_all().map_err(|e| io_err("fsync", path, e))?;
        self.metrics.fsyncs.inc();
        Ok(())
    }

    /// Writes a new snapshot generation atomically and rotates to a fresh
    /// journal: temp write → fsync → rename, then a new `journal-{g}.wal`
    /// holding only its header. Returns the new generation number. Old
    /// generations beyond the retention count are pruned. On error the
    /// store stays on the previous generation; a stranded
    /// `snapshot-{g}.snap` without a journal recovers as that snapshot
    /// plus zero batches, which is exactly the state it captured.
    pub fn checkpoint(&mut self, state: &StreamState) -> Result<u64, PersistError> {
        let next = self.seq + 1;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_header(FILE_SNAPSHOT));
        encode_frame(&mut bytes, REC_STATE, &encode_state(state));

        let tmp = self.dir.join(format!("snapshot-{next:06}.tmp"));
        let snap = self.snapshot_path(next);
        let mut file = File::create(&tmp).map_err(|e| io_err("create snapshot temp", &tmp, e))?;
        file.write_all(&bytes)
            .map_err(|e| io_err("write snapshot", &tmp, e))?;
        self.fsync_file(&file, &tmp)?;
        drop(file);
        // The injectable crash between the durable temp file and the
        // rename: recovery must land on the previous generation and the
        // orphan `.tmp` must be inert.
        if self.faults.should_fire(failpoints::PERSIST_SNAPSHOT_RENAME) {
            return Err(PersistError::InjectedFault {
                point: failpoints::PERSIST_SNAPSHOT_RENAME,
            });
        }
        fs::rename(&tmp, &snap).map_err(|e| io_err("rename snapshot", &snap, e))?;
        // Make the rename itself durable before the new journal exists.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }

        let jpath = self.journal_path(next);
        let mut journal = File::create(&jpath).map_err(|e| io_err("create journal", &jpath, e))?;
        journal
            .write_all(&encode_header(FILE_JOURNAL))
            .map_err(|e| io_err("write journal header", &jpath, e))?;
        self.fsync_file(&journal, &jpath)?;

        self.seq = next;
        self.journal = Some(journal);
        self.journal_len = HEADER_BYTES as u64;
        self.appends_since_sync = 0;
        self.poisoned = false;
        self.metrics.snapshot_writes.inc();
        self.metrics.snapshot_bytes.add(bytes.len() as u64);
        self.prune();
        Ok(next)
    }

    /// Removes generations older than the retention window. Best-effort:
    /// a prune failure never fails the checkpoint that triggered it.
    fn prune(&self) {
        let Some(oldest_kept) = self.seq.checked_sub(self.keep - 1) else {
            return;
        };
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let seq = name
                .strip_prefix("snapshot-")
                .and_then(|r| r.strip_suffix(".snap"))
                .or_else(|| {
                    name.strip_prefix("journal-")
                        .and_then(|r| r.strip_suffix(".wal"))
                })
                .and_then(|digits| digits.parse::<u64>().ok());
            if seq.is_some_and(|s| s < oldest_kept) {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// Appends one batch frame to the journal, fsyncing per the store's
    /// [`FsyncPolicy`]. Call *before* applying the batch in memory: the
    /// journal must be a superset of the applied work for replay to
    /// reconstruct it. A write failure tears the frame on disk and
    /// poisons the store (see [`is_poisoned`](Self::is_poisoned)).
    pub fn append_batch(&mut self, batch: &JournalBatch) -> Result<(), PersistError> {
        if self.poisoned {
            return Err(PersistError::Poisoned);
        }
        let Some(mut journal) = self.journal.take() else {
            return Err(PersistError::MissingJournal);
        };
        let result = self.append_inner(&mut journal, batch);
        self.journal = Some(journal);
        if matches!(
            result,
            Err(PersistError::InjectedFault {
                point: failpoints::PERSIST_JOURNAL_WRITE
            }) | Err(PersistError::Io { .. })
        ) {
            self.poisoned = true;
            self.metrics.append_errors.inc();
        }
        result
    }

    fn append_inner(
        &mut self,
        journal: &mut File,
        batch: &JournalBatch,
    ) -> Result<(), PersistError> {
        let jpath = self.journal_path(self.seq);
        let mut frame = Vec::new();
        encode_frame(&mut frame, REC_BATCH, &encode_batch(batch));
        // The injectable torn write: half the frame lands on disk — a
        // realistic mid-write crash — and recovery must stop exactly at
        // the snapshot-plus-prior-batches boundary.
        if self.faults.should_fire(failpoints::PERSIST_JOURNAL_WRITE) {
            let half = frame.len() / 2;
            let torn = frame.get(..half).unwrap_or(&frame);
            let _ = journal.write_all(torn);
            let _ = journal.flush();
            self.journal_len += half as u64;
            return Err(PersistError::InjectedFault {
                point: failpoints::PERSIST_JOURNAL_WRITE,
            });
        }
        journal
            .write_all(&frame)
            .map_err(|e| io_err("append journal frame", &jpath, e))?;
        self.journal_len += frame.len() as u64;
        self.metrics.journal_appends.inc();
        self.metrics.journal_bytes.add(frame.len() as u64);
        match self.fsync {
            FsyncPolicy::EveryBatch => self.fsync_file(journal, &jpath)?,
            FsyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n {
                    self.fsync_file(journal, &jpath)?;
                    self.appends_since_sync = 0;
                }
            }
            FsyncPolicy::Os => {}
        }
        Ok(())
    }

    /// Explicitly fsyncs the journal (end-of-run flush under
    /// [`FsyncPolicy::Os`] / [`FsyncPolicy::EveryN`]).
    pub fn sync(&mut self) -> Result<(), PersistError> {
        let Some(journal) = self.journal.take() else {
            return Ok(());
        };
        let jpath = self.journal_path(self.seq);
        let result = self.fsync_file(&journal, &jpath);
        self.journal = Some(journal);
        self.appends_since_sync = 0;
        result
    }

    /// Reopens `dir`, loading the newest valid snapshot and replaying its
    /// journal through the first torn or corrupt frame (the tail past it
    /// is truncated off). Returns the store positioned on that generation
    /// with the journal open for further appends, the decoded state, and a
    /// [`RecoveryReport`] of everything it found. Never panics on
    /// arbitrary file contents; a directory with no valid snapshot is
    /// [`PersistError::Unrecoverable`].
    pub fn recover(
        dir: impl AsRef<Path>,
        fsync: FsyncPolicy,
    ) -> Result<(Self, StreamState, RecoveryReport), PersistError> {
        let dir = dir.as_ref().to_path_buf();
        let mut seqs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir).map_err(|e| io_err("scan state dir", &dir, e))? {
            let entry = entry.map_err(|e| io_err("scan state dir", &dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = name
                .strip_prefix("snapshot-")
                .and_then(|r| r.strip_suffix(".snap"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();

        let mut scanned = 0u64;
        let mut chosen: Option<(u64, StreamState, u64)> = None;
        for &seq in seqs.iter().rev() {
            scanned += 1;
            let path = dir.join(format!("snapshot-{seq:06}.snap"));
            match read_snapshot(&path) {
                Ok((state, bytes)) => {
                    chosen = Some((seq, state, bytes));
                    break;
                }
                // An invalid snapshot (torn temp promoted by a buggy tool,
                // bit rot, version skew): skip to the older generation.
                Err(_) => continue,
            }
        }
        let Some((seq, state, snapshot_bytes)) = chosen else {
            return Err(PersistError::Unrecoverable { dir, scanned });
        };

        let jpath = dir.join(format!("journal-{seq:06}.wal"));
        let (batches, journal_bytes, truncated_bytes, tail) = recover_journal(&jpath)?;

        let journal = OpenOptions::new()
            .append(true)
            .open(&jpath)
            .map_err(|e| io_err("reopen journal", &jpath, e))?;
        let store = StateStore {
            dir,
            seq,
            fsync,
            keep: DEFAULT_KEEP,
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            journal: Some(journal),
            journal_len: journal_bytes,
            appends_since_sync: 0,
            poisoned: false,
            faults: FaultInjector::disabled(),
            metrics: PersistObs::default(),
        };
        let report = RecoveryReport {
            generation: seq,
            generations_skipped: scanned - 1,
            snapshot_bytes,
            journal_bytes,
            truncated_bytes,
            tail,
            batches,
        };
        Ok((store, state, report))
    }
}

/// Reads and fully validates one snapshot file: header, the single
/// checksummed `REC_STATE` frame, structural decode, and no trailing
/// bytes.
fn read_snapshot(path: &Path) -> Result<(StreamState, u64), PersistError> {
    let bytes = fs::read(path).map_err(|e| io_err("read snapshot", path, e))?;
    let corrupt = |cause: FrameError| PersistError::Corrupt {
        path: path.to_path_buf(),
        cause,
    };
    let kind = decode_header(&bytes).map_err(corrupt)?;
    if kind != FILE_SNAPSHOT {
        return Err(corrupt(FrameError::BadFileKind { found: kind }));
    }
    let body = bytes.get(HEADER_BYTES..).unwrap_or(&[]);
    let frame = decode_frame(body, HEADER_BYTES as u64)
        .map_err(corrupt)?
        .ok_or(corrupt(FrameError::TornFrame {
            offset: HEADER_BYTES as u64,
            need: 1,
            have: 0,
        }))?;
    if frame.kind != REC_STATE {
        return Err(corrupt(FrameError::BadRecordKind {
            offset: HEADER_BYTES as u64,
            found: frame.kind,
        }));
    }
    if frame.span != body.len() {
        return Err(corrupt(FrameError::Malformed {
            offset: (HEADER_BYTES + frame.span) as u64,
            what: "trailing bytes after snapshot frame",
        }));
    }
    let state = decode_state(frame.payload).map_err(|e| {
        corrupt(FrameError::Malformed {
            offset: HEADER_BYTES as u64,
            what: e.what,
        })
    })?;
    Ok((state, bytes.len() as u64))
}

/// Scans a journal file, decoding batches until the first torn or corrupt
/// frame, then truncates the file to the last valid boundary. A missing
/// journal (crash between snapshot rename and journal creation) recovers
/// as empty; a journal with an unreadable header is reset to just a
/// header.
fn recover_journal(
    path: &Path,
) -> Result<(Vec<JournalBatch>, u64, u64, Option<FrameError>), PersistError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let mut f = File::create(path).map_err(|e| io_err("create journal", path, e))?;
            f.write_all(&encode_header(FILE_JOURNAL))
                .map_err(|e| io_err("write journal header", path, e))?;
            return Ok((Vec::new(), HEADER_BYTES as u64, 0, None));
        }
        Err(e) => return Err(io_err("read journal", path, e)),
    };

    let mut batches = Vec::new();
    let mut tail: Option<FrameError> = None;
    let mut valid_end = match decode_header(&bytes) {
        Ok(FILE_JOURNAL) => HEADER_BYTES as u64,
        Ok(found) => {
            tail = Some(FrameError::BadFileKind { found });
            0
        }
        Err(cause) => {
            tail = Some(cause);
            0
        }
    };
    if tail.is_none() {
        let mut offset = HEADER_BYTES;
        loop {
            let rest = bytes.get(offset..).unwrap_or(&[]);
            match decode_frame(rest, offset as u64) {
                Ok(None) => break,
                Ok(Some(frame)) => match decode_batch(frame.payload) {
                    Ok(batch) => {
                        batches.push(batch);
                        offset += frame.span;
                        valid_end = offset as u64;
                    }
                    Err(e) => {
                        tail = Some(FrameError::Malformed {
                            offset: offset as u64,
                            what: e.what,
                        });
                        break;
                    }
                },
                Err(cause) => {
                    tail = Some(cause);
                    break;
                }
            }
        }
    }

    let truncated = bytes.len() as u64 - valid_end;
    if truncated > 0 || valid_end == 0 {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("truncate journal", path, e))?;
        file.set_len(valid_end)
            .map_err(|e| io_err("truncate journal", path, e))?;
        if valid_end == 0 {
            // The header itself was unreadable: rebuild an empty journal.
            let mut f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err("rewrite journal header", path, e))?;
            f.write_all(&encode_header(FILE_JOURNAL))
                .map_err(|e| io_err("rewrite journal header", path, e))?;
            return Ok((Vec::new(), HEADER_BYTES as u64, truncated, tail));
        }
    }
    Ok((batches, valid_end, truncated, tail))
}
