//! Serializable durable state: the full [`StreamState`] snapshot of a
//! [`StreamingClustering`](crate::StreamingClustering) and the per-batch
//! [`JournalBatch`] journal record, with their canonical wire codecs.
//!
//! The encodings are **canonical**: prefixes and per-client rows are
//! sorted, and the decoder *enforces* that ordering (plus prefix
//! canonicality and UTF-8 park keys), so `decode(encode(s)) == s` and
//! `encode(decode(b)) == b` for every accepted byte string. That is what
//! lets the crash-recovery harness compare snapshot files byte-for-byte
//! between a crashed-and-recovered process and an uninterrupted one.
//!
//! Checksums and framing live one layer down in [`super::codec`]; this
//! module assumes its input already passed a CRC, so a decode failure here
//! means a *structural* problem (a version skew or a bug), reported as a
//! typed [`StateDecodeError`], never a panic.

use std::fmt;
use std::net::Ipv4Addr;

use netclust_obs::ErrorCounts;
use netclust_prefix::Ipv4Net;
use netclust_rtable::{decode_deltas, encode_deltas, TableDelta, DELTA_WIRE_BYTES};

use super::codec::Reader;
use crate::stream::{PatchStats, SwapRejection, SwapStats};

/// Everything needed to reconstruct a `StreamingClustering` (and the CLI
/// feed loop around it) from disk: the serving table's live prefix set per
/// tier, the retained per-client totals, every cumulative counter the
/// stream reports, and the feed-loop progress.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamState {
    /// Patch-lineage version of the serving table generation.
    pub table_version: u64,
    /// Feed batches fully applied before this snapshot (0 for a base
    /// snapshot taken before the feed starts).
    pub feed_pos: u64,
    /// Live BGP-tier prefixes, sorted ascending.
    pub bgp_prefixes: Vec<Ipv4Net>,
    /// Live registry-dump-tier prefixes, sorted ascending.
    pub dump_prefixes: Vec<Ipv4Net>,
    /// Per-client `(address, requests, bytes)` totals, sorted by address.
    pub per_client: Vec<(u32, u64, u64)>,
    /// Total requests consumed.
    pub total_requests: u64,
    /// Requests from unclusterable clients.
    pub unclustered_requests: u64,
    /// Raw-CLF ingest accounting.
    pub clf_counts: ErrorCounts,
    /// Cumulative swap accounting.
    pub swap_stats: SwapStats,
    /// Cumulative patch-batch accounting.
    pub patch_stats: PatchStats,
    /// The most recent swap/patch rejection, if any.
    pub last_rejection: Option<SwapRejection>,
    /// Self-correction outcome, when a correction pass has run.
    pub correction: Option<CorrectionState>,
    /// Feed-loop accounting owned by the CLI driver.
    pub feed: FeedProgress,
}

/// Durable residue of a self-correction pass
/// ([`self_correct`](crate::self_correct)): the quorum verdict counts and
/// the clients *parked* under synthetic `?cluster:`/`?addr:` keys because
/// probing told us nothing — exactly the set a later pass must re-probe.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorrectionState {
    /// Clusters that passed the homogeneity quorum.
    pub homogeneous: u64,
    /// Clusters partitioned because their members disagreed.
    pub split: u64,
    /// Clusters kept intact because probing yielded no signal.
    pub no_signal: u64,
    /// Parked addresses with the synthetic group key each sits under,
    /// sorted by key then address (the correction pass's `BTreeMap` order).
    pub parked: Vec<(Ipv4Addr, String)>,
}

/// CLI feed-loop accounting persisted alongside the stream so a mid-feed
/// checkpoint resumes with seamless end-of-run reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedProgress {
    /// `f64::to_bits` of the coverage when the feed started (bit-exact so
    /// the resumed process prints the identical percentage).
    pub coverage_start_bits: u64,
    /// BGP session resets seen so far.
    pub resets: u64,
    /// Individual deltas consumed so far.
    pub deltas_total: u64,
    /// Client reassignments so far.
    pub reassigned: u64,
}

/// One journaled feed batch: which feed position it came from, whether it
/// was a session reset, and the deltas attempted (journaled whether or not
/// the stream's gates accepted them — replay re-runs the same gates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalBatch {
    /// 0-based index of the batch in the feed.
    pub feed_index: u64,
    /// Whether the feed marked this batch as a BGP session reset.
    pub session_reset: bool,
    /// The routing deltas in the batch.
    pub deltas: Vec<TableDelta>,
}

/// Why a checksummed payload failed structural decode: the named field was
/// missing, out of order, or out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateDecodeError {
    /// The field or structure that was malformed.
    pub what: &'static str,
}

impl fmt::Display for StateDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed persisted state: {}", self.what)
    }
}

impl std::error::Error for StateDecodeError {}

fn bad(what: &'static str) -> StateDecodeError {
    StateDecodeError { what }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_prefixes(out: &mut Vec<u8>, prefixes: &[Ipv4Net]) {
    // analyze:allow(cast-truncation) an IPv4 prefix set is bounded far below u32::MAX entries.
    put_u32(out, prefixes.len() as u32);
    for p in prefixes {
        put_u32(out, p.addr_u32());
        out.push(p.len());
    }
}

/// Decodes a sorted prefix list, enforcing canonical form: each prefix's
/// host bits must already be zero and the list strictly increasing.
fn take_prefixes(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<Ipv4Net>, StateDecodeError> {
    let n = r.u32_le().ok_or(bad(what))? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining() / 5));
    let mut prev: Option<Ipv4Net> = None;
    for _ in 0..n {
        let addr = r.u32_le().ok_or(bad(what))?;
        let len = r.u8().ok_or(bad(what))?;
        let net = Ipv4Net::new(addr, len).map_err(|_| bad(what))?;
        if net.addr_u32() != addr {
            return Err(bad(what));
        }
        if prev.is_some_and(|p| p >= net) {
            return Err(bad(what));
        }
        prev = Some(net);
        out.push(net);
    }
    Ok(out)
}

/// Wire tag for a [`SwapRejection`] (0 = none). `f64` fields travel as
/// `to_bits` so the round trip is bit-exact (NaN included).
fn put_rejection(out: &mut Vec<u8>, rejection: Option<SwapRejection>) {
    match rejection {
        None => out.push(0),
        Some(SwapRejection::TooFewEntries { entries, floor }) => {
            out.push(1);
            put_u64(out, entries as u64);
            put_u64(out, floor as u64);
        }
        Some(SwapRejection::NoiseOverBudget { ratio, budget }) => {
            out.push(2);
            put_u64(out, ratio.to_bits());
            put_u64(out, budget.to_bits());
        }
        Some(SwapRejection::CompileFault) => out.push(3),
        Some(SwapRejection::PatchFault) => out.push(4),
        Some(SwapRejection::CoverageCollapse {
            before,
            after,
            floor,
        }) => {
            out.push(5);
            put_u64(out, before.to_bits());
            put_u64(out, after.to_bits());
            put_u64(out, floor.to_bits());
        }
    }
}

fn take_rejection(r: &mut Reader<'_>) -> Result<Option<SwapRejection>, StateDecodeError> {
    let what = "last_rejection";
    match r.u8().ok_or(bad(what))? {
        0 => Ok(None),
        1 => Ok(Some(SwapRejection::TooFewEntries {
            entries: r.u64_le().ok_or(bad(what))? as usize,
            floor: r.u64_le().ok_or(bad(what))? as usize,
        })),
        2 => Ok(Some(SwapRejection::NoiseOverBudget {
            ratio: f64::from_bits(r.u64_le().ok_or(bad(what))?),
            budget: f64::from_bits(r.u64_le().ok_or(bad(what))?),
        })),
        3 => Ok(Some(SwapRejection::CompileFault)),
        4 => Ok(Some(SwapRejection::PatchFault)),
        5 => Ok(Some(SwapRejection::CoverageCollapse {
            before: f64::from_bits(r.u64_le().ok_or(bad(what))?),
            after: f64::from_bits(r.u64_le().ok_or(bad(what))?),
            floor: f64::from_bits(r.u64_le().ok_or(bad(what))?),
        })),
        _ => Err(bad(what)),
    }
}

/// Serializes a [`StreamState`] to its canonical byte form (the payload of
/// a snapshot file's single `REC_STATE` frame).
pub fn encode_state(state: &StreamState) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        64 + (state.bgp_prefixes.len() + state.dump_prefixes.len()) * 5
            + state.per_client.len() * 20,
    );
    put_u64(&mut out, state.table_version);
    put_u64(&mut out, state.feed_pos);
    put_prefixes(&mut out, &state.bgp_prefixes);
    put_prefixes(&mut out, &state.dump_prefixes);
    // analyze:allow(cast-truncation) one row per distinct IPv4 client: len < 2^32 by construction.
    put_u32(&mut out, state.per_client.len() as u32);
    for &(client, requests, bytes) in &state.per_client {
        put_u32(&mut out, client);
        put_u64(&mut out, requests);
        put_u64(&mut out, bytes);
    }
    put_u64(&mut out, state.total_requests);
    put_u64(&mut out, state.unclustered_requests);
    put_u64(&mut out, state.clf_counts.records);
    put_u64(&mut out, state.clf_counts.malformed);
    put_u64(&mut out, state.swap_stats.accepted);
    put_u64(&mut out, state.swap_stats.rejected);
    put_u64(&mut out, state.swap_stats.stale_age);
    put_u64(&mut out, state.patch_stats.batches);
    put_u64(&mut out, state.patch_stats.accepted);
    put_u64(&mut out, state.patch_stats.rejected);
    put_u64(&mut out, state.patch_stats.slot_writes);
    put_u64(&mut out, state.patch_stats.group_rebuilds);
    put_u64(&mut out, state.patch_stats.recompiles);
    put_rejection(&mut out, state.last_rejection);
    match &state.correction {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            put_u64(&mut out, c.homogeneous);
            put_u64(&mut out, c.split);
            put_u64(&mut out, c.no_signal);
            // analyze:allow(cast-truncation) at most one parked row per IPv4 client: len < 2^32.
            put_u32(&mut out, c.parked.len() as u32);
            for (addr, key) in &c.parked {
                put_u32(&mut out, u32::from(*addr));
                // analyze:allow(cast-truncation) park keys are short synthetic `?cluster:`/`?addr:` strings.
                put_u32(&mut out, key.len() as u32);
                out.extend_from_slice(key.as_bytes());
            }
        }
    }
    put_u64(&mut out, state.feed.coverage_start_bits);
    put_u64(&mut out, state.feed.resets);
    put_u64(&mut out, state.feed.deltas_total);
    put_u64(&mut out, state.feed.reassigned);
    out
}

/// Decodes a [`StreamState`], enforcing the canonical form [`encode_state`]
/// produces (sorted prefixes, strictly increasing client rows, UTF-8 park
/// keys, no trailing bytes). Never panics on arbitrary input.
pub fn decode_state(bytes: &[u8]) -> Result<StreamState, StateDecodeError> {
    let mut r = Reader::new(bytes);
    let table_version = r.u64_le().ok_or(bad("table_version"))?;
    let feed_pos = r.u64_le().ok_or(bad("feed_pos"))?;
    let bgp_prefixes = take_prefixes(&mut r, "bgp prefix list")?;
    let dump_prefixes = take_prefixes(&mut r, "dump prefix list")?;
    let n_clients = r.u32_le().ok_or(bad("client count"))? as usize;
    let mut per_client = Vec::with_capacity(n_clients.min(r.remaining() / 20));
    let mut prev: Option<u32> = None;
    for _ in 0..n_clients {
        let client = r.u32_le().ok_or(bad("client row"))?;
        let requests = r.u64_le().ok_or(bad("client row"))?;
        let bytes_served = r.u64_le().ok_or(bad("client row"))?;
        if prev.is_some_and(|p| p >= client) {
            return Err(bad("client row order"));
        }
        prev = Some(client);
        per_client.push((client, requests, bytes_served));
    }
    let total_requests = r.u64_le().ok_or(bad("total_requests"))?;
    let unclustered_requests = r.u64_le().ok_or(bad("unclustered_requests"))?;
    let clf_counts = ErrorCounts::new(
        r.u64_le().ok_or(bad("clf_counts"))?,
        r.u64_le().ok_or(bad("clf_counts"))?,
    );
    let swap_stats = SwapStats {
        accepted: r.u64_le().ok_or(bad("swap_stats"))?,
        rejected: r.u64_le().ok_or(bad("swap_stats"))?,
        stale_age: r.u64_le().ok_or(bad("swap_stats"))?,
    };
    let patch_stats = PatchStats {
        batches: r.u64_le().ok_or(bad("patch_stats"))?,
        accepted: r.u64_le().ok_or(bad("patch_stats"))?,
        rejected: r.u64_le().ok_or(bad("patch_stats"))?,
        slot_writes: r.u64_le().ok_or(bad("patch_stats"))?,
        group_rebuilds: r.u64_le().ok_or(bad("patch_stats"))?,
        recompiles: r.u64_le().ok_or(bad("patch_stats"))?,
    };
    let last_rejection = take_rejection(&mut r)?;
    let correction = match r.u8().ok_or(bad("correction tag"))? {
        0 => None,
        1 => {
            let homogeneous = r.u64_le().ok_or(bad("correction"))?;
            let split = r.u64_le().ok_or(bad("correction"))?;
            let no_signal = r.u64_le().ok_or(bad("correction"))?;
            let n_parked = r.u32_le().ok_or(bad("correction"))? as usize;
            let mut parked = Vec::with_capacity(n_parked.min(r.remaining() / 8));
            for _ in 0..n_parked {
                let addr = Ipv4Addr::from(r.u32_le().ok_or(bad("parked address"))?);
                let key_len = r.u32_le().ok_or(bad("parked key"))? as usize;
                let raw = r.take(key_len).ok_or(bad("parked key"))?;
                let key = std::str::from_utf8(raw)
                    .map_err(|_| bad("parked key utf-8"))?
                    .to_owned();
                parked.push((addr, key));
            }
            Some(CorrectionState {
                homogeneous,
                split,
                no_signal,
                parked,
            })
        }
        _ => return Err(bad("correction tag")),
    };
    let feed = FeedProgress {
        coverage_start_bits: r.u64_le().ok_or(bad("feed progress"))?,
        resets: r.u64_le().ok_or(bad("feed progress"))?,
        deltas_total: r.u64_le().ok_or(bad("feed progress"))?,
        reassigned: r.u64_le().ok_or(bad("feed progress"))?,
    };
    if !r.is_empty() {
        return Err(bad("trailing bytes"));
    }
    Ok(StreamState {
        table_version,
        feed_pos,
        bgp_prefixes,
        dump_prefixes,
        per_client,
        total_requests,
        unclustered_requests,
        clf_counts,
        swap_stats,
        patch_stats,
        last_rejection,
        correction,
        feed,
    })
}

/// Serializes a [`JournalBatch`] (the payload of one journal `REC_BATCH`
/// frame): feed index, a flags byte (bit 0 = session reset), then the
/// delta records in `netclust-rtable`'s 6-byte wire form.
pub fn encode_batch(batch: &JournalBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + batch.deltas.len() * DELTA_WIRE_BYTES);
    put_u64(&mut out, batch.feed_index);
    out.push(u8::from(batch.session_reset));
    // analyze:allow(cast-truncation) a feed batch holds at most a session-reset burst of deltas, far below u32::MAX.
    put_u32(&mut out, batch.deltas.len() as u32);
    out.extend_from_slice(&encode_deltas(&batch.deltas));
    out
}

/// Decodes a [`JournalBatch`], validating the flags byte, the delta count
/// against the remaining bytes, and every delta record. Never panics.
pub fn decode_batch(bytes: &[u8]) -> Result<JournalBatch, StateDecodeError> {
    let mut r = Reader::new(bytes);
    let feed_index = r.u64_le().ok_or(bad("batch feed index"))?;
    let flags = r.u8().ok_or(bad("batch flags"))?;
    if flags > 1 {
        return Err(bad("batch flags"));
    }
    let n = r.u32_le().ok_or(bad("batch delta count"))? as usize;
    let raw = r
        .take(
            n.checked_mul(DELTA_WIRE_BYTES)
                .ok_or(bad("batch delta count"))?,
        )
        .ok_or(bad("batch delta count"))?;
    let deltas = decode_deltas(raw).map_err(|_| bad("batch delta record"))?;
    if !r.is_empty() {
        return Err(bad("trailing bytes"));
    }
    Ok(JournalBatch {
        feed_index,
        session_reset: flags == 1,
        deltas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }

    fn sample_state() -> StreamState {
        StreamState {
            table_version: 42,
            feed_pos: 17,
            bgp_prefixes: vec![net("10.0.0.0/8"), net("10.1.0.0/16"), net("192.168.0.0/24")],
            dump_prefixes: vec![net("172.16.0.0/12")],
            per_client: vec![(1, 3, 300), (0x0A00_0001, 5, 9999), (0xFFFF_FFFF, 1, 1)],
            total_requests: 9,
            unclustered_requests: 3,
            clf_counts: ErrorCounts::new(11, 2),
            swap_stats: SwapStats {
                accepted: 1,
                rejected: 2,
                stale_age: 2,
            },
            patch_stats: PatchStats {
                batches: 7,
                accepted: 6,
                rejected: 1,
                slot_writes: 1234,
                group_rebuilds: 3,
                recompiles: 1,
            },
            last_rejection: Some(SwapRejection::CoverageCollapse {
                before: 0.95,
                after: 0.2,
                floor: 0.76,
            }),
            correction: Some(CorrectionState {
                homogeneous: 40,
                split: 2,
                no_signal: 1,
                parked: vec![
                    (Ipv4Addr::new(10, 0, 0, 9), "?addr:10.0.0.9".into()),
                    (Ipv4Addr::new(10, 2, 3, 4), "?cluster:10.2.0.0/16".into()),
                ],
            }),
            feed: FeedProgress {
                coverage_start_bits: 0.875f64.to_bits(),
                resets: 2,
                deltas_total: 500,
                reassigned: 77,
            },
        }
    }

    #[test]
    fn state_round_trip_is_canonical() {
        let state = sample_state();
        let bytes = encode_state(&state);
        let back = decode_state(&bytes).unwrap();
        assert_eq!(back, state);
        // Canonical: re-encoding the decoded state is byte-identical.
        assert_eq!(encode_state(&back), bytes);

        // Every rejection variant survives, including the None tag.
        for rejection in [
            None,
            Some(SwapRejection::TooFewEntries {
                entries: 3,
                floor: 10,
            }),
            Some(SwapRejection::NoiseOverBudget {
                ratio: 0.5,
                budget: 0.05,
            }),
            Some(SwapRejection::CompileFault),
            Some(SwapRejection::PatchFault),
        ] {
            let mut s = sample_state();
            s.last_rejection = rejection;
            s.correction = None;
            assert_eq!(decode_state(&encode_state(&s)).unwrap(), s);
        }
    }

    #[test]
    fn state_decode_rejects_structural_corruption() {
        let state = sample_state();
        let bytes = encode_state(&state);
        // Every truncation point fails with a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                decode_state(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(decode_state(&long), Err(bad("trailing bytes")));

        // Out-of-order client rows are rejected (canonical form).
        let mut s = state.clone();
        s.per_client.swap(0, 1);
        assert_eq!(
            decode_state(&encode_state(&s)),
            Err(bad("client row order"))
        );

        // Out-of-order and non-canonical prefixes are rejected.
        let mut s = state.clone();
        s.bgp_prefixes.swap(0, 2);
        assert_eq!(decode_state(&encode_state(&s)), Err(bad("bgp prefix list")));
    }

    #[test]
    fn batch_round_trip_and_rejections() {
        let batch = JournalBatch {
            feed_index: 9000,
            session_reset: true,
            deltas: vec![
                TableDelta::announce(net("10.0.0.0/8")),
                TableDelta::withdraw(net("192.168.1.0/24")),
                TableDelta::replace(net("0.0.0.0/0")),
            ],
        };
        let bytes = encode_batch(&batch);
        assert_eq!(decode_batch(&bytes).unwrap(), batch);
        let empty = JournalBatch {
            feed_index: 0,
            session_reset: false,
            deltas: Vec::new(),
        };
        assert_eq!(decode_batch(&encode_batch(&empty)).unwrap(), empty);

        for cut in 0..bytes.len() {
            assert!(
                decode_batch(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
        let mut bad_flags = bytes.clone();
        bad_flags[8] = 7;
        assert_eq!(decode_batch(&bad_flags), Err(bad("batch flags")));
        let mut long = bytes;
        long.push(0);
        assert_eq!(decode_batch(&long), Err(bad("trailing bytes")));
    }
}
