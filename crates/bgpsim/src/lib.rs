//! AS-level BGP route propagation simulator.
//!
//! `netclust-netgen`'s vantage snapshots model route visibility
//! *statistically* (each site sees each route with a calibrated
//! probability). This crate models it *structurally*: a three-tier
//! provider/customer/peer [`Topology`] over the universe's autonomous
//! systems, valley-free Gao-Rexford propagation per prefix
//! ([`PropagationModel::propagate`]), day-scale link failures, and
//! materialized per-vantage routing tables
//! ([`PropagationModel::vantage_tables`]).
//!
//! The two models are interchangeable inputs to the clustering pipeline;
//! the `ablation_bgp_propagation` experiment compares them. Structural
//! propagation reproduces effects sampling cannot: single-homed stubs
//! going dark when their transit link fails, multihomed ASes rerouting,
//! and visibility correlated across prefixes of the same origin.
//!
//! [`DeltaStream`] adds the *time* axis: a deterministic, seeded stream of
//! timestamped announce/withdraw/replace batches (with flap bias and
//! session-reset bursts) that drives the incremental patch layer in
//! `netclust-rtable` (`CompiledTable::apply_delta`).

#![warn(missing_docs)]

mod delta;
mod propagate;
mod topology;

pub use delta::{DeltaBatch, DeltaStream, DeltaStreamConfig};
pub use propagate::{PropagationModel, RouteClass, RouteEntry};
pub use topology::{Relation, Topology};
