//! AS-level BGP route propagation simulator.
//!
//! `netclust-netgen`'s vantage snapshots model route visibility
//! *statistically* (each site sees each route with a calibrated
//! probability). This crate models it *structurally*: a three-tier
//! provider/customer/peer [`Topology`] over the universe's autonomous
//! systems, valley-free Gao-Rexford propagation per prefix
//! ([`PropagationModel::propagate`]), day-scale link failures, and
//! materialized per-vantage routing tables
//! ([`PropagationModel::vantage_tables`]).
//!
//! The two models are interchangeable inputs to the clustering pipeline;
//! the `ablation_bgp_propagation` experiment compares them. Structural
//! propagation reproduces effects sampling cannot: single-homed stubs
//! going dark when their transit link fails, multihomed ASes rerouting,
//! and visibility correlated across prefixes of the same origin.

#![warn(missing_docs)]

mod propagate;
mod topology;

pub use propagate::{PropagationModel, RouteClass, RouteEntry};
pub use topology::{Relation, Topology};
