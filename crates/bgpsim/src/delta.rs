//! Deterministic seeded BGP update streams.
//!
//! Real routing feeds are dominated by small announce/withdraw batches
//! touching a handful of prefixes, punctuated by *session resets* that
//! re-advertise large table chunks at once (see PAPERS.md on routing-table
//! dynamics). [`DeltaStream`] models exactly that shape as an infinite,
//! seed-deterministic iterator of timestamped [`DeltaBatch`]es, so the
//! incremental patch layer (`rtable::apply_delta`) and the epoch-swap
//! seam in `core::stream` are drivable in tests, benches and the CLI's
//! `--bgp-feed synth:…` replay mode without any live feed.
//!
//! The stream tracks its own live/withdrawn prefix pools so the emitted
//! churn is *coherent*: withdrawals always name live prefixes, most
//! announcements are flap re-announcements of recently withdrawn ones,
//! and a configurable trickle of genuinely new prefixes keeps the table
//! growing slowly — the paper's observed BGP-dynamics regime. Every draw
//! is a stateless `(seed, stream-label)` derivation, so two streams with
//! the same seed and config emit identical batches in any order of
//! construction.

use std::collections::BTreeSet;

use netclust_netgen::{uniform_u64, unit_f64};
use netclust_prefix::Ipv4Net;
use netclust_rtable::TableDelta;

/// One timestamped batch of routing updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaBatch {
    /// Stream tick the batch was emitted at (0-based).
    pub tick: u64,
    /// Virtual timestamp in seconds (`tick × tick_seconds`).
    pub timestamp: u64,
    /// The updates, in application order.
    pub deltas: Vec<TableDelta>,
    /// `true` when this batch is a session-reset burst (a peer session
    /// bounce re-advertising a table chunk).
    pub session_reset: bool,
}

impl DeltaBatch {
    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// `true` when the batch carries no updates (a quiet tick).
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }
}

/// Shape parameters for a [`DeltaStream`].
#[derive(Debug, Clone)]
pub struct DeltaStreamConfig {
    /// Mean updates per tick (batch sizes are drawn uniformly from
    /// `0..=2×mean`, so this is also the expected value).
    pub mean_batch_size: usize,
    /// Fraction of updates that withdraw a live prefix.
    pub withdraw_fraction: f64,
    /// Fraction of updates that re-announce a live prefix with changed
    /// attributes ([`netclust_rtable::DeltaKind::Replace`]).
    pub replace_fraction: f64,
    /// Probability that a flapped (previously withdrawn) prefix is chosen
    /// for an announcement before a brand-new prefix is synthesized.
    pub flap_bias: f64,
    /// Expected ticks between session resets (0 disables resets).
    pub reset_period: u64,
    /// Prefixes re-advertised per session-reset burst.
    pub reset_burst: usize,
    /// Seconds of virtual time per tick.
    pub tick_seconds: u64,
}

impl Default for DeltaStreamConfig {
    fn default() -> Self {
        DeltaStreamConfig {
            mean_batch_size: 8,
            withdraw_fraction: 0.35,
            replace_fraction: 0.15,
            flap_bias: 0.8,
            reset_period: 500,
            reset_burst: 200,
            tick_seconds: 30,
        }
    }
}

/// Stream labels (first element of every draw's stream slice) so the
/// per-purpose draws are independent.
const S_BATCH: u64 = 0x00DE_17A1;
const S_KIND: u64 = 0x00DE_17A2;
const S_PICK: u64 = 0x00DE_17A3;
const S_FLAP: u64 = 0x00DE_17A4;
const S_FRESH: u64 = 0x00DE_17A5;
const S_RESET: u64 = 0x00DE_17A6;

/// An infinite, deterministic stream of BGP update batches over an
/// evolving prefix set.
///
/// ```
/// use netclust_bgpsim::{DeltaStream, DeltaStreamConfig};
///
/// let mut a = DeltaStream::synthetic(42, 1_000, DeltaStreamConfig::default());
/// let mut b = DeltaStream::synthetic(42, 1_000, DeltaStreamConfig::default());
/// let batch = a.next().unwrap();
/// assert_eq!(batch, b.next().unwrap(), "same seed, same stream");
/// assert_eq!(batch.tick, 0);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaStream {
    seed: u64,
    cfg: DeltaStreamConfig,
    /// Prefixes currently announced (order evolves deterministically via
    /// swap-remove; never iterated for output beyond indexed draws).
    live: Vec<Ipv4Net>,
    /// Membership mirror of `live`, so fresh-prefix collisions and flap
    /// races cannot put duplicates into the live pool (which would
    /// desynchronize the stream from the table it drives).
    live_set: BTreeSet<Ipv4Net>,
    /// Recently withdrawn prefixes available for flap re-announcement.
    withdrawn: Vec<Ipv4Net>,
    /// Next tick to emit.
    tick: u64,
    /// Monotonic counter salting fresh-prefix synthesis.
    fresh: u64,
}

impl DeltaStream {
    /// A stream over an explicit starting prefix set (deduplicated; e.g.
    /// the compiled table's live set, so withdrawals always hit real
    /// entries).
    pub fn new(seed: u64, live: Vec<Ipv4Net>, cfg: DeltaStreamConfig) -> Self {
        let live_set: BTreeSet<Ipv4Net> = live.into_iter().collect();
        let live: Vec<Ipv4Net> = live_set.iter().copied().collect();
        DeltaStream {
            seed,
            cfg,
            live,
            live_set,
            withdrawn: Vec::new(),
            tick: 0,
            fresh: 0,
        }
    }

    /// A self-contained stream seeded with `n_live` synthetic prefixes in
    /// the BGP prefix-length mix (55% /24, 30% /16–/23, 10% /25–/28,
    /// 5% /8–/15 — Figure 1's distribution).
    pub fn synthetic(seed: u64, n_live: usize, cfg: DeltaStreamConfig) -> Self {
        let mut live = Vec::with_capacity(n_live);
        for i in 0..n_live as u64 {
            live.push(synth_prefix(seed, S_FRESH, i));
        }
        live.sort();
        live.dedup();
        DeltaStream::new(seed, live, cfg)
    }

    /// The current live prefix set size.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// The starting live set (sorted copy) — handy for compiling the
    /// table the stream will patch.
    pub fn live_prefixes(&self) -> Vec<Ipv4Net> {
        let mut v = self.live.clone();
        v.sort();
        v
    }

    /// Emits the next batch. Never returns `None` (the stream is
    /// infinite); exposed through [`Iterator`] for `take`/`zip` ergonomics.
    pub fn next_batch(&mut self) -> DeltaBatch {
        let t = self.tick;
        self.tick += 1;
        let reset = self.cfg.reset_period > 0
            && unit_f64(self.seed, &[S_RESET, t]) < 1.0 / self.cfg.reset_period as f64;
        let mut deltas = Vec::new();
        if reset {
            // A session bounce re-advertises a contiguous chunk of the
            // live table: replaces at the patch layer (no slot churn),
            // but a burst the swap seam must absorb at once.
            let n = self.cfg.reset_burst.min(self.live.len());
            if n > 0 {
                let start =
                    uniform_u64(self.seed, &[S_RESET, t, 1], self.live.len() as u64) as usize;
                for k in 0..n {
                    let p = self.live[(start + k) % self.live.len()];
                    deltas.push(TableDelta::replace(p));
                }
            }
        } else {
            let size = uniform_u64(
                self.seed,
                &[S_BATCH, t],
                2 * self.cfg.mean_batch_size as u64 + 1,
            ) as usize;
            for k in 0..size as u64 {
                if let Some(d) = self.draw_delta(t, k) {
                    deltas.push(d);
                }
            }
        }
        DeltaBatch {
            tick: t,
            timestamp: t * self.cfg.tick_seconds,
            deltas,
            session_reset: reset,
        }
    }

    /// One update draw: withdraw, replace, or (flap/fresh) announce.
    /// Returns `None` when the draw cannot be honoured coherently (e.g.
    /// a fresh prefix collides with a live one) — the batch just runs one
    /// update short.
    fn draw_delta(&mut self, t: u64, k: u64) -> Option<TableDelta> {
        let r = unit_f64(self.seed, &[S_KIND, t, k]);
        if r < self.cfg.withdraw_fraction && !self.live.is_empty() {
            let i = uniform_u64(self.seed, &[S_PICK, t, k], self.live.len() as u64) as usize;
            let p = self.live.swap_remove(i);
            self.live_set.remove(&p);
            self.withdrawn.push(p);
            Some(TableDelta::withdraw(p))
        } else if r < self.cfg.withdraw_fraction + self.cfg.replace_fraction
            && !self.live.is_empty()
        {
            let i = uniform_u64(self.seed, &[S_PICK, t, k], self.live.len() as u64) as usize;
            Some(TableDelta::replace(self.live[i]))
        } else {
            let flap = !self.withdrawn.is_empty()
                && unit_f64(self.seed, &[S_FLAP, t, k]) < self.cfg.flap_bias;
            let p = if flap {
                let i = uniform_u64(self.seed, &[S_FLAP, t, k, 1], self.withdrawn.len() as u64)
                    as usize;
                self.withdrawn.swap_remove(i)
            } else {
                self.fresh += 1;
                synth_prefix(self.seed, S_FRESH ^ 0xF2E5, self.fresh)
            };
            if !self.live_set.insert(p) {
                return None;
            }
            self.live.push(p);
            Some(TableDelta::announce(p))
        }
    }
}

impl Iterator for DeltaStream {
    type Item = DeltaBatch;

    fn next(&mut self) -> Option<DeltaBatch> {
        Some(self.next_batch())
    }
}

/// A synthetic prefix in the BGP length mix, deterministic per
/// `(seed, label, i)`.
fn synth_prefix(seed: u64, label: u64, i: u64) -> Ipv4Net {
    let r = unit_f64(seed, &[label, i, 0]);
    let len = if r < 0.55 {
        24
    } else if r < 0.85 {
        // analyze:allow(cast-truncation) draw bounded below 8 fits u8.
        16 + (uniform_u64(seed, &[label, i, 1], 8) as u8)
    } else if r < 0.95 {
        // analyze:allow(cast-truncation) draw bounded below 4 fits u8.
        25 + (uniform_u64(seed, &[label, i, 2], 4) as u8)
    } else {
        // analyze:allow(cast-truncation) draw bounded below 8 fits u8.
        8 + (uniform_u64(seed, &[label, i, 3], 8) as u8)
    };
    // analyze:allow(cast-truncation) masking a 64-bit draw to 32 address
    // bits is the intended projection.
    let addr = derive_addr(seed, label, i) & (u32::MAX << (32 - u32::from(len)));
    Ipv4Net::new(addr, len).unwrap_or(Ipv4Net::DEFAULT)
}

/// 32 address bits from the derivation chain.
fn derive_addr(seed: u64, label: u64, i: u64) -> u32 {
    // analyze:allow(cast-truncation) taking the low 32 bits of a mixed
    // 64-bit draw is the intended projection.
    (uniform_u64(seed, &[label, i, 4], 1 << 32)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_rtable::{CompiledTable, DeltaKind};
    use std::collections::BTreeSet;

    #[test]
    fn same_seed_same_stream() {
        let cfg = DeltaStreamConfig::default();
        let a: Vec<DeltaBatch> = DeltaStream::synthetic(7, 500, cfg.clone())
            .take(50)
            .collect();
        let b: Vec<DeltaBatch> = DeltaStream::synthetic(7, 500, cfg).take(50).collect();
        assert_eq!(a, b);
        assert!(a.iter().map(|x| x.len()).sum::<usize>() > 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = DeltaStreamConfig::default();
        let a: Vec<DeltaBatch> = DeltaStream::synthetic(7, 500, cfg.clone())
            .take(20)
            .collect();
        let b: Vec<DeltaBatch> = DeltaStream::synthetic(8, 500, cfg).take(20).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn timestamps_advance_by_tick_seconds() {
        let cfg = DeltaStreamConfig {
            tick_seconds: 30,
            ..DeltaStreamConfig::default()
        };
        let batches: Vec<DeltaBatch> = DeltaStream::synthetic(1, 100, cfg).take(10).collect();
        for (i, b) in batches.iter().enumerate() {
            assert_eq!(b.tick, i as u64);
            assert_eq!(b.timestamp, i as u64 * 30);
        }
    }

    #[test]
    fn churn_is_coherent_with_live_set() {
        // Withdrawals must always name a currently live prefix; replaces
        // must name live prefixes; flap announces must re-use withdrawn
        // ones.
        let mut stream = DeltaStream::synthetic(3, 2_000, DeltaStreamConfig::default());
        let mut live: BTreeSet<Ipv4Net> = stream.live_prefixes().into_iter().collect();
        for batch in (&mut stream).take(200) {
            for d in &batch.deltas {
                match d.kind {
                    DeltaKind::Withdraw => {
                        assert!(live.remove(&d.prefix), "withdraw of non-live {}", d.prefix);
                    }
                    DeltaKind::Replace => {
                        assert!(live.contains(&d.prefix), "replace of non-live {}", d.prefix);
                    }
                    DeltaKind::Announce => {
                        live.insert(d.prefix);
                    }
                }
            }
        }
        assert_eq!(live.len(), stream.live_len());
    }

    #[test]
    fn session_resets_emit_replace_bursts() {
        let cfg = DeltaStreamConfig {
            reset_period: 10, // frequent, so 300 ticks surely hit some
            reset_burst: 50,
            ..DeltaStreamConfig::default()
        };
        let batches: Vec<DeltaBatch> = DeltaStream::synthetic(11, 1_000, cfg).take(300).collect();
        let resets: Vec<&DeltaBatch> = batches.iter().filter(|b| b.session_reset).collect();
        assert!(
            !resets.is_empty(),
            "expected at least one reset in 300 ticks"
        );
        for b in &resets {
            assert_eq!(b.len(), 50);
            assert!(b.deltas.iter().all(|d| d.kind == DeltaKind::Replace));
        }
    }

    #[test]
    fn resets_can_be_disabled() {
        let cfg = DeltaStreamConfig {
            reset_period: 0,
            ..DeltaStreamConfig::default()
        };
        let batches: Vec<DeltaBatch> = DeltaStream::synthetic(5, 200, cfg).take(500).collect();
        assert!(batches.iter().all(|b| !b.session_reset));
    }

    #[test]
    fn stream_drives_table_patching_consistently() {
        // End-to-end: apply 100 batches to a compiled table and check the
        // table's live set tracks the stream's.
        let mut stream = DeltaStream::synthetic(9, 800, DeltaStreamConfig::default());
        let mut table = CompiledTable::from_prefixes(stream.live_prefixes());
        for batch in (&mut stream).take(100) {
            table.apply_delta(&batch.deltas);
        }
        let mut expect = stream.live_prefixes();
        expect.dedup();
        assert_eq!(table.live_prefixes(), expect);
    }

    #[test]
    fn synthetic_mix_favors_slash24() {
        let stream = DeltaStream::synthetic(2, 10_000, DeltaStreamConfig::default());
        let n24 = stream
            .live_prefixes()
            .iter()
            .filter(|p| p.len() == 24)
            .count();
        let total = stream.live_len();
        let frac = n24 as f64 / total as f64;
        assert!((0.45..0.65).contains(&frac), "/24 fraction {frac}");
    }
}
