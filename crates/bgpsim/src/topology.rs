//! AS-level topology: a three-tier provider/customer/peer hierarchy.
//!
//! The statistical vantage model in `netclust-netgen` samples which routes
//! a site sees; this module replaces sampling with *structure*: a
//! Gao-Rexford-style AS graph over the universe's autonomous systems, so
//! route visibility at a vantage point follows from actual (valley-free)
//! propagation. Tier-1 ASes form a clique; tier-2 ASes buy transit from
//! several tier-1s and peer among themselves; stubs buy transit from
//! tier-2s (occasionally multihoming).

use netclust_netgen::{stream_rng, Universe};
use rand::seq::SliceRandom;
use rand::Rng;

/// Business relationship of a directed edge `a → b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a` is a customer of `b` (`a` pays `b` for transit).
    CustomerOf,
    /// `a` and `b` are settlement-free peers.
    PeerOf,
    /// `a` is a provider of `b`.
    ProviderOf,
}

/// A structural violation found by [`Topology::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// A provider link without the matching customer back-link.
    AsymmetricProviderLink {
        /// The AS recording the provider.
        customer: u32,
        /// The provider missing the back-link.
        provider: u32,
    },
    /// A peer link recorded in one direction only.
    AsymmetricPeerLink {
        /// The AS recording the peer.
        a: u32,
        /// The peer missing the back-link.
        b: u32,
    },
    /// A non-tier-1 AS with no provider (partitioned upward).
    NoProvider {
        /// The orphaned AS.
        asn: u32,
        /// Its tier.
        tier: u8,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::AsymmetricProviderLink { customer, provider } => {
                write!(f, "asymmetric provider link {customer}->{provider}")
            }
            TopologyError::AsymmetricPeerLink { a, b } => {
                write!(f, "asymmetric peer link {a}<->{b}")
            }
            TopologyError::NoProvider { asn, tier } => {
                write!(f, "AS {asn} (tier {tier}) has no provider")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The AS graph: per-AS adjacency lists split by relationship.
#[derive(Debug, Clone)]
pub struct Topology {
    /// `providers[a]` — ASes `a` buys transit from.
    pub providers: Vec<Vec<u32>>,
    /// `peers[a]` — settlement-free peers of `a`.
    pub peers: Vec<Vec<u32>>,
    /// `customers[a]` — ASes buying transit from `a`.
    pub customers: Vec<Vec<u32>>,
    /// Tier of each AS (1 = clique, 2 = transit, 3 = stub).
    pub tier: Vec<u8>,
}

impl Topology {
    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.tier.len()
    }

    /// `true` when the graph has no ASes.
    pub fn is_empty(&self) -> bool {
        self.tier.is_empty()
    }

    /// Builds a deterministic three-tier topology over the universe's
    /// ASes. Roughly 3 % become tier-1 (min 3), 17 % tier-2, the rest
    /// stubs; every non-tier-1 AS gets 1–3 providers one tier up, and
    /// same-tier ASes peer sparsely.
    pub fn generate(universe: &Universe, seed: u64) -> Topology {
        let n = universe.ases().len();
        assert!(n >= 4, "topology needs at least 4 ASes");
        let mut rng = stream_rng(seed, &[0x709]);
        // analyze:allow(cast-truncation) AS ids are u32 by design.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut rng);

        let t1_count = (n / 33).clamp(3, 12);
        let t2_count = (n * 17 / 100).max(4);
        let mut tier = vec![3u8; n];
        for &a in &order[..t1_count] {
            tier[a as usize] = 1;
        }
        for &a in &order[t1_count..t1_count + t2_count.min(n - t1_count)] {
            tier[a as usize] = 2;
        }
        let tier1: Vec<u32> = order[..t1_count].to_vec();
        let tier2: Vec<u32> = order[t1_count..(t1_count + t2_count).min(n)].to_vec();

        let mut providers = vec![Vec::new(); n];
        let mut peers: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut customers = vec![Vec::new(); n];
        let link = |providers: &mut Vec<Vec<u32>>,
                    customers: &mut Vec<Vec<u32>>,
                    customer: u32,
                    provider: u32| {
            if customer != provider && !providers[customer as usize].contains(&provider) {
                providers[customer as usize].push(provider);
                customers[provider as usize].push(customer);
            }
        };

        // Tier-1 clique (peering).
        for (i, &a) in tier1.iter().enumerate() {
            for &b in &tier1[i + 1..] {
                peers[a as usize].push(b);
                peers[b as usize].push(a);
            }
        }
        // Tier-2: 1–3 tier-1 providers, sparse tier-2 peering.
        for &a in &tier2 {
            for _ in 0..rng.gen_range(1..=3usize) {
                let p = tier1[rng.gen_range(0..tier1.len())];
                link(&mut providers, &mut customers, a, p);
            }
        }
        for (i, &a) in tier2.iter().enumerate() {
            for &b in &tier2[i + 1..] {
                if rng.gen_bool(0.08) {
                    peers[a as usize].push(b);
                    peers[b as usize].push(a);
                }
            }
        }
        // Stubs: 1–2 tier-2 providers (occasionally a tier-1).
        // analyze:allow(cast-truncation) AS ids are u32 by design.
        for a in 0..n as u32 {
            if tier[a as usize] != 3 {
                continue;
            }
            let multi = rng.gen_bool(0.25);
            for _ in 0..if multi { 2 } else { 1 } {
                let p = if rng.gen_bool(0.1) {
                    tier1[rng.gen_range(0..tier1.len())]
                } else {
                    tier2[rng.gen_range(0..tier2.len())]
                };
                link(&mut providers, &mut customers, a, p);
            }
        }

        Topology {
            providers,
            peers,
            customers,
            tier,
        }
    }

    /// Verifies structural sanity: relationship symmetry and that every
    /// non-tier-1 AS has at least one provider (no partitions upward).
    pub fn check(&self) -> Result<(), TopologyError> {
        // analyze:allow(cast-truncation) AS ids are u32 by design.
        for a in 0..self.len() as u32 {
            for &p in &self.providers[a as usize] {
                if !self.customers[p as usize].contains(&a) {
                    return Err(TopologyError::AsymmetricProviderLink {
                        customer: a,
                        provider: p,
                    });
                }
            }
            for &q in &self.peers[a as usize] {
                if !self.peers[q as usize].contains(&a) {
                    return Err(TopologyError::AsymmetricPeerLink { a, b: q });
                }
            }
            if self.tier[a as usize] != 1 && self.providers[a as usize].is_empty() {
                return Err(TopologyError::NoProvider {
                    asn: a,
                    tier: self.tier[a as usize],
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::UniverseConfig;

    fn topo() -> Topology {
        let u = Universe::generate(UniverseConfig::small(7));
        Topology::generate(&u, 3)
    }

    #[test]
    fn structure_is_sane() {
        let t = topo();
        t.check().expect("valid topology");
        assert_eq!(t.len(), 40);
        let t1 = t.tier.iter().filter(|&&x| x == 1).count();
        let t2 = t.tier.iter().filter(|&&x| x == 2).count();
        let t3 = t.tier.iter().filter(|&&x| x == 3).count();
        assert!(t1 >= 3);
        assert!(t2 >= 4);
        assert!(t3 > t2, "stubs dominate: {t3} vs {t2}");
    }

    #[test]
    fn tier1s_form_a_clique_and_have_no_providers() {
        let t = topo();
        let tier1: Vec<u32> = (0..t.len() as u32)
            .filter(|&a| t.tier[a as usize] == 1)
            .collect();
        for &a in &tier1 {
            assert!(
                t.providers[a as usize].is_empty(),
                "tier-1 {a} buys transit"
            );
            for &b in &tier1 {
                if a != b {
                    assert!(t.peers[a as usize].contains(&b), "{a} !~ {b}");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let u = Universe::generate(UniverseConfig::small(7));
        let a = Topology::generate(&u, 3);
        let b = Topology::generate(&u, 3);
        assert_eq!(a.providers, b.providers);
        assert_eq!(a.peers, b.peers);
        let c = Topology::generate(&u, 4);
        assert_ne!(a.providers, c.providers, "different seeds differ");
    }
}
