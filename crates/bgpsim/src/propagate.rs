//! Valley-free (Gao-Rexford) route propagation.
//!
//! For each announced prefix, routes spread from the origin AS in the
//! classic three phases:
//!
//! 1. **up** — along customer→provider links (everyone exports routes
//!    learned from customers to everyone, so providers keep relaying
//!    upward),
//! 2. **across** — one peer hop (peer routes are exported to customers
//!    only, so at most one lateral step),
//! 3. **down** — along provider→customer links (peer/provider-learned
//!    routes go to customers only, continuing downward).
//!
//! The result per AS is whether it hears the prefix at all, through which
//! neighbor, and by which route class — enough to materialize the routing
//! table any vantage AS would dump, with link failures causing realistic
//! partial visibility (single-homed stubs go dark, multihomed ones
//! reroute).

use netclust_netgen::{unit_f64, Universe};
use netclust_prefix::Ipv4Net;
use netclust_rtable::{RoutingTable, TableKind};

use crate::topology::Topology;

/// How an AS learned a route (also its Gao-Rexford preference order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RouteClass {
    /// The AS originates the prefix.
    Origin,
    /// Learned from a customer (most preferred).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider (least preferred).
    Provider,
}

/// Per-AS result of propagating one prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// How the route was learned.
    pub class: RouteClass,
    /// AS-path length from the origin.
    pub dist: u16,
    /// The neighbor the route was learned from (self for the origin).
    pub parent: u32,
}

/// Per-day link-failure probability for each provider link.
const P_LINK_DOWN: f64 = 0.01;

/// A propagation model over a universe and an AS topology.
pub struct PropagationModel<'u> {
    universe: &'u Universe,
    topology: Topology,
    seed: u64,
}

impl<'u> PropagationModel<'u> {
    /// Creates a model; `seed` drives link-failure draws.
    pub fn new(universe: &'u Universe, topology: Topology, seed: u64) -> Self {
        assert_eq!(
            topology.len(),
            universe.ases().len(),
            "topology must cover every AS"
        );
        PropagationModel {
            universe,
            topology,
            seed,
        }
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Whether the provider link `customer → provider` is up at
    /// `(day, tick)`. Deterministic per (seed, link, day): failures last a
    /// whole day (maintenance/outage scale), with a small intra-day
    /// flutter component.
    pub fn link_up(&self, customer: u32, provider: u32, day: u32, tick: u32) -> bool {
        let key = [(customer as u64) << 32 | provider as u64, day as u64];
        if unit_f64(self.seed, &[0x11F, key[0], key[1]]) < P_LINK_DOWN {
            return false;
        }
        // Intra-day flutter on a small subset of links.
        unit_f64(self.seed, &[0x11F + 1, key[0], key[1], tick as u64]) >= 0.002
    }

    /// Propagates one prefix from `origin`, returning each AS's best route
    /// (or `None` if unreachable under current link state).
    pub fn propagate(&self, origin: u32, day: u32, tick: u32) -> Vec<Option<RouteEntry>> {
        let n = self.topology.len();
        let mut best: Vec<Option<RouteEntry>> = vec![None; n];
        best[origin as usize] = Some(RouteEntry {
            class: RouteClass::Origin,
            dist: 0,
            parent: origin,
        });

        // Phase 1: up along customer→provider links.
        let mut frontier = vec![origin];
        while let Some(next) = {
            let mut next = Vec::new();
            for &a in &frontier {
                let dist = best[a as usize].expect("frontier is reached").dist;
                for &p in &self.topology.providers[a as usize] {
                    if best[p as usize].is_none() && self.link_up(a, p, day, tick) {
                        best[p as usize] = Some(RouteEntry {
                            class: RouteClass::Customer,
                            dist: dist + 1,
                            parent: a,
                        });
                        next.push(p);
                    }
                }
            }
            if next.is_empty() {
                None
            } else {
                Some(next)
            }
        } {
            frontier = next;
        }

        // Phase 2: one peer hop from every up-reachable AS.
        // analyze:allow(cast-truncation) AS ids are u32 by design.
        let up_reached: Vec<u32> = (0..n as u32)
            .filter(|&a| best[a as usize].is_some())
            .collect();
        for &a in &up_reached {
            let dist = best[a as usize].expect("reached").dist;
            for &q in &self.topology.peers[a as usize] {
                if best[q as usize].is_none() {
                    best[q as usize] = Some(RouteEntry {
                        class: RouteClass::Peer,
                        dist: dist + 1,
                        parent: a,
                    });
                }
            }
        }

        // Phase 3: down along provider→customer links from everything
        // reached so far.
        // analyze:allow(cast-truncation) AS ids are u32 by design.
        let mut frontier: Vec<u32> = (0..n as u32)
            .filter(|&a| best[a as usize].is_some())
            .collect();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &a in &frontier {
                let dist = best[a as usize].expect("reached").dist;
                for &c in &self.topology.customers[a as usize] {
                    if best[c as usize].is_none() && self.link_up(c, a, day, tick) {
                        best[c as usize] = Some(RouteEntry {
                            class: RouteClass::Provider,
                            dist: dist + 1,
                            parent: a,
                        });
                        next.push(c);
                    }
                }
            }
            frontier = next;
        }
        best
    }

    /// Reconstructs the AS path (origin first) from a propagation result.
    pub fn as_path(entries: &[Option<RouteEntry>], dest: u32) -> Option<Vec<u32>> {
        let mut path = vec![dest];
        let mut cur = dest;
        loop {
            let e = entries[cur as usize]?;
            if e.class == RouteClass::Origin {
                path.reverse();
                return Some(path);
            }
            cur = e.parent;
            path.push(cur);
            if path.len() > entries.len() {
                return None; // cycle guard (cannot happen with BFS parents)
            }
        }
    }

    /// Materializes the routing tables the given vantage ASes would dump
    /// at `(day, tick)`. `visibility` models partial feeds (1.0 = full
    /// table); prefixes are the universe's announcements for `day`.
    pub fn vantage_tables(
        &self,
        vantages: &[(String, u32, f64)],
        day: u32,
        tick: u32,
    ) -> Vec<RoutingTable> {
        let mut per_vantage: Vec<Vec<Ipv4Net>> = vec![Vec::new(); vantages.len()];
        for ann in self.universe.announcements(day) {
            let reach = self.propagate(ann.as_id, day, tick);
            for (vi, (name, vantage_as, visibility)) in vantages.iter().enumerate() {
                if reach[*vantage_as as usize].is_none() {
                    continue;
                }
                // Partial-feed filter, stable per (vantage, prefix).
                let key = ((ann.prefix.addr_u32() as u64) << 8) | ann.prefix.len() as u64;
                let vp = name.len() as u64 ^ (*vantage_as as u64) << 8;
                if unit_f64(self.seed, &[0xFEED5, vp, key]) < *visibility {
                    per_vantage[vi].push(ann.prefix);
                }
            }
        }
        vantages
            .iter()
            .zip(per_vantage)
            .map(|((name, _, _), prefixes)| {
                RoutingTable::new(
                    name.clone(),
                    format!("day{day}.t{tick}"),
                    TableKind::Bgp,
                    prefixes,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::UniverseConfig;

    fn setup() -> (Universe, Topology) {
        let u = Universe::generate(UniverseConfig::small(7));
        let t = Topology::generate(&u, 3);
        (u, t)
    }

    #[test]
    fn everyone_reaches_everything_without_failures() {
        let (u, t) = setup();
        let model = PropagationModel::new(&u, t, 0);
        // With links up (tick far from flutter draws we can't control, so
        // just require near-complete reachability on day 0).
        let mut unreachable = 0usize;
        for origin in 0..u.ases().len() as u32 {
            let reach = model.propagate(origin, 0, 0);
            unreachable += reach.iter().filter(|r| r.is_none()).count();
        }
        let total = u.ases().len() * u.ases().len();
        assert!(
            (unreachable as f64) < total as f64 * 0.1,
            "{unreachable} of {total} unreachable"
        );
    }

    #[test]
    fn paths_are_valley_free() {
        let (u, t) = setup();
        let model = PropagationModel::new(&u, t, 0);
        for origin in (0..u.ases().len() as u32).step_by(5) {
            let reach = model.propagate(origin, 0, 0);
            for dest in 0..u.ases().len() as u32 {
                let Some(path) = PropagationModel::as_path(&reach, dest) else {
                    continue;
                };
                assert_eq!(path[0], origin);
                assert_eq!(*path.last().unwrap(), dest);
                // Classify each hop walking from origin: must match
                // up* peer? down*.
                let topo = model.topology();
                let mut phase = 0; // 0 = up, 1 = after peer, 2 = down
                for w in path.windows(2) {
                    let (from, to) = (w[0], w[1]);
                    let up = topo.providers[from as usize].contains(&to);
                    let peer = topo.peers[from as usize].contains(&to);
                    let down = topo.customers[from as usize].contains(&to);
                    assert!(up || peer || down, "no link {from}->{to}");
                    if up {
                        assert_eq!(phase, 0, "uphill after leaving phase 0: {path:?}");
                    } else if peer {
                        assert_eq!(phase, 0, "second lateral move: {path:?}");
                        phase = 1;
                    } else {
                        phase = 2;
                    }
                }
            }
        }
    }

    #[test]
    fn route_classes_follow_preference_semantics() {
        let (u, t) = setup();
        let model = PropagationModel::new(&u, t, 0);
        let reach = model.propagate(0, 0, 0);
        assert_eq!(reach[0].unwrap().class, RouteClass::Origin);
        // Providers of the origin hear a customer route.
        for &p in &model.topology().providers[0] {
            if let Some(e) = reach[p as usize] {
                assert_eq!(e.class, RouteClass::Customer);
                assert_eq!(e.dist, 1);
                assert_eq!(e.parent, 0);
            }
        }
    }

    #[test]
    fn link_failures_cause_partial_visibility() {
        let (u, t) = setup();
        let model = PropagationModel::new(&u, t, 99);
        // Over many days, some (origin, day) pairs lose reachability
        // somewhere — and single-homed stubs are the usual victims.
        let mut lost = 0usize;
        for day in 0..15 {
            let reach = model.propagate(0, day, 0);
            lost += reach.iter().filter(|r| r.is_none()).count();
        }
        assert!(lost > 0, "expected some failure-induced unreachability");
    }

    #[test]
    fn vantage_tables_vary_with_feed_quality() {
        let (u, t) = setup();
        let model = PropagationModel::new(&u, t, 1);
        let vantages = vec![
            ("FULL".to_string(), 1u32, 1.0),
            ("PARTIAL".to_string(), 2u32, 0.3),
        ];
        let tables = model.vantage_tables(&vantages, 0, 0);
        assert_eq!(tables.len(), 2);
        assert!(
            tables[0].len() > tables[1].len() * 2,
            "{} vs {}",
            tables[0].len(),
            tables[1].len()
        );
        // Some day within two weeks differs from day 0 (link churn plus
        // announcement births); a single-day comparison can coincide.
        let changed = (1..15).any(|day| {
            let later = model.vantage_tables(&vantages, day, 0);
            later[0].prefixes() != tables[0].prefixes()
        });
        assert!(changed, "no churn over 14 days");
    }

    #[test]
    fn deterministic() {
        let (u, t) = setup();
        let model = PropagationModel::new(&u, t.clone(), 5);
        let a = model.propagate(3, 2, 1);
        let b = model.propagate(3, 2, 1);
        assert_eq!(a, b);
    }
}
