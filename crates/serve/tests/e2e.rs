//! End-to-end tests for `netclustd`: the full service loop — boot from
//! table files, tail a growing access log, answer the query API over
//! real sockets, reload live, survive SIGKILL and resume from the
//! persisted state, shut down gracefully on SIGTERM.
//!
//! In-process tests drive [`netclust_serve::Daemon`] directly (fast, and
//! the fault-injection tests need the in-process metrics handles); the
//! crash/resume test runs the real `netclustd` binary via
//! `CARGO_BIN_EXE_netclustd`.

use std::io::{Read as _, Write as _};
use std::net::{Ipv4Addr, SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use netclust_core::{failpoints, FaultPlan};
use netclust_netgen::{standard_collection, Universe, UniverseConfig};
use netclust_rtable::TableKind;
use netclust_serve::{Daemon, ServeConfig};
use netclust_weblog::{clf, generate, LogSpec};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netclustd-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Synthesizes a corpus on disk: routing-table files, a CLF access log,
/// and the facts the assertions need.
struct Fixture {
    dir: PathBuf,
    tables: Vec<PathBuf>,
    dumps: Vec<PathBuf>,
    log: PathBuf,
    clf: String,
    total_requests: u64,
    a_client: Ipv4Addr,
}

fn fixture(name: &str, seed: u64) -> Fixture {
    let dir = tmpdir(name);
    let universe = Universe::generate(UniverseConfig::small(seed));
    let mut tables = Vec::new();
    let mut dumps = Vec::new();
    for table in standard_collection(&universe, 0, 0) {
        let ext = match table.kind {
            TableKind::Bgp => "bgp",
            TableKind::NetworkDump => "dump",
        };
        let path = dir.join(format!(
            "{}.{ext}",
            table.name.to_lowercase().replace(['&', '-', ' '], "_")
        ));
        let body: String = table.prefixes().iter().map(|p| format!("{p}\n")).collect();
        std::fs::write(&path, body).expect("write table");
        match table.kind {
            TableKind::Bgp => tables.push(path),
            TableKind::NetworkDump => dumps.push(path),
        }
    }
    let mut spec = LogSpec::tiny(name, seed);
    spec.total_requests = 3_000;
    let log = generate(&universe, &spec);
    let text = clf::to_clf(&log);
    let a_client = log.requests.first().expect("nonempty log").client_addr();
    let log_path = dir.join("access.log");
    Fixture {
        dir,
        tables,
        dumps,
        log: log_path,
        clf: text,
        total_requests: log.requests.len() as u64,
        a_client,
    }
}

fn path_list(paths: &[PathBuf]) -> String {
    paths
        .iter()
        .map(|p| p.to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join(",")
}

/// One keep-alive HTTP/1.1 connection with exact Content-Length framing,
/// so several requests can flow over the same socket.
struct Client {
    conn: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        Client {
            conn,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, method: &str, target: &str, body: Option<&str>) -> (u16, String) {
        let mut req = format!("{method} {target} HTTP/1.1\r\nHost: t\r\n");
        if let Some(body) = body {
            req.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        req.push_str("\r\n");
        if let Some(body) = body {
            req.push_str(body);
        }
        self.conn.write_all(req.as_bytes()).expect("send request");
        self.read_response()
    }

    fn read_response(&mut self) -> (u16, String) {
        let mut scratch = [0u8; 8192];
        loop {
            if let Some(head_end) = find(&self.buf, b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
                let status: u16 = head
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("status code");
                let content_length: usize = head
                    .lines()
                    .find_map(|l| {
                        l.to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(|v| v.trim().parse().expect("content-length"))
                    })
                    .expect("content-length header");
                let body_start = head_end + 4;
                while self.buf.len() < body_start + content_length {
                    let n = self.conn.read(&mut scratch).expect("read body");
                    assert!(n > 0, "connection closed mid-body");
                    self.buf.extend_from_slice(&scratch[..n]);
                }
                let body =
                    String::from_utf8_lossy(&self.buf[body_start..body_start + content_length])
                        .into_owned();
                self.buf.drain(..body_start + content_length);
                return (status, body);
            }
            let n = self.conn.read(&mut scratch).expect("read head");
            assert!(n > 0, "connection closed before response head");
            self.buf.extend_from_slice(&scratch[..n]);
        }
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    Client::connect(addr).send("GET", target, None)
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

fn base_config(fx: &Fixture) -> ServeConfig {
    ServeConfig::new()
        .tables(fx.tables.clone())
        .dumps(fx.dumps.clone())
        .poll_interval(Duration::from_millis(20))
}

#[test]
fn the_full_api_answers_over_one_keep_alive_connection() {
    let fx = fixture("api", 11);
    std::fs::write(&fx.log, &fx.clf).expect("write log");
    let daemon = Daemon::start(base_config(&fx).log(&fx.log)).expect("boot");
    let addr = daemon.local_addr();
    let want = fx.total_requests;
    wait_for("log ingested", || {
        get(addr, "/healthz")
            .1
            .contains(&format!("\"total_requests\": {want}"))
    });

    // Every endpoint, pipelined over one socket.
    let mut c = Client::connect(addr);
    let (status, body) = c.send("GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""), "{body}");

    let (status, body) = c.send("GET", &format!("/v1/cluster?ip={}", fx.a_client), None);
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("\"ip\": \"{}\"", fx.a_client)),
        "{body}"
    );
    assert!(body.contains("\"cluster\""), "{body}");

    let (status, body) = c.send("GET", "/v1/clusters/top?n=5", None);
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"clusters\": ["), "{body}");

    let (status, body) = c.send("GET", &format!("/v1/verdict?ip={}", fx.a_client), None);
    assert_eq!(status, 200);
    assert!(body.contains("\"class\""), "{body}");

    let (status, body) = c.send("GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(body.contains("serve.http.requests"), "{body}");
    assert!(body.contains("serve.follow.chunks"), "{body}");

    // Error surface, still on the same socket.
    let (status, _) = c.send("GET", "/v1/cluster", None);
    assert_eq!(status, 400, "missing ip");
    let (status, _) = c.send("GET", "/v1/cluster?ip=not-an-ip", None);
    assert_eq!(status, 400, "bad ip");
    let (status, _) = c.send("GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = c.send("GET", "/v1/reload", None);
    assert_eq!(status, 405, "reload is POST-only");

    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn the_follower_feeds_appended_lines_into_the_live_view() {
    let fx = fixture("follow", 13);
    std::fs::write(&fx.log, "").expect("create empty log");
    let daemon = Daemon::start(base_config(&fx).log(&fx.log)).expect("boot");
    let addr = daemon.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"total_requests\": 0"), "{body}");

    // Append the corpus in two pieces, torn mid-line at the seam: the
    // follower must hold the torn tail until the rest arrives.
    let bytes = fx.clf.as_bytes();
    let cut = bytes.len() / 2;
    let cut = cut + bytes[cut..].iter().position(|&b| b == b'\n').unwrap_or(0) / 2;
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&fx.log)
            .expect("open log");
        f.write_all(&bytes[..cut]).expect("first half");
        f.sync_all().expect("sync");
        std::thread::sleep(Duration::from_millis(120));
        f.write_all(&bytes[cut..]).expect("second half");
    }
    let want = fx.total_requests;
    wait_for("all appended lines ingested", || {
        get(addr, "/healthz")
            .1
            .contains(&format!("\"total_requests\": {want}"))
    });
    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn reload_applies_deltas_and_swaps_tables() {
    let fx = fixture("reload", 17);
    std::fs::write(&fx.log, &fx.clf).expect("write log");
    let daemon = Daemon::start(base_config(&fx).log(&fx.log)).expect("boot");
    let addr = daemon.local_addr();
    let want = fx.total_requests;
    wait_for("log ingested", || {
        get(addr, "/healthz")
            .1
            .contains(&format!("\"total_requests\": {want}"))
    });

    // Delta reload: announcing a fresh prefix is always coverage-safe.
    let mut c = Client::connect(addr);
    let (status, body) = c.send(
        "POST",
        "/v1/reload",
        Some("# live feed\nannounce 10.99.0.0/16\n"),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"mode\": \"deltas\""), "{body}");
    assert!(body.contains("\"accepted\": true"), "{body}");

    // Full-table swap back to the same files: a no-op candidate passes
    // every validation gate.
    let target = format!(
        "/v1/reload?table={}&dump={}",
        path_list(&fx.tables),
        path_list(&fx.dumps)
    );
    let (status, body) = c.send("POST", &target, None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"mode\": \"swap\""), "{body}");
    assert!(body.contains("\"accepted\": true"), "{body}");

    // Bad inputs answer 400, not a wedged daemon.
    let (status, _) = c.send("POST", "/v1/reload?table=/nonexistent.bgp", None);
    assert_eq!(status, 400);
    let (status, _) = c.send("POST", "/v1/reload", Some("frobnicate 1.2.3.0/24\n"));
    assert_eq!(status, 400);

    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn the_accept_failpoint_sheds_connections() {
    let fx = fixture("shed", 19);
    let plan = FaultPlan::new(7).with(failpoints::SERVE_ACCEPT, 1.0);
    let daemon = Daemon::start(base_config(&fx).faults(plan)).expect("boot");
    let addr = daemon.local_addr();

    // Every connection is shed before a worker sees it: the socket opens
    // (kernel backlog) and then closes without a byte of response.
    for _ in 0..3 {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        let mut out = Vec::new();
        let _ = conn.read_to_end(&mut out);
        assert!(out.is_empty(), "shed connection answered: {out:?}");
    }
    wait_for("shed connections counted", || {
        daemon.state().metrics.accept_shed.get() >= 3
    });
    drop(daemon);
}

#[test]
fn the_parse_failpoint_tears_requests_into_400s() {
    let fx = fixture("torn", 23);
    let plan = FaultPlan::new(7).with(failpoints::SERVE_REQUEST_PARSE, 1.0);
    let daemon = Daemon::start(base_config(&fx).faults(plan)).expect("boot");
    let addr = daemon.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 400, "injected parse fault must answer 400: {body}");
    assert!(body.contains("torn"), "{body}");
    assert!(daemon.state().metrics.parse_errors.get() >= 1);
    drop(daemon);
}

#[test]
fn equal_corpora_render_byte_identical_json() {
    let fx = fixture("determinism", 29);
    std::fs::write(&fx.log, &fx.clf).expect("write log");
    let mk = || {
        let daemon = Daemon::start(base_config(&fx).log(&fx.log)).expect("boot");
        let addr = daemon.local_addr();
        let want = fx.total_requests;
        wait_for("log ingested", || {
            get(addr, "/healthz")
                .1
                .contains(&format!("\"total_requests\": {want}"))
        });
        let cluster = get(addr, &format!("/v1/cluster?ip={}", fx.a_client)).1;
        let top = get(addr, "/v1/clusters/top?n=20").1;
        let verdict = get(addr, &format!("/v1/verdict?ip={}", fx.a_client)).1;
        daemon.shutdown().expect("clean shutdown");
        (cluster, top, verdict)
    };
    let a = mk();
    let b = mk();
    assert_eq!(
        a, b,
        "two daemons over the same corpus must agree byte-for-byte"
    );
}

/// The real binary: boot with persistence, ingest, SIGKILL mid-flight,
/// resume from the state dir, verify the view survived, then stop
/// gracefully on SIGTERM.
#[test]
fn netclustd_survives_kill_and_resumes_from_its_checkpoint() {
    let fx = fixture("resume", 31);
    std::fs::write(&fx.log, &fx.clf).expect("write log");
    let state_dir = fx.dir.join("state");
    let spawn = |resume: bool, port_file: &Path| -> Child {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_netclustd"));
        cmd.arg("--table")
            .arg(path_list(&fx.tables))
            .arg("--dump")
            .arg(path_list(&fx.dumps))
            .arg("--log")
            .arg(&fx.log)
            .arg("--state-dir")
            .arg(&state_dir)
            .arg("--port-file")
            .arg(port_file)
            .args([
                "--poll-ms",
                "20",
                "--checkpoint-bytes",
                "1",
                "--deterministic",
            ]);
        if resume {
            cmd.arg("--resume");
        }
        cmd.spawn().expect("spawn netclustd")
    };
    let read_addr = |port_file: &Path| -> SocketAddr {
        let mut addr = None;
        wait_for("port file", || {
            addr = std::fs::read_to_string(port_file)
                .ok()
                .and_then(|s| s.trim().parse().ok());
            addr.is_some()
        });
        addr.expect("bound address")
    };

    let port_a = fx.dir.join("port-a");
    let mut first = spawn(false, &port_a);
    let addr = read_addr(&port_a);
    let want = fx.total_requests;
    wait_for("log ingested", || {
        get(addr, "/healthz")
            .1
            .contains(&format!("\"total_requests\": {want}"))
    });
    // The ingest chunk checkpoints right after applying (threshold is one
    // byte); wait until the snapshot has actually hit the disk.
    wait_for("checkpoint written", || {
        get(addr, "/metrics").1.contains("serve.checkpoints")
            && !get(addr, "/metrics").1.contains("\"serve.checkpoints\": 0")
    });
    let top_before = get(addr, "/v1/clusters/top?n=20").1;

    // SIGKILL: no graceful path, no final checkpoint.
    first.kill().expect("kill");
    let _ = first.wait();

    let port_b = fx.dir.join("port-b");
    let mut second = spawn(true, &port_b);
    let addr = read_addr(&port_b);
    wait_for("resumed view restored", || {
        get(addr, "/healthz")
            .1
            .contains(&format!("\"total_requests\": {want}"))
    });
    let top_after = get(addr, "/v1/clusters/top?n=20").1;
    assert_eq!(
        top_before, top_after,
        "the resumed daemon must serve the same clusters byte-for-byte"
    );

    // Graceful SIGTERM: exits 0 after its final checkpoint.
    let pid = second.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM failed");
    wait_for("graceful exit", || matches!(second.try_wait(), Ok(Some(_))));
    let exit = second.wait().expect("wait");
    assert!(
        exit.success(),
        "graceful shutdown must exit 0, got {exit:?}"
    );
}
