//! [`ServeConfig`]: the daemon half of the configuration pair.
//!
//! [`netclust_core::RunConfig`] owns the knobs every clustering run shares
//! (threads, determinism, error budget, swap policy, fsync cadence, obs);
//! `ServeConfig` embeds one and adds the daemon-only surface: where to
//! listen, what to tail, how often to poll, when to checkpoint. The
//! `netclustd` flag parser produces exactly this struct —
//! [`ServeConfig::from_args`] — so tests and embedders configure the
//! daemon through the same typed path the CLI does, not a parallel set of
//! setters.

use std::path::PathBuf;
use std::time::Duration;

use netclust_core::{failpoints, FaultPlan, RunConfig, VerdictPolicy};

/// Full configuration for one `netclustd` instance. Construct with
/// [`ServeConfig::new`] (defaults suit tests: ephemeral port, no log, no
/// state dir), chain setters, hand to [`crate::Daemon::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    listen: String,
    http_threads: usize,
    poll_interval: Duration,
    tables: Vec<PathBuf>,
    dumps: Vec<PathBuf>,
    log: Option<PathBuf>,
    state_dir: Option<PathBuf>,
    resume: bool,
    checkpoint_bytes: u64,
    top_default: usize,
    port_file: Option<PathBuf>,
    run: RunConfig,
    faults: FaultPlan,
    verdict: VerdictPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            http_threads: 4,
            poll_interval: Duration::from_millis(200),
            tables: Vec::new(),
            dumps: Vec::new(),
            log: None,
            state_dir: None,
            resume: false,
            checkpoint_bytes: 4 << 20,
            top_default: 10,
            port_file: None,
            run: RunConfig::new(),
            faults: FaultPlan::disabled(),
            verdict: VerdictPolicy::default(),
        }
    }
}

impl ServeConfig {
    /// Defaults: ephemeral loopback port, 4 HTTP threads, 200 ms poll,
    /// 4 MiB checkpoint threshold, top-10 default, no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Listen address (`host:port`; port `0` binds an ephemeral port).
    pub fn listen(mut self, addr: impl Into<String>) -> Self {
        self.listen = addr.into();
        self
    }

    /// Size of the HTTP worker pool.
    pub fn http_threads(mut self, threads: usize) -> Self {
        self.http_threads = threads.max(1);
        self
    }

    /// How often the log follower polls for new bytes.
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval.max(Duration::from_millis(1));
        self
    }

    /// BGP table files (the `--table` tier).
    pub fn tables(mut self, paths: Vec<PathBuf>) -> Self {
        self.tables = paths;
        self
    }

    /// Network-dump table files (the `--dump` tier).
    pub fn dumps(mut self, paths: Vec<PathBuf>) -> Self {
        self.dumps = paths;
        self
    }

    /// Access log to tail (optional: a daemon can serve a pure
    /// reload-driven table with no log).
    pub fn log(mut self, path: impl Into<PathBuf>) -> Self {
        self.log = Some(path.into());
        self
    }

    /// Directory for crash-safe persistence (snapshots + journal).
    pub fn state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.state_dir = Some(dir.into());
        self
    }

    /// Recover from an existing state dir instead of starting fresh.
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    /// Ingested-byte threshold that forces a checkpoint.
    pub fn checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_bytes = bytes.max(1);
        self
    }

    /// Default `n` for `/v1/clusters/top` when the query omits it.
    pub fn top_default(mut self, n: usize) -> Self {
        self.top_default = n.max(1);
        self
    }

    /// File to write the bound address to once listening (how scripts
    /// find an ephemeral port).
    pub fn port_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.port_file = Some(path.into());
        self
    }

    /// The shared run knobs (threads, determinism, swap policy, fsync,
    /// obs).
    pub fn run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Deterministic fault plan (arming [`failpoints::SERVE_ACCEPT`] /
    /// [`failpoints::SERVE_REQUEST_PARSE`] and friends).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Thresholds for `/v1/verdict`.
    pub fn verdict(mut self, policy: VerdictPolicy) -> Self {
        self.verdict = policy;
        self
    }

    /// The listen address.
    pub fn listen_addr(&self) -> &str {
        &self.listen
    }

    /// The HTTP worker-pool size.
    pub fn http_threads_n(&self) -> usize {
        self.http_threads
    }

    /// The follower poll interval.
    pub fn poll_interval_d(&self) -> Duration {
        self.poll_interval
    }

    /// The BGP table files.
    pub fn table_paths(&self) -> &[PathBuf] {
        &self.tables
    }

    /// The network-dump table files.
    pub fn dump_paths(&self) -> &[PathBuf] {
        &self.dumps
    }

    /// The tailed log, if any.
    pub fn log_path(&self) -> Option<&PathBuf> {
        self.log.as_ref()
    }

    /// The persistence directory, if any.
    pub fn state_dir_path(&self) -> Option<&PathBuf> {
        self.state_dir.as_ref()
    }

    /// Whether to recover from the state dir.
    pub fn is_resume(&self) -> bool {
        self.resume
    }

    /// The checkpoint byte threshold.
    pub fn checkpoint_bytes_n(&self) -> u64 {
        self.checkpoint_bytes
    }

    /// The default top-N size.
    pub fn top_default_n(&self) -> usize {
        self.top_default
    }

    /// The port file, if any.
    pub fn port_file_path(&self) -> Option<&PathBuf> {
        self.port_file.as_ref()
    }

    /// The shared run knobs.
    pub fn run_config(&self) -> &RunConfig {
        &self.run
    }

    /// The fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The verdict thresholds.
    pub fn verdict_policy(&self) -> VerdictPolicy {
        self.verdict
    }

    /// Parses `netclustd` command-line flags. Returns a usage message on
    /// any unknown or malformed flag.
    // analyze:allow(typed-errors) flag-parse failures are usage text printed verbatim to stderr; no caller matches on them.
    pub fn from_args(args: &[String]) -> Result<ServeConfig, String> {
        let mut cfg = ServeConfig::new();
        let mut run = RunConfig::new();
        let mut fault_seed = 1u64;
        let mut fault_points: Vec<(String, f64)> = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--listen" => cfg.listen = value("--listen")?.clone(),
                "--table" => {
                    cfg.tables.extend(split_paths(value("--table")?));
                }
                "--dump" => {
                    cfg.dumps.extend(split_paths(value("--dump")?));
                }
                "--log" => cfg.log = Some(PathBuf::from(value("--log")?)),
                "--state-dir" => cfg.state_dir = Some(PathBuf::from(value("--state-dir")?)),
                "--resume" => cfg.resume = true,
                "--http-threads" => {
                    cfg.http_threads = parse_num(value("--http-threads")?, "--http-threads")?;
                    cfg.http_threads = cfg.http_threads.max(1);
                }
                "--poll-ms" => {
                    let ms: u64 = parse_num(value("--poll-ms")?, "--poll-ms")?;
                    cfg.poll_interval = Duration::from_millis(ms.max(1));
                }
                "--checkpoint-bytes" => {
                    cfg.checkpoint_bytes =
                        parse_num::<u64>(value("--checkpoint-bytes")?, "--checkpoint-bytes")?
                            .max(1);
                }
                "--top" => {
                    cfg.top_default = parse_num::<usize>(value("--top")?, "--top")?.max(1);
                }
                "--port-file" => cfg.port_file = Some(PathBuf::from(value("--port-file")?)),
                "--threads" => {
                    run = run.threads(parse_num(value("--threads")?, "--threads")?);
                }
                "--deterministic" => run = run.deterministic(true),
                "--max-error-rate" => {
                    run = run
                        .max_error_rate(parse_num(value("--max-error-rate")?, "--max-error-rate")?);
                }
                "--fsync" => {
                    let policy = value("--fsync")?
                        .parse()
                        .map_err(|e| format!("--fsync: {e:?}"))?;
                    run = run.fsync(policy);
                }
                "--fault-seed" => {
                    fault_seed = parse_num(value("--fault-seed")?, "--fault-seed")?;
                }
                "--fault" => {
                    let spec = value("--fault")?;
                    let (point, prob) = spec
                        .split_once('=')
                        .ok_or_else(|| format!("--fault wants POINT=PROB, got {spec:?}"))?;
                    if !failpoints::all().contains(&point) {
                        return Err(format!(
                            "--fault: unknown failpoint {point:?} (known: {})",
                            failpoints::all().join(", ")
                        ));
                    }
                    let prob: f64 = parse_num(prob, "--fault PROB")?;
                    fault_points.push((point.to_string(), prob));
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if cfg.tables.is_empty() && cfg.dumps.is_empty() {
            return Err("--table or --dump is required (the serving table)".to_string());
        }
        if !fault_points.is_empty() {
            let mut plan = FaultPlan::new(fault_seed);
            for (point, prob) in fault_points {
                plan = plan.with(&point, prob);
            }
            cfg.faults = plan;
        }
        cfg.run = run;
        Ok(cfg)
    }
}

fn split_paths(list: &str) -> Vec<PathBuf> {
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
        .collect()
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: unparsable value {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_into_the_typed_config() {
        let cfg = ServeConfig::from_args(&argv(&[
            "--listen",
            "127.0.0.1:8080",
            "--table",
            "a.bgp,b.bgp",
            "--dump",
            "c.dump",
            "--log",
            "/var/log/access.log",
            "--state-dir",
            "/tmp/state",
            "--resume",
            "--http-threads",
            "2",
            "--poll-ms",
            "50",
            "--top",
            "25",
            "--deterministic",
            "--threads",
            "3",
            "--fault",
            "serve.accept=0.5",
            "--fault-seed",
            "9",
        ]))
        .expect("valid flags");
        assert_eq!(cfg.listen_addr(), "127.0.0.1:8080");
        assert_eq!(cfg.table_paths().len(), 2);
        assert_eq!(cfg.dump_paths().len(), 1);
        assert!(cfg.is_resume());
        assert_eq!(cfg.http_threads_n(), 2);
        assert_eq!(cfg.poll_interval_d(), Duration::from_millis(50));
        assert_eq!(cfg.top_default_n(), 25);
        assert!(cfg.run_config().is_deterministic());
        assert_eq!(cfg.run_config().threads_opt(), Some(3));
        assert!(cfg.fault_plan().is_armed(failpoints::SERVE_ACCEPT));
    }

    #[test]
    fn unknown_flags_and_failpoints_are_usage_errors() {
        assert!(ServeConfig::from_args(&argv(&["--bogus"])).is_err());
        assert!(ServeConfig::from_args(&argv(&["--table", "t", "--fault", "nope=1"])).is_err());
        assert!(
            ServeConfig::from_args(&argv(&[])).is_err(),
            "a serving table is mandatory"
        );
    }
}
