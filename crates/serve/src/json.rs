//! Deterministic JSON rendering for the daemon's response bodies.
//!
//! Same discipline as `netclust-obs` snapshots and `core::query` answers:
//! hand-rolled writers, fixed key order, fixed float precision, no maps
//! iterated in hash order — so two daemons fed the same requests emit
//! byte-identical bodies, which the `--deterministic` end-to-end test
//! pins with `cmp`.

use std::fmt::Write as _;

use netclust_core::{PatchBatchReport, SwapReport};

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // analyze:allow(cast-truncation) a char scalar value always fits u32 losslessly.
            c if (c as u32) < 0x20 => {
                // analyze:allow(cast-truncation) a char scalar value always fits u32 losslessly.
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The `{"error": "..."}` envelope every non-2xx answer carries.
pub fn error_body(message: &str) -> String {
    format!("{{\"error\": \"{}\"}}", escape(message))
}

/// The `/healthz` body: liveness plus the cheap whole-view counters a
/// probe wants.
pub fn health_body(table_version: u64, total_requests: u64, clusters: u64) -> String {
    format!(
        "{{\"status\": \"ok\", \"table_version\": {table_version}, \
         \"total_requests\": {total_requests}, \"clusters\": {clusters}}}"
    )
}

/// Renders a full-table swap outcome (`POST /v1/reload?table=`).
pub fn swap_report_body(report: &SwapReport) -> String {
    let mut out = String::with_capacity(192);
    let _ = write!(
        out,
        "{{\"mode\": \"swap\", \"accepted\": {}, ",
        report.accepted
    );
    write_rejection(
        &mut out,
        report.rejection.as_ref().map(|r| format!("{r:?}")),
    );
    let _ = write!(
        out,
        ", \"candidate_entries\": {}, \"coverage_before\": {:.6}, \"coverage_after\": {:.6}}}",
        report.candidate_entries, report.coverage_before, report.coverage_after
    );
    out
}

/// Renders an incremental delta-batch outcome (`POST /v1/reload` body).
pub fn patch_report_body(report: &PatchBatchReport) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"mode\": \"deltas\", \"accepted\": {}, ",
        report.accepted
    );
    write_rejection(
        &mut out,
        report.rejection.as_ref().map(|r| format!("{r:?}")),
    );
    let _ = write!(
        out,
        ", \"candidate_entries\": {}, \"reassigned_clients\": {}, \
         \"coverage_before\": {:.6}, \"coverage_after\": {:.6}}}",
        report.candidate_entries,
        report.reassigned_clients,
        report.coverage_before,
        report.coverage_after
    );
    out
}

fn write_rejection(out: &mut String, rejection: Option<String>) {
    match rejection {
        Some(r) => {
            let _ = write!(out, "\"rejection\": \"{}\"", escape(&r));
        }
        None => out.push_str("\"rejection\": null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_the_dangerous_characters() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn bodies_are_stable_and_shaped() {
        assert_eq!(error_body("no"), "{\"error\": \"no\"}");
        let h = health_body(3, 100, 7);
        assert_eq!(
            h,
            "{\"status\": \"ok\", \"table_version\": 3, \
             \"total_requests\": 100, \"clusters\": 7}"
        );
    }
}
