//! The `netclustd` daemon: boot, accept loop, log follower, shutdown.
//!
//! [`Daemon::start`] assembles the whole service from a [`ServeConfig`]:
//! it loads (or recovers) the clustering state, binds the listener,
//! spawns the HTTP worker pool and the log-follower thread, and returns a
//! handle the caller polls until a stop is requested. Everything is
//! `std`-only — the accept loop is a non-blocking listener with a short
//! sleep, concurrency is the fixed `pool::ThreadPool`, and the
//! follower is one thread polling the tailed log on a configured
//! interval.
//!
//! Shutdown is graceful by construction: the accept thread owns the
//! worker pool, so when the stop flag flips it stops accepting, drops the
//! pool (which drains in-flight requests and joins every worker), and
//! only then does [`Daemon::shutdown`] write the final checkpoint — the
//! snapshot a `--resume` boot continues from.

use std::fmt;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use netclust_core::{failpoints, FaultPlan, StateStore, StreamingClustering};
use netclust_obs::{ErrorCounts, Obs};
use netclust_rtable::{MergedTable, TableKind};
use netclust_weblog::follow::LogFollower;

use crate::config::ServeConfig;
use crate::http::{self, HttpResponse, Parse};
use crate::json;
use crate::pool::{Handler, ThreadPool};
use crate::router::{self, AppState, ServeObs};

/// Why the daemon failed to boot or shut down cleanly.
#[derive(Debug)]
pub enum ServeError {
    /// A configuration-level problem: unreadable table, bad listen
    /// address, missing log.
    Config(String),
    /// A socket- or filesystem-level failure.
    Io(std::io::Error),
    /// The persistence layer refused (corrupt state dir, failed
    /// checkpoint).
    Persist(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "config: {msg}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Persist(msg) => write!(f, "persist: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A running `netclustd` instance. Dropping it (or calling
/// [`Daemon::shutdown`]) stops the accept loop, drains the worker pool,
/// joins the follower, and writes the final checkpoint.
pub struct Daemon {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    follower: Option<JoinHandle<()>>,
}

impl fmt::Debug for Daemon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Daemon").field("addr", &self.addr).finish()
    }
}

impl Daemon {
    /// Boots the daemon: loads or recovers state, binds the listener,
    /// spawns the HTTP pool and (when a log is configured) the follower.
    /// Returns once the service is answering requests.
    pub fn start(config: ServeConfig) -> Result<Daemon, ServeError> {
        // The daemon always records metrics — `/metrics` is an endpoint,
        // not an opt-in — so a disabled RunConfig obs is upgraded here.
        let obs = if config.run_config().obs_handle().is_enabled() {
            config.run_config().obs_handle().clone()
        } else {
            Obs::enabled()
        };
        let state = Arc::new(build_state(&config, &obs)?);

        let listener = TcpListener::bind(config.listen_addr())
            .map_err(|e| ServeError::Config(format!("bind {}: {e}", config.listen_addr())))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        if let Some(path) = config.port_file_path() {
            std::fs::write(path, format!("{addr}\n"))?;
        }

        let stop = Arc::new(AtomicBool::new(false));

        let plan = config.fault_plan().clone();
        let handler_state = Arc::clone(&state);
        let handler_stop = Arc::clone(&stop);
        let handler: Handler = Arc::new(move |conn| {
            serve_connection(&handler_state, conn, &plan, &handler_stop);
        });
        let pool = ThreadPool::new(config.http_threads_n(), handler);

        let accept_plan = config.fault_plan().clone();
        let accept_state = Arc::clone(&state);
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("netclustd-accept".to_string())
            .spawn(move || accept_loop(listener, pool, accept_state, accept_stop, accept_plan))?;

        let follower = match config.log_path() {
            None => None,
            Some(path) => {
                // ordering: boot is single-threaded here — the value was
                // just written by build_state; Acquire for symmetry with
                // the follower/checkpoint pairing.
                let offset = state.log_offset.load(Ordering::Acquire);
                let follower = if offset > 0 {
                    LogFollower::resume_at(path, offset)
                } else {
                    LogFollower::new(path)
                };
                let follow_state = Arc::clone(&state);
                let follow_stop = Arc::clone(&stop);
                let interval = config.poll_interval_d();
                let threshold = config.checkpoint_bytes_n();
                Some(
                    std::thread::Builder::new()
                        .name("netclustd-follow".to_string())
                        .spawn(move || {
                            follower_loop(follow_state, follower, interval, threshold, follow_stop)
                        })?,
                )
            }
        };

        Ok(Daemon {
            addr,
            state,
            stop,
            accept: Some(accept),
            follower: Some(follower).flatten(),
        })
    }

    /// The bound listen address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (for in-process inspection in tests).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Flags the accept loop and follower to wind down without blocking.
    pub fn request_stop(&self) {
        // ordering: single stop flag, no data published through it;
        // SeqCst keeps the shutdown handshake trivially correct.
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Stops accepting, drains in-flight requests, joins the follower,
    /// and writes the final checkpoint.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.wind_down();
        router::checkpoint_now(&self.state).map_err(ServeError::Persist)?;
        let mut guard = self
            .state
            .store
            .lock()
            .map_err(|_| ServeError::Persist("store lock poisoned".to_string()))?;
        if let Some(store) = guard.as_mut() {
            store
                .sync()
                .map_err(|e| ServeError::Persist(format!("final sync: {e}")))?;
        }
        Ok(())
    }

    fn wind_down(&mut self) {
        // ordering: single stop flag, no data published through it;
        // SeqCst keeps the shutdown handshake trivially correct.
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.follower.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.wind_down();
        let _ = router::checkpoint_now(&self.state);
    }
}

/// Loads the serving table and builds (or recovers) the shared state.
fn build_state(config: &ServeConfig, obs: &Obs) -> Result<AppState, ServeError> {
    let run = config.run_config().clone().obs(obs.clone());

    let mut tables = Vec::new();
    let mut noise = ErrorCounts::default();
    for (paths, kind) in [
        (config.table_paths(), TableKind::Bgp),
        (config.dump_paths(), TableKind::NetworkDump),
    ] {
        for path in paths {
            let (table, counts) =
                router::load_table(&path.to_string_lossy(), kind).map_err(ServeError::Config)?;
            noise.merge(counts);
            tables.push(table);
        }
    }

    let mut store = None;
    let mut log_offset = 0u64;
    let mut feed_index = 0u64;
    let stream: StreamingClustering = match config.state_dir_path() {
        Some(dir) if config.is_resume() => {
            let (mut recovered_store, snapshot, report) =
                StateStore::recover(dir, run.fsync_policy())
                    .map_err(|e| ServeError::Persist(format!("recover {}: {e}", dir.display())))?;
            recovered_store = recovered_store.obs(obs);
            let mut stream =
                StreamingClustering::restore(&snapshot, *run.swap_policy_ref(), obs.clone())
                    .map_err(|e| ServeError::Persist(format!("restore: {e}")))?;
            // Replay the journaled delta batches the crashed (or stopped)
            // process applied after its last snapshot.
            for batch in &report.batches {
                let _ = stream.apply_deltas(&batch.deltas);
                feed_index = feed_index.max(batch.feed_index + 1);
            }
            log_offset = snapshot.feed_pos;
            store = Some(recovered_store);
            stream
        }
        maybe_dir => {
            if let Some(dir) = maybe_dir {
                let fresh = StateStore::create(dir, run.fsync_policy())
                    .map_err(|e| ServeError::Persist(format!("create {}: {e}", dir.display())))?
                    .obs(obs);
                store = Some(fresh);
            }
            if tables.is_empty() {
                return Err(ServeError::Config(
                    "no serving table: give --table or --dump".to_string(),
                ));
            }
            run.streaming(MergedTable::merge(tables.iter()))
        }
    };

    Ok(AppState {
        stream: RwLock::new(stream),
        store: Mutex::new(store),
        obs: obs.clone(),
        metrics: ServeObs::resolve(obs),
        deterministic: run.is_deterministic(),
        top_default: config.top_default_n(),
        verdict: config.verdict_policy(),
        feed_index: AtomicU64::new(feed_index),
        log_offset: AtomicU64::new(log_offset),
    })
}

/// Accepts connections until the stop flag flips, dispatching each to the
/// pool. Owns the pool so dropping it on exit drains in-flight requests.
fn accept_loop(
    listener: TcpListener,
    pool: ThreadPool,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    plan: FaultPlan,
) {
    let mut injector = plan.injector();
    // ordering: stop flag only — no data rides on it; SeqCst matches the
    // store side.
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, _)) => {
                if injector.should_fire(failpoints::SERVE_ACCEPT) {
                    // Injected overload: shed the connection before it
                    // reaches a worker. The client sees a closed socket,
                    // exactly like a listen-backlog drop.
                    state.metrics.accept_shed.inc();
                    drop(conn);
                    continue;
                }
                let _ = conn.set_nodelay(true);
                if !pool.execute(conn) {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                state.metrics.accept_shed.inc();
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    drop(pool);
}

/// How long a worker waits in one `read` before re-checking the stop
/// flag. Bounds graceful-shutdown latency for idle keep-alive
/// connections.
const READ_SLICE: Duration = Duration::from_millis(250);

/// Idle keep-alive connections are closed after this long.
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(30);

/// One connection's request loop: incremental parse, route, respond,
/// keep-alive until close. Runs on a pool worker; never panics, never
/// propagates.
fn serve_connection(state: &AppState, mut conn: TcpStream, plan: &FaultPlan, stop: &AtomicBool) {
    let mut injector = plan.injector();
    let _ = conn.set_read_timeout(Some(READ_SLICE));
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut scratch = [0u8; 16 * 1024];
    let mut idle = Duration::ZERO;
    loop {
        // Drain every complete pipelined request already buffered.
        loop {
            match http::parse_request(&buf) {
                Parse::Complete { request, consumed } => {
                    buf.drain(..consumed);
                    if injector.should_fire(failpoints::SERVE_REQUEST_PARSE) {
                        // Injected wire corruption: treat the request as
                        // torn — 400 and close, like a real parse failure.
                        state.metrics.parse_errors.inc();
                        let resp = HttpResponse::json(
                            400,
                            json::error_body("request torn (injected parse fault)"),
                        );
                        let _ = conn.write_all(&http::encode_response(&resp, false));
                        return;
                    }
                    let keep = request.keep_alive;
                    let resp = router::handle(state, &request);
                    if conn.write_all(&http::encode_response(&resp, keep)).is_err() {
                        return;
                    }
                    if !keep {
                        return;
                    }
                }
                Parse::Partial => break,
                Parse::Invalid(msg) => {
                    state.metrics.parse_errors.inc();
                    let resp = HttpResponse::json(400, json::error_body(msg));
                    let _ = conn.write_all(&http::encode_response(&resp, false));
                    return;
                }
            }
        }
        match conn.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => {
                idle = Duration::ZERO;
                buf.extend_from_slice(scratch.get(..n).unwrap_or_default());
            }
            // A read timeout surfaces as WouldBlock or TimedOut depending
            // on the platform; either way it is the stop-flag checkpoint.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                idle += READ_SLICE;
                // ordering: stop flag only — no data rides on it; SeqCst
                // matches the store side.
                if stop.load(Ordering::SeqCst) || idle >= KEEP_ALIVE_IDLE {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Tails the access log: new bytes go through the CLF parser into the
/// live stream; checkpoints fire on the byte threshold and when the log
/// goes idle while unsnapshotted bytes are pending.
fn follower_loop(
    state: Arc<AppState>,
    mut follower: LogFollower,
    interval: Duration,
    checkpoint_bytes: u64,
    stop: Arc<AtomicBool>,
) {
    let mut dirty = 0u64;
    // ordering: stop flag only — no data rides on it; SeqCst matches the
    // store side.
    while !stop.load(Ordering::SeqCst) {
        match follower.poll() {
            Ok(Some(chunk)) => {
                if let Ok(mut stream) = state.stream.write() {
                    let _ = stream.push_clf(&chunk);
                } else {
                    return;
                }
                // ordering: Release pairs with checkpoint_now's Acquire
                // load — the cursor publishes only after the chunk's
                // lines are applied under the stream write lock above.
                state.log_offset.store(follower.offset(), Ordering::Release);
                state.metrics.follow_chunks.inc();
                state.metrics.follow_bytes.add(chunk.len() as u64);
                dirty += chunk.len() as u64;
                if dirty >= checkpoint_bytes && router::checkpoint_now(&state).is_ok() {
                    dirty = 0;
                }
            }
            Ok(None) => {
                // Idle. Snapshot pending bytes so a crash right now loses
                // nothing, then wait out the poll interval.
                if dirty > 0 && router::checkpoint_now(&state).is_ok() {
                    dirty = 0;
                }
                std::thread::sleep(interval);
            }
            Err(_) => std::thread::sleep(interval),
        }
    }
}
