//! A fixed thread pool for connection handling.
//!
//! The workspace's zero-dependency discipline rules out an async runtime,
//! and the query API is all sub-millisecond in-memory work, so the classic
//! shape fits: N worker threads pull accepted connections off one
//! `mpsc` channel behind a mutex. Dropping the pool closes the channel and
//! joins every worker — the daemon's graceful-shutdown path.

use std::net::TcpStream;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// The connection handler workers run; returns when the connection is
/// done (closed or errored — workers never propagate).
pub(crate) type Handler = Arc<dyn Fn(TcpStream) + Send + Sync>;

pub(crate) struct ThreadPool {
    sender: Option<Sender<TcpStream>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers running `handler` on dispatched
    /// connections.
    pub(crate) fn new(threads: usize, handler: Handler) -> ThreadPool {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver: Arc<Mutex<Receiver<TcpStream>>> = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("netclustd-http-{i}"))
                    .spawn(move || loop {
                        let conn = {
                            let Ok(guard) = receiver.lock() else { return };
                            guard.recv()
                        };
                        match conn {
                            Ok(stream) => handler(stream),
                            // Channel closed: the pool is shutting down.
                            Err(_) => return,
                        }
                    })
                    .expect("spawning an OS thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Dispatches one connection; `false` if the pool is shutting down.
    pub(crate) fn execute(&self, stream: TcpStream) -> bool {
        match &self.sender {
            Some(tx) => tx.send(stream).is_ok(),
            None => false,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so idle workers wake with RecvError; workers
        // mid-connection finish their request loop first.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
