//! `netclustd` — the long-running network-aware clustering daemon.
//!
//! Boots a [`netclust_serve::Daemon`] from command-line flags, then parks
//! until SIGTERM/SIGINT flips the shutdown flag, at which point it winds
//! the service down gracefully: stop accepting, drain in-flight requests,
//! join the log follower, write the final checkpoint.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use netclust_serve::{Daemon, ServeConfig};

/// Flipped by the signal handler; the main thread polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const USAGE: &str = "\
netclustd: network-aware clustering daemon

usage: netclustd --table FILE[,FILE..] [options]

serving table (at least one required):
  --table FILE[,..]       BGP routing-table files
  --dump FILE[,..]        network-dump table files

service:
  --listen ADDR           host:port to bind (default 127.0.0.1:0)
  --port-file FILE        write the bound address here once listening
  --http-threads N        HTTP worker pool size (default 4)
  --top N                 default n for /v1/clusters/top (default 10)

log tailing:
  --log FILE              access log (CLF) to tail
  --poll-ms MS            follower poll interval (default 200)

persistence:
  --state-dir DIR         snapshot + journal directory
  --resume                recover from --state-dir instead of starting fresh
  --checkpoint-bytes N    ingested bytes between checkpoints (default 4 MiB)
  --fsync POLICY          every-batch | every=N | os (default every-batch)

run knobs:
  --threads N             ingest thread cap
  --deterministic         byte-stable /metrics and JSON output
  --max-error-rate R      malformed-line budget for ingest

fault injection (tests):
  --fault POINT=PROB      arm a registered failpoint
  --fault-seed N          deterministic injection seed (default 1)
";

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store — async-signal-safe by construction.
        // ordering: single shutdown flag, no data published through it;
        // SeqCst keeps the signal handshake trivially correct.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub(super) fn install() {
        // SAFETY: `signal` is the libc function std already links; the
        // handler is an `extern "C" fn` that performs a single atomic
        // store and touches nothing else.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// No signal wiring off unix; ctrl-c kills the process directly.
    pub(super) fn install() {}
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let config = match ServeConfig::from_args(&args) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("netclustd: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    sig::install();

    let daemon = match Daemon::start(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("netclustd: startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("netclustd: listening on {}", daemon.local_addr());

    // ordering: shutdown flag only — no data rides on it; SeqCst matches
    // the signal-handler store.
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("netclustd: shutting down");
    match daemon.shutdown() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("netclustd: shutdown error: {e}");
            ExitCode::FAILURE
        }
    }
}
