//! `netclustd` — the long-running clustering service.
//!
//! This crate turns the one-shot clustering pipeline into a daemon, the
//! shape the paper's own self-correction and BGP-dynamics sections argue
//! for: clustering as a *continuously running oracle* rather than an
//! offline report. The daemon
//!
//! * tails a rotating access log ([`netclust_weblog::follow`]) and feeds
//!   complete lines through the byte-slice CLF parser into a live
//!   [`netclust_core::StreamingClustering`],
//! * keeps that view durable through the PR 8 state store (checksummed
//!   snapshots + write-ahead journal, `--state-dir` / `--resume`),
//! * answers the unified [`netclust_core::ClusterQuery`] surface over a
//!   hand-rolled HTTP/1.1 + JSON API on `std::net` with a fixed thread
//!   pool — no async runtime, no dependencies, matching the workspace's
//!   vendored-shim discipline.
//!
//! Endpoints: `GET /v1/cluster?ip=`, `GET /v1/clusters/top?n=`,
//! `GET /v1/verdict?ip=`, `GET /metrics`, `GET /healthz`, and
//! `POST /v1/reload` (full-table swap through the validated
//! `try_swap` gate, or incremental `announce|withdraw|replace` deltas
//! through `apply_deltas`).
//!
//! Module map: [`http`] parses and frames HTTP/1.1; [`router`] is the
//! hot-path dispatcher from parsed request to response; [`json`] renders
//! the deterministic response bodies the router and reload path share;
//! [`config`] is the [`ServeConfig`] builder the CLI flags parse into;
//! [`daemon`] owns the listener, pool, follower, and persistence wiring.

#![warn(missing_docs)]

pub mod config;
pub mod daemon;
pub mod http;
pub mod json;
mod pool;
pub mod router;

pub use config::ServeConfig;
pub use daemon::{Daemon, ServeError};
pub use router::AppState;
