//! Request routing: parsed [`HttpRequest`] in, [`HttpResponse`] out.
//!
//! This is the daemon's hot path — every query a client sends flows
//! through [`handle`] — so it follows the workspace's panic-free
//! contract: no `unwrap`/`expect`, no scalar indexing, every lock
//! acquisition and parse failure mapped to a typed HTTP error. A poisoned
//! lock answers `500`, a malformed parameter answers `400`, and nothing
//! can take the serving loop down.
//!
//! The query endpoints are thin adapters over the unified
//! [`ClusterQuery`] trait — the same surface the one-shot CLI renders its
//! report from — so the daemon and the CLI cannot drift apart on
//! semantics.

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use netclust_core::query::top_to_json;
use netclust_core::{ClusterQuery, JournalBatch, StateStore, StreamingClustering, VerdictPolicy};
use netclust_obs::{Counter, ErrorCounts, Obs};
use netclust_prefix::Ipv4Net;
use netclust_rtable::{MergedTable, RoutingTable, TableDelta, TableKind};

use crate::http::{HttpRequest, HttpResponse, Method};
use crate::json;

/// Pre-resolved `serve.*` observability handles (inert when the daemon's
/// [`Obs`] is disabled).
#[derive(Debug, Clone, Default)]
pub struct ServeObs {
    /// Requests routed.
    pub requests: Counter,
    /// Responses with status >= 400.
    pub errors: Counter,
    /// Connections shed by the [`serve.accept`
    /// failpoint](netclust_core::failpoints::SERVE_ACCEPT) or accept
    /// errors.
    pub accept_shed: Counter,
    /// Requests torn by the [`serve.request.parse`
    /// failpoint](netclust_core::failpoints::SERVE_REQUEST_PARSE) or
    /// malformed wire bytes.
    pub parse_errors: Counter,
    /// Full-table reload swaps attempted.
    pub reload_swaps: Counter,
    /// Delta-batch reloads attempted.
    pub reload_deltas: Counter,
    /// Log chunks ingested by the follower.
    pub follow_chunks: Counter,
    /// Log bytes ingested by the follower.
    pub follow_bytes: Counter,
    /// Checkpoints written.
    pub checkpoints: Counter,
}

impl ServeObs {
    /// Resolves every handle against `obs`.
    pub fn resolve(obs: &Obs) -> Self {
        ServeObs {
            requests: obs.counter("serve.http.requests"),
            errors: obs.counter("serve.http.errors"),
            accept_shed: obs.counter("serve.accept.shed"),
            parse_errors: obs.counter("serve.request.parse_errors"),
            reload_swaps: obs.counter("serve.reload.swaps"),
            reload_deltas: obs.counter("serve.reload.deltas"),
            follow_chunks: obs.counter("serve.follow.chunks"),
            follow_bytes: obs.counter("serve.follow.bytes"),
            checkpoints: obs.counter("serve.checkpoints"),
        }
    }
}

/// Everything the HTTP workers, the log follower, and the reload path
/// share. One instance per daemon, behind an `Arc`.
pub struct AppState {
    /// The live clustering view. Queries take the read half; the
    /// follower, reloads, and restores take the write half.
    pub stream: RwLock<StreamingClustering>,
    /// Crash-safe persistence, when `--state-dir` is set. The mutex
    /// serializes journal appends and checkpoints between the follower
    /// and the reload path.
    pub store: Mutex<Option<StateStore>>,
    /// The daemon-wide observability registry (`/metrics` snapshots it).
    pub obs: Obs,
    /// Pre-resolved `serve.*` handles.
    pub metrics: ServeObs,
    /// Whether `/metrics` snapshots deterministically (no wall-clock
    /// spans), for byte-stable output under `--deterministic`.
    pub deterministic: bool,
    /// Default `n` for `/v1/clusters/top`.
    pub top_default: usize,
    /// Thresholds for `/v1/verdict`.
    pub verdict: VerdictPolicy,
    /// Monotonic index for journaled reload batches.
    pub feed_index: AtomicU64,
    /// Byte offset of the last complete log line ingested — the
    /// checkpoint cursor ([`netclust_core::StreamState::feed_pos`]).
    pub log_offset: AtomicU64,
}

/// Routes one request. Infallible: every failure mode is an HTTP error
/// response, never a panic.
pub fn handle(state: &AppState, req: &HttpRequest) -> HttpResponse {
    state.metrics.requests.inc();
    let resp = route(state, req);
    if resp.status >= 400 {
        state.metrics.errors.inc();
    }
    resp
}

const KNOWN_PATHS: &[&str] = &[
    "/healthz",
    "/metrics",
    "/v1/cluster",
    "/v1/clusters/top",
    "/v1/verdict",
    "/v1/reload",
];

fn route(state: &AppState, req: &HttpRequest) -> HttpResponse {
    match (req.method, req.path.as_str()) {
        (Method::Get, "/healthz") => health(state),
        (Method::Get, "/metrics") => metrics(state),
        (Method::Get, "/v1/cluster") => cluster(state, req),
        (Method::Get, "/v1/clusters/top") => top(state, req),
        (Method::Get, "/v1/verdict") => verdict(state, req),
        (Method::Post, "/v1/reload") => reload(state, req),
        (_, path) if KNOWN_PATHS.contains(&path) => HttpResponse::json(
            405,
            json::error_body("method not allowed for this endpoint"),
        ),
        _ => HttpResponse::json(404, json::error_body("no such endpoint")),
    }
}

/// Read-locks the stream or produces the 500 every endpoint shares.
macro_rules! read_stream {
    ($state:expr) => {
        match $state.stream.read() {
            Ok(guard) => guard,
            Err(_) => return HttpResponse::json(500, json::error_body("state lock poisoned")),
        }
    };
}

fn health(state: &AppState) -> HttpResponse {
    let stream = read_stream!(state);
    HttpResponse::json(
        200,
        json::health_body(
            stream.table_version(),
            stream.total_requests(),
            stream.len() as u64,
        ),
    )
}

fn metrics(state: &AppState) -> HttpResponse {
    HttpResponse::json(200, state.obs.snapshot(state.deterministic).to_json())
}

fn ip_param(req: &HttpRequest) -> Result<Ipv4Addr, HttpResponse> {
    let Some(raw) = req.query_param("ip") else {
        return Err(HttpResponse::json(
            400,
            json::error_body("query parameter ip is required"),
        ));
    };
    raw.parse()
        .map_err(|_| HttpResponse::json(400, json::error_body("ip is not a valid IPv4 address")))
}

fn cluster(state: &AppState, req: &HttpRequest) -> HttpResponse {
    let ip = match ip_param(req) {
        Ok(ip) => ip,
        Err(resp) => return resp,
    };
    let stream = read_stream!(state);
    HttpResponse::json(200, stream.lookup(ip).to_json())
}

fn verdict(state: &AppState, req: &HttpRequest) -> HttpResponse {
    let ip = match ip_param(req) {
        Ok(ip) => ip,
        Err(resp) => return resp,
    };
    let stream = read_stream!(state);
    HttpResponse::json(200, stream.verdict(ip, &state.verdict).to_json())
}

fn top(state: &AppState, req: &HttpRequest) -> HttpResponse {
    let n = match req.query_param("n") {
        None => state.top_default,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n.min(10_000),
            Err(_) => {
                return HttpResponse::json(400, json::error_body("n is not a non-negative integer"))
            }
        },
    };
    let stream = read_stream!(state);
    HttpResponse::json(200, top_to_json(&stream.top(n)))
}

/// `POST /v1/reload`: `?table=a,b&dump=c` re-reads those files and drives
/// the validated [`StreamingClustering::try_swap`] gate; otherwise the
/// body is an `announce|withdraw|replace PREFIX` feed driven through
/// [`StreamingClustering::apply_deltas`]. Either way the old generation
/// keeps serving on rejection, and concurrent queries never block on the
/// table build — only on the final publish.
fn reload(state: &AppState, req: &HttpRequest) -> HttpResponse {
    let table_param = req.query_param("table");
    let dump_param = req.query_param("dump");
    if table_param.is_some() || dump_param.is_some() {
        state.metrics.reload_swaps.inc();
        reload_swap(state, table_param, dump_param)
    } else if !req.body.is_empty() {
        state.metrics.reload_deltas.inc();
        reload_deltas(state, &req.body)
    } else {
        HttpResponse::json(
            400,
            json::error_body("reload wants ?table=/?dump= paths or a delta body"),
        )
    }
}

fn reload_swap(
    state: &AppState,
    table_param: Option<&str>,
    dump_param: Option<&str>,
) -> HttpResponse {
    let mut tables = Vec::new();
    let mut noise = ErrorCounts::default();
    for (param, kind) in [
        (table_param, TableKind::Bgp),
        (dump_param, TableKind::NetworkDump),
    ] {
        let Some(list) = param else { continue };
        for path in list.split(',').filter(|p| !p.is_empty()) {
            match load_table(path, kind) {
                Ok((table, counts)) => {
                    noise.merge(counts);
                    tables.push(table);
                }
                Err(msg) => return HttpResponse::json(400, json::error_body(&msg)),
            }
        }
    }
    if tables.is_empty() {
        return HttpResponse::json(400, json::error_body("no readable tables in reload"));
    }
    let merged = MergedTable::merge(tables.iter());

    let mut stream = match state.stream.write() {
        Ok(guard) => guard,
        Err(_) => return HttpResponse::json(500, json::error_body("state lock poisoned")),
    };
    let report = stream.try_swap(merged, noise);
    drop(stream);
    if report.accepted {
        // A swap changes the serving table wholesale; snapshot now so a
        // crash cannot resurrect the old table.
        if let Err(msg) = checkpoint_now(state) {
            return HttpResponse::json(500, json::error_body(&msg));
        }
    }
    HttpResponse::json(
        if report.accepted { 200 } else { 409 },
        json::swap_report_body(&report),
    )
}

fn reload_deltas(state: &AppState, body: &[u8]) -> HttpResponse {
    let deltas = match parse_delta_lines(body) {
        Ok(deltas) => deltas,
        Err(msg) => return HttpResponse::json(400, json::error_body(&msg)),
    };
    if deltas.is_empty() {
        return HttpResponse::json(400, json::error_body("delta body held no updates"));
    }

    // WAL ordering: the batch is journaled before it is applied, so a
    // crash between the two replays it on recovery instead of losing it.
    let mut store_guard = match state.store.lock() {
        Ok(guard) => guard,
        Err(_) => return HttpResponse::json(500, json::error_body("store lock poisoned")),
    };
    if let Some(store) = store_guard.as_mut() {
        let batch = JournalBatch {
            // ordering: monotone batch counter; the store mutex held
            // across append+apply already orders journal writes.
            feed_index: state.feed_index.fetch_add(1, Ordering::Relaxed),
            session_reset: false,
            deltas: deltas.clone(),
        };
        if let Err(e) = store.append_batch(&batch) {
            return HttpResponse::json(
                503,
                json::error_body(&format!("journal append failed: {e}")),
            );
        }
    }
    let mut stream = match state.stream.write() {
        Ok(guard) => guard,
        Err(_) => return HttpResponse::json(500, json::error_body("state lock poisoned")),
    };
    let report = stream.apply_deltas(&deltas);
    drop(stream);
    drop(store_guard);
    HttpResponse::json(
        if report.accepted { 200 } else { 409 },
        json::patch_report_body(&report),
    )
}

/// Parses one `announce|withdraw|replace PREFIX` feed (blank lines and
/// `#` comments ignored) — the same wire grammar as the CLI's
/// `--bgp-feed` files.
// analyze:allow(typed-errors) parse failures flow verbatim into the 400 JSON error body; no caller matches on them.
pub fn parse_delta_lines(body: &[u8]) -> Result<Vec<TableDelta>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "delta body is not UTF-8".to_string())?;
    let mut deltas = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let verb = parts.next().unwrap_or_default();
        let net: Ipv4Net = match parts.next().map(str::parse) {
            Some(Ok(net)) => net,
            _ => return Err(format!("line {}: bad prefix in {line:?}", lineno + 1)),
        };
        deltas.push(match verb {
            "announce" => TableDelta::announce(net),
            "withdraw" => TableDelta::withdraw(net),
            "replace" => TableDelta::replace(net),
            other => {
                return Err(format!(
                    "line {}: unknown update {other:?} (announce|withdraw|replace)",
                    lineno + 1
                ))
            }
        });
    }
    Ok(deltas)
}

/// Reads and parses one routing-table file, reporting parse noise as the
/// [`ErrorCounts`] the swap gate budgets against.
pub(crate) fn load_table(
    path: &str,
    kind: TableKind,
) -> Result<(RoutingTable, ErrorCounts), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read table {path}: {e}"))?;
    let lines = text.lines().count() as u64;
    let (table, bad) = RoutingTable::parse(path, "file", kind, &text);
    Ok((table, ErrorCounts::new(lines, bad as u64)))
}

/// Snapshots the current stream state (with the follower's committed log
/// offset as the resume cursor) into the state store, if one is
/// configured. Called on the byte threshold, on idle-while-dirty, after
/// accepted swaps, and at shutdown.
pub(crate) fn checkpoint_now(state: &AppState) -> Result<(), String> {
    let mut store_guard = state
        .store
        .lock()
        .map_err(|_| "store lock poisoned".to_string())?;
    let Some(store) = store_guard.as_mut() else {
        return Ok(());
    };
    let stream = state
        .stream
        .read()
        .map_err(|_| "state lock poisoned".to_string())?;
    let mut snapshot = stream.export_state();
    drop(stream);
    // ordering: Acquire pairs with the follower's Release store, so the
    // resume cursor never runs ahead of the bytes actually applied.
    snapshot.feed_pos = state.log_offset.load(Ordering::Acquire);
    store
        .checkpoint(&snapshot)
        .map_err(|e| format!("checkpoint failed: {e}"))?;
    state.metrics.checkpoints.inc();
    Ok(())
}
