//! Hand-rolled HTTP/1.1 request parsing and response framing.
//!
//! Deliberately minimal: the daemon speaks exactly the subset its API
//! needs — `GET`/`POST`, `Content-Length` bodies, keep-alive — and rejects
//! everything else with a clean `400`/`405` instead of guessing. The
//! parser is incremental over a growing byte buffer so a connection loop
//! can feed it torn reads and pipelined batches alike: it either consumes
//! one complete request (returning how many bytes it ate), asks for more
//! bytes, or declares the prefix unsalvageable.
//!
//! Nothing here panics: every malformed input is a typed
//! [`Parse::Invalid`], all slicing is range-based, and header sizes are
//! bounded ([`MAX_HEAD_BYTES`], [`MAX_BODY_BYTES`]) so a hostile peer
//! cannot balloon memory.

/// Upper bound on the request head (request line + headers + CRLFCRLF).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on a request body (`/v1/reload` delta feeds are the only
/// bodies the API accepts).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Request methods the daemon distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET` — every query endpoint.
    Get,
    /// `POST` — `/v1/reload`.
    Post,
    /// Anything else; the router answers `405`.
    Other,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The method.
    pub method: Method,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Decoded `key=value` query parameters, in wire order.
    pub query: Vec<(String, String)>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default yes, HTTP/1.0 default no, `Connection` header
    /// overrides either way).
    pub keep_alive: bool,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of trying to parse one request off the front of a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// One complete request; `consumed` bytes belong to it and should be
    /// drained before parsing the next pipelined request.
    Complete {
        /// The parsed request.
        request: HttpRequest,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// The buffer holds a valid-so-far prefix; read more bytes.
    Partial,
    /// The prefix can never become a valid request; answer `400` and
    /// close.
    Invalid(&'static str),
}

/// Incremental request parser; see [`Parse`].
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some((head_len, body_start)) = find_head_end(buf) else {
        return if buf.len() > MAX_HEAD_BYTES {
            Parse::Invalid("request head exceeds 8 KiB")
        } else {
            Parse::Partial
        };
    };
    if head_len > MAX_HEAD_BYTES {
        return Parse::Invalid("request head exceeds 8 KiB");
    }
    let head = buf.get(..head_len).unwrap_or_default();
    let mut lines = head.split(|&b| b == b'\n').map(strip_cr);
    let Some(request_line) = lines.next() else {
        return Parse::Invalid("empty request head");
    };
    let Ok(request_line) = std::str::from_utf8(request_line) else {
        return Parse::Invalid("request line is not UTF-8");
    };
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parse::Invalid("malformed request line");
    };
    if parts.next().is_some() {
        return Parse::Invalid("malformed request line");
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Parse::Invalid("unsupported HTTP version"),
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        _ => Method::Other,
    };

    let mut content_length = 0usize;
    let mut keep_alive = http11;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Ok(line) = std::str::from_utf8(line) else {
            return Parse::Invalid("header is not UTF-8");
        };
        let Some((name, value)) = line.split_once(':') else {
            return Parse::Invalid("header without a colon");
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let Ok(n) = value.parse::<usize>() else {
                return Parse::Invalid("unparsable content-length");
            };
            content_length = n;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Chunked bodies are outside the daemon's subset.
            return Parse::Invalid("transfer-encoding is not supported");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Parse::Invalid("body exceeds 1 MiB");
    }

    let body_end = body_start + content_length;
    if buf.len() < body_end {
        return Parse::Partial;
    }
    let body = buf.get(body_start..body_end).unwrap_or_default().to_vec();

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = parse_query(query);

    Parse::Complete {
        request: HttpRequest {
            method,
            path: percent_decode(path),
            query,
            keep_alive,
            body,
        },
        consumed: body_end,
    }
}

/// Locates the head terminator (a blank line: `\r\n\r\n`, `\n\n`, or a
/// mixed-ending equivalent). Returns `(head_len, body_start)`: the head
/// excluding its final line break, and the index just past the
/// terminator.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    while let Some(&b) = buf.get(i) {
        if b == b'\n' {
            // The head's final newline is at `i`; a blank line follows if
            // the next line break comes immediately.
            let after = match buf.get(i + 1) {
                Some(b'\n') => Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => Some(i + 3),
                _ => None,
            };
            if let Some(body_start) = after {
                let head_len = if i > 0 && buf.get(i - 1) == Some(&b'\r') {
                    i - 1
                } else {
                    i
                };
                return Some((head_len, body_start));
            }
        }
        i += 1;
    }
    None
}

fn strip_cr(line: &[u8]) -> &[u8] {
    match line.split_last() {
        Some((b'\r', rest)) => rest,
        _ => line,
    }
}

fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Decodes `%xx` escapes and `+`-as-space; malformed escapes pass through
/// literally (the router's own validation rejects them downstream).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let pair = bytes.get(i + 1).zip(bytes.get(i + 2));
                match pair.and_then(|(&hi, &lo)| Some((hex(hi)?, hex(lo)?))) {
                    Some((hi, lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// A response the router hands back; [`encode_response`] frames it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }
}

/// Reason phrase for the status codes the daemon emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Frames a response as HTTP/1.1 wire bytes with an explicit
/// `Content-Length` and `Connection` header.
pub fn encode_response(resp: &HttpResponse, keep_alive: bool) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut out = Vec::with_capacity(head.len() + resp.body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(&resp.body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (HttpRequest, usize) {
        match parse_request(buf) {
            Parse::Complete { request, consumed } => (request, consumed),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_simple_get() {
        let wire = b"GET /v1/cluster?ip=10.2.3.4 HTTP/1.1\r\nHost: x\r\n\r\n";
        let (req, consumed) = complete(wire);
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/v1/cluster");
        assert_eq!(req.query_param("ip"), Some("10.2.3.4"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
        assert_eq!(consumed, wire.len());
    }

    #[test]
    fn torn_headers_ask_for_more_bytes() {
        let wire = b"GET /healthz HTTP/1.1\r\nHost: example\r\n\r\n";
        for cut in 1..wire.len() {
            let head = wire.get(..cut).expect("in range");
            assert_eq!(
                parse_request(head),
                Parse::Partial,
                "cut at {cut} must be Partial"
            );
        }
        assert!(matches!(parse_request(wire), Parse::Complete { .. }));
    }

    #[test]
    fn torn_body_asks_for_more_bytes() {
        let wire = b"POST /v1/reload HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345";
        assert_eq!(parse_request(wire), Parse::Partial);
        let mut full = wire.to_vec();
        full.extend_from_slice(b"67890");
        let (req, consumed) = complete(&full);
        assert_eq!(req.body, b"1234567890");
        assert_eq!(consumed, full.len());
    }

    #[test]
    fn oversized_head_is_rejected_not_buffered_forever() {
        let mut wire = b"GET /".to_vec();
        wire.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert!(matches!(parse_request(&wire), Parse::Invalid(_)));
    }

    #[test]
    fn oversized_body_is_rejected() {
        let wire = format!(
            "POST /v1/reload HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse_request(wire.as_bytes()), Parse::Invalid(_)));
    }

    #[test]
    fn pipelined_keep_alive_requests_parse_in_sequence() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        wire.extend_from_slice(b"GET /v1/clusters/top?n=3 HTTP/1.1\r\n\r\n");
        wire.extend_from_slice(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");

        let (r1, c1) = complete(&wire);
        assert_eq!(r1.path, "/healthz");
        assert!(r1.keep_alive);
        wire.drain(..c1);

        let (r2, c2) = complete(&wire);
        assert_eq!(r2.path, "/v1/clusters/top");
        assert_eq!(r2.query_param("n"), Some("3"));
        wire.drain(..c2);

        let (r3, c3) = complete(&wire);
        assert_eq!(r3.path, "/metrics");
        assert!(!r3.keep_alive, "Connection: close overrides 1.1 default");
        wire.drain(..c3);
        assert!(wire.is_empty());
    }

    #[test]
    fn bare_lf_heads_and_http10_defaults() {
        let (req, _) = complete(b"GET /healthz HTTP/1.0\nHost: x\n\n");
        assert_eq!(req.path, "/healthz");
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn malformed_inputs_are_invalid_not_panics() {
        for case in [
            &b"BOGUS\r\n\r\n"[..],
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"\xff\xfe\r\n\r\n",
        ] {
            assert!(
                matches!(parse_request(case), Parse::Invalid(_)),
                "case {case:?}"
            );
        }
    }

    #[test]
    fn percent_decoding_covers_the_api_characters() {
        assert_eq!(percent_decode("10.0.0.1"), "10.0.0.1");
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(
            percent_decode("bad%zz"),
            "bad%zz",
            "malformed passes through"
        );
    }

    #[test]
    fn response_framing_is_exact() {
        let resp = HttpResponse::json(200, "{\"ok\": true}".to_string());
        let wire = encode_response(&resp, true);
        let text = String::from_utf8(wire).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"), "{text}");
    }
}
