//! Property tests for log2 histogram bucketing.

use netclust_obs::{bucket_bounds, bucket_index, Obs, BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Bucketing round-trips: a value lands in a bucket whose inclusive
    /// bounds contain it, i.e. `bucket_lo(v) <= v < bucket_hi(v) + 1`.
    #[test]
    fn bucket_round_trips(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKETS);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v, "lo {lo} > v {v}");
        prop_assert!(v <= hi, "v {v} > hi {hi}");
        // The bounds themselves map back to the same bucket.
        prop_assert_eq!(bucket_index(lo), idx);
        prop_assert_eq!(bucket_index(hi), idx);
    }

    /// Buckets tile the u64 range with no gaps or overlaps: each bucket's
    /// `hi + 1` is the next bucket's `lo`.
    #[test]
    fn buckets_are_contiguous(idx in 0usize..64) {
        let (_, hi) = bucket_bounds(idx);
        let (next_lo, next_hi) = bucket_bounds(idx + 1);
        prop_assert_eq!(hi + 1, next_lo);
        prop_assert!(next_hi >= next_lo);
    }

    /// Recording through the public handle lands the observation in the
    /// snapshot bucket that `bucket_bounds` predicts.
    #[test]
    fn recorded_value_lands_in_predicted_bucket(v in any::<u64>()) {
        let obs = Obs::enabled();
        obs.histogram("h").record(v);
        let snap = obs.snapshot(true);
        let h = snap.histograms.get("h").expect("histogram present");
        prop_assert_eq!(h.count, 1);
        prop_assert_eq!(h.sum, v);
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert_eq!(h.buckets.as_slice(), &[(lo, hi, 1)]);
    }
}
