//! Monotonic clock access, quarantined to one module.
//!
//! All wall-time reads in the workspace's instrumentation flow through
//! [`now`]/[`Ticks`], and every clock-derived field is zeroed when a
//! snapshot is taken in deterministic mode (see `report.rs`), so the
//! nondeterminism never escapes into a deterministic artifact.
// analyze:allow-file(determinism) measurement-only monotonic clock; all derived fields are zeroed in deterministic snapshots.

use std::time::Instant;

/// An opaque monotonic timestamp.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Ticks(Instant);

/// Read the monotonic clock.
pub(crate) fn now() -> Ticks {
    Ticks(Instant::now())
}

impl Ticks {
    /// Nanoseconds elapsed since this timestamp was taken, saturating at
    /// `u64::MAX` (~584 years — unreachable in practice).
    pub(crate) fn elapsed_ns(self) -> u64 {
        let d = self.0.elapsed();
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }
}
