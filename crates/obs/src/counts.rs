//! The shared error-accounting shape.
//!
//! `IngestReport`, `SwapReport` and `ParseReport` all answer the same two
//! questions — how many records were seen, how many were malformed — but
//! before this type existed each carried its own ad-hoc fields and the CLI
//! printed three different shapes. `ErrorCounts` lives here (rather than in
//! `netclust-core`) because `netclust-rtable` is a dependency of core and
//! needs the type too; both crates re-export it from their roots.

/// Records seen vs records rejected, for any parsing/ingest stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ErrorCounts {
    /// Total records inspected (well-formed and malformed alike).
    pub records: u64,
    /// Records rejected as malformed/quarantined.
    pub malformed: u64,
}

impl ErrorCounts {
    /// A count with `records` seen and `malformed` rejected.
    pub fn new(records: u64, malformed: u64) -> Self {
        Self { records, malformed }
    }

    /// Records that parsed cleanly.
    pub fn accepted(&self) -> u64 {
        self.records.saturating_sub(self.malformed)
    }

    /// Fraction of records that were malformed; `0.0` when nothing was seen.
    pub fn ratio(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.malformed as f64 / self.records as f64
        }
    }

    /// True when no record was rejected.
    pub fn is_clean(&self) -> bool {
        self.malformed == 0
    }

    /// Fold another stage's counts into this one.
    pub fn merge(&mut self, other: ErrorCounts) {
        self.records = self.records.saturating_add(other.records);
        self.malformed = self.malformed.saturating_add(other.malformed);
    }
}

impl std::fmt::Display for ErrorCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} malformed / {} records ({:.4}%)",
            self.malformed,
            self.records,
            self.ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_empty() {
        assert_eq!(ErrorCounts::default().ratio(), 0.0);
        assert!(ErrorCounts::default().is_clean());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ErrorCounts::new(10, 1);
        a.merge(ErrorCounts::new(5, 2));
        assert_eq!(a, ErrorCounts::new(15, 3));
        assert_eq!(a.accepted(), 12);
        assert!(!a.is_clean());
        assert!((a.ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_is_stable() {
        let c = ErrorCounts::new(200, 1);
        assert_eq!(c.to_string(), "1 malformed / 200 records (0.5000%)");
    }
}
