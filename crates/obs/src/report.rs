//! Snapshots and their deterministic JSON rendering.

use std::collections::BTreeMap;

use crate::metric::bucket_bounds;
use crate::registry::Registry;

/// One histogram's state at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Non-empty buckets as `(lo, hi, count)` with inclusive bounds,
    /// ascending by `lo`.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// One span path's aggregated timing at snapshot time. All `_ns` fields are
/// clock-derived and zeroed in deterministic mode; `count` is kept (it is
/// data-derived and reproducible).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Times the span closed.
    pub count: u64,
    /// Total nanoseconds across closes.
    pub total_ns: u64,
    /// Fastest close.
    pub min_ns: u64,
    /// Slowest close.
    pub max_ns: u64,
}

/// A point-in-time copy of a registry, ordered for deterministic rendering.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span aggregates by nested path (`parent/child`).
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Whether clock-derived fields were zeroed at capture.
    pub deterministic: bool,
}

impl Snapshot {
    pub(crate) fn empty(deterministic: bool) -> Self {
        Self {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: BTreeMap::new(),
            deterministic,
        }
    }

    pub(crate) fn capture(reg: &Registry, deterministic: bool) -> Self {
        fn locked<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
            m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
        }
        let mut snap = Snapshot::empty(deterministic);
        for (name, cell) in locked(&reg.counters).iter() {
            snap.counters.insert(name.clone(), cell.sum());
        }
        for (name, cell) in locked(&reg.gauges).iter() {
            snap.gauges.insert(
                name.clone(),
                // ordering: telemetry snapshot; gauge staleness is fine.
                cell.load(std::sync::atomic::Ordering::Relaxed),
            );
        }
        for (name, cell) in locked(&reg.histograms).iter() {
            let (count, sum, raw) = cell.read();
            let buckets = raw
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| {
                    let (lo, hi) = bucket_bounds(i);
                    (lo, hi, *n)
                })
                .collect();
            snap.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count,
                    sum,
                    buckets,
                },
            );
        }
        for (path, stats) in locked(&reg.spans).iter() {
            let s = if deterministic {
                SpanSnapshot {
                    count: stats.count,
                    total_ns: 0,
                    min_ns: 0,
                    max_ns: 0,
                }
            } else {
                SpanSnapshot {
                    count: stats.count,
                    total_ns: stats.total_ns,
                    min_ns: stats.min_ns,
                    max_ns: stats.max_ns,
                }
            };
            snap.spans.insert(path.clone(), s);
        }
        snap
    }

    /// Render as JSON: sorted keys, two-space indent, no floats — byte-
    /// identical for equal snapshots, which is what the CI snapshot test
    /// compares.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"version\": 1,\n");
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));

        out.push_str("  \"counters\": {");
        render_scalar_map(&mut out, &self.counters);
        out.push_str("},\n");

        out.push_str("  \"gauges\": {");
        render_scalar_map(&mut out, &self.gauges);
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                escape(name),
                h.count,
                h.sum
            ));
            for (i, (lo, hi, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"lo\": {lo}, \"hi\": {hi}, \"n\": {n}}}"));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        out.push_str("  \"spans\": {");
        first = true;
        for (path, s) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                escape(path),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Monotone-prefix check: every counter/histogram/span in `self` exists
    /// in `later` with counts at least as large, and gauge keys carry over.
    /// A snapshot taken mid-run must be a prefix of the final report.
    /// Clock-derived span fields are ignored.
    pub fn is_prefix_of(&self, later: &Snapshot) -> bool {
        let counters_ok = self
            .counters
            .iter()
            .all(|(k, v)| later.counters.get(k).is_some_and(|lv| lv >= v));
        let gauges_ok = self.gauges.keys().all(|k| later.gauges.contains_key(k));
        let hists_ok = self.histograms.iter().all(|(k, h)| {
            later.histograms.get(k).is_some_and(|lh| {
                lh.count >= h.count
                    && lh.sum >= h.sum
                    && h.buckets.iter().all(|(lo, _, n)| {
                        lh.buckets
                            .iter()
                            .find(|(llo, _, _)| llo == lo)
                            .is_some_and(|(_, _, ln)| ln >= n)
                    })
            })
        });
        let spans_ok = self
            .spans
            .iter()
            .all(|(k, s)| later.spans.get(k).is_some_and(|ls| ls.count >= s.count));
        counters_ok && gauges_ok && hists_ok && spans_ok
    }
}

fn render_scalar_map(out: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (name, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {}", escape(name), v));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            // analyze:allow(cast-truncation) char -> u32 is a widening
            // conversion of a scalar value, never lossy.
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Obs;

    #[test]
    fn deterministic_json_is_stable() {
        let make = || {
            let obs = Obs::enabled();
            obs.counter("a.hits").add(3);
            obs.gauge("a.level").set(9);
            obs.histogram("a.sizes").record(5);
            obs.histogram("a.sizes").record(1000);
            {
                let _s = obs.span("work");
            }
            obs.snapshot(true).to_json()
        };
        let one = make();
        let two = make();
        assert_eq!(one, two);
        assert!(one.contains("\"a.hits\": 3"));
        assert!(one.contains("\"total_ns\": 0"));
    }

    #[test]
    fn non_deterministic_keeps_timings() {
        let obs = Obs::enabled();
        {
            let _s = obs.span("work");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = obs.snapshot(false);
        assert!(snap.spans.get("work").expect("span").total_ns > 0);
    }

    #[test]
    fn prefix_relation_holds_and_detects_violations() {
        let obs = Obs::enabled();
        obs.counter("c").add(1);
        obs.histogram("h").record(4);
        let early = obs.snapshot(true);
        obs.counter("c").add(1);
        obs.histogram("h").record(4);
        let late = obs.snapshot(true);
        assert!(early.is_prefix_of(&late));
        assert!(!late.is_prefix_of(&early));
    }

    #[test]
    fn empty_sections_render_compact() {
        let json = Obs::disabled().snapshot(true).to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": {}\n}"));
    }
}
