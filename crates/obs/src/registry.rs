//! The registry and the [`Obs`] handle.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metric::{Counter, CounterCell, Gauge, Histogram, HistogramCell};
use crate::report::Snapshot;
use crate::span::{SpanGuard, SpanStats};

/// Shared metric storage behind an enabled [`Obs`] handle.
///
/// Name→cell directories are mutex-guarded `BTreeMap`s, but the mutex is
/// only taken when a handle is *resolved* (construction time) and at
/// snapshot; counter/gauge/histogram updates go straight to the shared
/// atomics inside the resolved handle.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    pub(crate) gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub(crate) histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
    pub(crate) spans: Mutex<BTreeMap<String, SpanStats>>,
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A cloneable observability handle: either enabled (shared registry) or
/// disabled (all operations are no-ops).
///
/// Components take an `Obs` through their builders and resolve the handles
/// they need up front; a disabled handle resolves to inert `Counter` /
/// `Gauge` / `Histogram` values, so the instrumented code is identical in
/// both modes and costs one predictable branch when disabled.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<Registry>>,
}

impl Obs {
    /// A handle whose every operation is a no-op. This is the default a
    /// builder should start from.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A fresh, private registry (tests and embedded use). For the
    /// process-wide registry the CLI uses, see [`global`].
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolve (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(reg) = &self.inner else {
            return Counter::disabled();
        };
        let mut dir = locked(&reg.counters);
        let cell = dir
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(CounterCell::new()));
        Counter {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Resolve (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(reg) = &self.inner else {
            return Gauge::disabled();
        };
        let mut dir = locked(&reg.gauges);
        let cell = dir
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Resolve (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(reg) = &self.inner else {
            return Histogram::disabled();
        };
        let mut dir = locked(&reg.histograms);
        let cell = dir
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCell::new()));
        Histogram {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Open a timed span. While the returned guard is live, further spans
    /// opened on the same thread nest under it (`parent/child` paths).
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.inner {
            Some(reg) => SpanGuard::open(Arc::clone(reg), name),
            None => SpanGuard::disabled(),
        }
    }

    /// Capture a point-in-time snapshot. With `deterministic = true` every
    /// clock-derived field (span ns aggregates) is zeroed so the rendered
    /// report is byte-identical across runs on the same input.
    pub fn snapshot(&self, deterministic: bool) -> Snapshot {
        match &self.inner {
            Some(reg) => Snapshot::capture(reg, deterministic),
            None => Snapshot::empty(deterministic),
        }
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// The process-wide enabled registry (lazily created). Library code should
/// prefer taking an `Obs` through its builder; this exists so binaries can
/// wire every subsystem to one report with zero plumbing.
pub fn global() -> Obs {
    GLOBAL.get_or_init(Obs::enabled).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_cell() {
        let obs = Obs::enabled();
        let a = obs.counter("hits");
        let b = obs.counter("hits");
        a.add(2);
        b.add(3);
        assert_eq!(obs.counter("hits").get(), 5);
    }

    #[test]
    fn disabled_snapshot_is_empty() {
        let snap = Obs::disabled().snapshot(true);
        assert!(snap.counters.is_empty() && snap.spans.is_empty());
    }

    #[test]
    fn global_is_one_registry() {
        global().counter("obs.test.global").inc();
        assert_eq!(global().counter("obs.test.global").get(), 1);
    }
}
