//! `netclust-obs`: a dependency-free observability subsystem.
//!
//! The workspace's hot paths (fused ingest, compiled LPM lookups, hot table
//! swaps, self-correction) need stage-level visibility without paying for it
//! when nobody is looking. This crate provides:
//!
//! - [`Obs`]: a cloneable handle that is either **enabled** (backed by a
//!   shared registry) or **disabled** (every operation inlines
//!   to nothing — no allocation, no clock read, no atomic).
//! - [`Counter`]: monotonic counters over cache-line-padded sharded atomics,
//!   so concurrent chunk workers never contend on one line.
//! - [`Gauge`]: a single last-write-wins value (e.g. swap staleness).
//! - [`Histogram`]: log2-bucketed value histograms with exact bucket bounds.
//! - Spans: monotonic-clock timers with parent/child nesting — nested guards
//!   produce `parent/child` paths in the report.
//! - [`Snapshot`]: a point-in-time copy of everything, rendered as
//!   deterministic JSON (sorted keys). In *deterministic* mode all
//!   clock-derived fields are zeroed so the report is byte-identical across
//!   runs; pure counts (which are data-derived) are kept.
//! - [`ErrorCounts`]: the shared error-accounting shape used by
//!   `IngestReport` / `SwapReport` / `ParseReport` across the workspace.
//!
//! Handles are resolved by name from the registry once (a short mutex hold)
//! and then update lock-free; the only mutex on a measured path is at span
//! close, which callers hold at stage/chunk granularity, never per record.

#![warn(missing_docs)]

mod clock;
mod counts;
mod metric;
mod registry;
mod report;
mod span;

pub use counts::ErrorCounts;
pub use metric::{bucket_bounds, bucket_index, Counter, Gauge, Histogram, BUCKETS};
pub use registry::{global, Obs};
pub use report::{HistogramSnapshot, Snapshot, SpanSnapshot};
pub use span::SpanGuard;
