//! Monotonic-clock spans with parent/child nesting.
//!
//! `obs.span("ingest.run")` followed (while the guard is live, on the same
//! thread) by `obs.span("parse")` records under the path `ingest.run/parse`.
//! Nesting is tracked with a thread-local name stack; spans are intended for
//! stage/chunk granularity on a coordinating thread, never per record — the
//! registry mutex is taken once per span close.

use std::cell::RefCell;
use std::sync::Arc;

use crate::clock::{self, Ticks};
use crate::registry::Registry;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated statistics for one span path.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SpanStats {
    pub(crate) count: u64,
    pub(crate) total_ns: u64,
    pub(crate) min_ns: u64,
    pub(crate) max_ns: u64,
}

impl SpanStats {
    fn one(ns: u64) -> Self {
        Self {
            count: 1,
            total_ns: ns,
            min_ns: ns,
            max_ns: ns,
        }
    }

    fn fold(&mut self, ns: u64) {
        self.count = self.count.saturating_add(1);
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }
}

/// RAII timer: records elapsed time under its nested path on drop.
///
/// Returned by [`Obs::span`](crate::Obs::span). A guard from a disabled
/// handle never reads the clock or touches thread-local state.
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    registry: Arc<Registry>,
    path: String,
    start: Ticks,
}

impl SpanGuard {
    pub(crate) fn disabled() -> Self {
        Self { live: None }
    }

    pub(crate) fn open(registry: Arc<Registry>, name: &str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        Self {
            live: Some(LiveSpan {
                registry,
                path,
                start: clock::now(),
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let ns = live.start.elapsed_ns();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are scope-bound so closes are LIFO; tolerate a
            // mismatched stack (e.g. a guard moved across an unwind) by
            // popping only our own entry.
            if stack.last() == Some(&live.path) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|p| p == &live.path) {
                stack.remove(pos);
            }
        });
        let mut spans = live
            .registry
            .spans
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        spans
            .entry(live.path)
            .and_modify(|s: &mut SpanStats| s.fold(ns))
            .or_insert_with(|| SpanStats::one(ns));
    }
}

#[cfg(test)]
mod tests {
    use crate::Obs;

    #[test]
    fn nested_spans_build_paths() {
        let obs = Obs::enabled();
        {
            let _a = obs.span("outer");
            {
                let _b = obs.span("inner");
            }
            {
                let _c = obs.span("inner");
            }
        }
        let snap = obs.snapshot(false);
        let outer = snap.spans.get("outer").expect("outer span");
        let inner = snap.spans.get("outer/inner").expect("nested span");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert!(outer.total_ns >= inner.total_ns);
    }

    #[test]
    fn sibling_handles_share_one_registry() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        {
            let _a = obs.span("root");
            let _b = clone.span("leaf");
        }
        assert!(obs.snapshot(false).spans.contains_key("root/leaf"));
    }

    #[test]
    fn disabled_span_records_nothing() {
        let obs = Obs::disabled();
        {
            let _g = obs.span("ghost");
        }
        assert!(Obs::enabled().snapshot(false).spans.is_empty());
    }
}
