//! Counters, gauges and log2 histograms.
//!
//! Counter cells are sharded across cache-line-padded atomics: each thread
//! is assigned a shard round-robin on first use, so concurrent chunk workers
//! bump disjoint cache lines and the true total is only assembled at
//! snapshot time. Disabled handles carry `None` and every operation is a
//! predictable-branch no-op.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of counter shards. Matched to the workspace's typical worker
/// counts; more shards only cost snapshot-time summing.
const SHARDS: usize = 16;

/// Number of log2 histogram buckets: `{0}` plus one per power of two.
pub const BUCKETS: usize = 65;

#[repr(align(64))]
#[derive(Debug)]
struct PaddedU64(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn shard_index() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            // ordering: round-robin shard assignment; only uniqueness of
            // the ticket matters, nothing is published through it.
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
            v
        }
    })
}

#[derive(Debug)]
pub(crate) struct CounterCell {
    shards: [PaddedU64; SHARDS],
}

impl CounterCell {
    pub(crate) fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    fn add(&self, n: u64) {
        if let Some(shard) = self.shards.get(shard_index()) {
            // ordering: statistical counter; snapshot readers tolerate a
            // momentarily stale shard, losing no increment.
            shard.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn sum(&self) -> u64 {
        self.shards
            .iter()
            // ordering: observability snapshot; per-shard staleness is
            // acceptable and each shard value is independently atomic.
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }
}

/// A monotonic counter handle. Cheap to clone; `add` is lock-free.
///
/// A handle resolved from a disabled [`Obs`](crate::Obs) is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    pub(crate) cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// A permanently disabled counter (what `Obs::disabled()` hands out).
    pub fn disabled() -> Self {
        Self { cell: None }
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.add(n);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards (snapshot-consistency only under
    /// quiescence; fine for tests and reports).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.sum())
    }
}

/// A last-write-wins instantaneous value (e.g. swap staleness).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    pub(crate) cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A permanently disabled gauge.
    pub fn disabled() -> Self {
        Self { cell: None }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.cell {
            // analyze:allow(atomic-ordering-audit) gauge value is pure
            // telemetry read by snapshots; no reader derives a
            // happens-before edge from it, staleness is acceptable.
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        // ordering: telemetry read; staleness is acceptable.
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Bucket index for a value: bucket 0 holds exactly `{0}`, bucket `k >= 1`
/// holds `[2^(k-1), 2^k - 1]`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` bounds of bucket `index`; every recorded value `v`
/// satisfies `lo <= v && v <= hi` for its own bucket. Indices past the last
/// bucket clamp to it.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        return (0, 0);
    }
    // analyze:allow(cast-truncation) clamped to BUCKETS-1 = 64, fits u32.
    let i = index.min(BUCKETS - 1) as u32;
    let lo = 1u64 << (i - 1);
    let hi = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
    (lo, hi)
}

#[derive(Debug)]
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCell {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        // ordering: histogram cells are statistical; bucket, count and
        // sum need not be mutually consistent at read time.
        if let Some(b) = self.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        // ordering: same statistical semantics for count and sum.
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn read(&self) -> (u64, u64, Vec<u64>) {
        let buckets = self
            .buckets
            .iter()
            // ordering: snapshot read of statistical cells; see `record`.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        (
            // ordering: same snapshot semantics as the bucket reads.
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            buckets,
        )
    }
}

/// A log2-bucketed value histogram handle.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    pub(crate) cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A permanently disabled histogram.
    pub fn disabled() -> Self {
        Self { cell: None }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(7);
        assert_eq!(g.get(), 0);
        let h = Histogram::disabled();
        h.record(9);
        assert!(h.cell.is_none());
    }

    #[test]
    fn sharded_counter_sums_across_threads() {
        let cell = Arc::new(CounterCell::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Counter {
                cell: Some(Arc::clone(&cell)),
            };
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        assert_eq!(cell.sum(), 8000);
    }
}
