//! Offline shim for the subset of the `rand` crate API that netclust uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny, dependency-free implementation with the same module
//! layout and trait names: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (`seed_from_u64`), [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of upstream `StdRng`, so streams differ from upstream, but all
//! netclust results only require *internal* determinism (same seed → same
//! world), which this provides bit-for-bit on every platform.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of uniform `u64`s.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T` (integers over their full domain,
    /// `f64` in `[0, 1)`, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive integer ranges,
    /// half-open float ranges).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from their "standard" distribution.
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Types `gen_range` can produce, with their uniform-sampling logic.
/// Mirrors upstream rand's trait of the same name; the blanket
/// [`SampleRange`] impls below let `Range<T>: SampleRange<?T>` unify
/// structurally, so integer-literal inference works as upstream.
pub trait SampleUniform: PartialOrd + Copy {
    /// A uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// A uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that can be sampled uniformly, producing values of type `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Unbiased draw in `0..n` via multiply-shift with rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Lemire's method: rejection keeps the draw exactly uniform.
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n {
            return (m >> 64) as u64;
        }
        let threshold = n.wrapping_neg() % n;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-domain u64/i64 inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        let v = lo + f64::sample(rng) * (hi - lo);
        // Floating rounding may land exactly on `hi`; fold back inside.
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded through SplitMix64. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u8..=32);
            assert!(w <= 32);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_residues() {
        let mut rng = StdRng::seed_from_u64(2);
        let seen: std::collections::BTreeSet<u32> =
            (0..1000).map(|_| rng.gen_range(0u32..10)).collect();
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1u32, 2, 3, 4];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn float_full_unit_interval_spread() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut lo = 0;
        for _ in 0..10_000 {
            if rng.gen::<f64>() < 0.5 {
                lo += 1;
            }
        }
        assert!((4_500..5_500).contains(&lo), "lo = {lo}");
    }
}
