//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Every `&S` is a strategy when `S` is (lets `proptest!` take strategies
/// by reference).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
}

/// One boxed alternative of a [`Union`].
pub struct UnionArm<V>(Box<dyn Fn(&mut TestRng) -> V>);

/// Uniform choice among boxed strategies — what `prop_oneof!` builds.
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one strategy as an arm.
    pub fn arm<S>(strategy: S) -> UnionArm<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        UnionArm(Box::new(move |rng| strategy.generate(rng)))
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        (self.arms[idx].0)(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_map() {
        let mut rng = TestRng::for_test("strategy::ranges");
        let s = (0u32..10, 5u8..=6).prop_map(|(a, b)| a as u64 + b as u64);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((5..=15).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::for_test("strategy::union");
        let s = crate::prop_oneof![Just(1u32), 10u32..20, Just(99u32)];
        let seen: std::collections::BTreeSet<u32> =
            (0..300).map(|_| s.generate(&mut rng)).collect();
        assert!(seen.contains(&1) && seen.contains(&99));
        assert!(seen.iter().any(|v| (10..20).contains(v)));
    }

    #[test]
    fn any_generates_spread() {
        let mut rng = TestRng::for_test("strategy::any");
        let s = any::<u32>();
        let seen: std::collections::BTreeSet<u32> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(seen.len() > 60, "collisions should be rare");
    }
}
