//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A target size for a generated collection: exact or drawn from a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec`s of `element` values with `size` elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap`s. Up to `size` entries are drawn; duplicate
/// keys collapse, so the realized map may be smaller (as upstream).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

/// Strategy for `BTreeSet`s. Duplicates collapse as in [`btree_map`].
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_sizes_and_elements() {
        let mut rng = TestRng::for_test("collection::vec");
        let s = vec(0u32..5, 3..10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = vec(any::<u32>(), 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
    }

    #[test]
    fn maps_and_sets_respect_bounds() {
        let mut rng = TestRng::for_test("collection::maps");
        let m = btree_map(0u32..1000, any::<u8>(), 0..20);
        let s = btree_set(0u32..1000, 5..=9);
        for _ in 0..50 {
            assert!(m.generate(&mut rng).len() < 20);
            let set = s.generate(&mut rng);
            assert!(set.len() <= 9);
        }
    }
}
