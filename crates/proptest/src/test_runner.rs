//! Test configuration and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite fast while
        // still exercising the space. Override per-block with
        // `#![proptest_config(ProptestConfig::with_cases(n))]` or globally
        // with the PROPTEST_CASES environment variable.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// The RNG driving generation: deterministic per test name so failures
/// reproduce, overridable with the `PROPTEST_SEED` environment variable.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded from the test's fully-qualified name.
    pub fn for_test(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x9E37_79B9);
        // FNV-1a over the name, mixed with the base seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn per_test_determinism() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = TestRng::for_test("x::z");
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn config_with_cases() {
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
        assert!(ProptestConfig::default().cases > 0);
    }
}
