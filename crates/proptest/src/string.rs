//! Regex-lite string strategy: a `&str` pattern is itself a strategy
//! producing matching `String`s, mirroring proptest's string support.
//!
//! Supported syntax — the subset the netclust suites use, generated (not
//! matched): literal characters, `\x` escapes, character classes
//! `[a-z0-9_]` (ranges and singletons, no negation), and the quantifiers
//! `{n}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8 repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// One parsed atom of the pattern.
#[derive(Debug, Clone)]
enum Atom {
    /// A literal character.
    Literal(char),
    /// A character class: concrete alternatives, pre-expanded.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => {
                if let Some(p) = pending {
                    out.push(p);
                }
                break;
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("checked");
                let hi = chars.next().expect("unterminated class range");
                assert!(lo <= hi, "descending class range {lo}-{hi}");
                out.extend(lo..=hi);
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    out.push(p);
                }
            }
        }
    }
    assert!(!out.is_empty(), "empty character class");
    out
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut digits = String::new();
            let mut min: Option<u32> = None;
            loop {
                match chars.next().expect("unterminated quantifier") {
                    '}' => {
                        let n: u32 = digits.parse().expect("quantifier digits");
                        return match min {
                            Some(m) => (m, n),
                            None => (n, n),
                        };
                    }
                    ',' => {
                        min = Some(digits.parse().expect("quantifier digits"));
                        digits.clear();
                    }
                    d => digits.push(d),
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            other => Atom::Literal(other),
        };
        let (min, max) = parse_quantifier(&mut chars);
        assert!(min <= max, "quantifier {{m,n}} with m > n");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(self) {
            let reps = rng.gen_range(piece.min..=piece.max);
            for _ in 0..reps {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(choices) => out.push(choices[rng.gen_range(0..choices.len())]),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn hostname_label_pattern() {
        let mut rng = TestRng::for_test("string::label");
        let pattern = "[a-z][a-z0-9]{0,6}";
        for _ in 0..300 {
            let s = pattern.generate(&mut rng);
            assert!((1..=7).contains(&s.len()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn literals_escapes_and_quantifiers() {
        let mut rng = TestRng::for_test("string::misc");
        assert_eq!("abc".generate(&mut rng), "abc");
        assert_eq!("a\\.b".generate(&mut rng), "a.b");
        let s = "x{3}".generate(&mut rng);
        assert_eq!(s, "xxx");
        for _ in 0..50 {
            let v = "a?b+".generate(&mut rng);
            assert!(!v.is_empty() && v.ends_with('b'), "{v:?}");
        }
    }

    #[test]
    fn class_ranges_expand() {
        let mut rng = TestRng::for_test("string::class");
        let seen: std::collections::BTreeSet<String> =
            (0..400).map(|_| "[0-3]".generate(&mut rng)).collect();
        assert_eq!(
            seen,
            ["0", "1", "2", "3"].iter().map(|s| s.to_string()).collect()
        );
    }
}
