//! Offline shim for the subset of the `proptest` crate API that the
//! netclust test-suites use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a dependency-free property-testing harness with the same
//! surface: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! `prop_assert*`/`prop_assume!`, [`Strategy`] with `prop_map`,
//! [`prelude::any`], [`prop_oneof!`], [`strategy::Just`], numeric-range and
//! tuple strategies, a regex-lite string strategy, and
//! [`collection::{vec, btree_map, btree_set}`](collection).
//!
//! Differences from upstream: no shrinking (failures report the generated
//! inputs' debug representation where available, but are not minimized) and
//! `prop_assume!` skips the case rather than re-drawing.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_oneof, proptest};
}

/// Defines property-test functions: each `fn name(arg in strategy, ..)`
/// becomes a `#[test]` running the body over `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands one property function at a time (tt-muncher).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}:\n{}",
                        stringify!($name), __case + 1, __cfg.cases, __msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Chooses uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::arm($strat)),+
        ])
    };
}
