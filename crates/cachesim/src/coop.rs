//! Cooperative proxy clusters (§4.1.4, second placement approach).
//!
//! "Alternatively, we can place a proxy in front of each client cluster
//! and further group proxies into proxy clusters ... All proxies belonging
//! to the same AS and located geographically nearby will be grouped
//! together to form a proxy cluster" — proxies in a group *co-operate*:
//! a local miss is first looked up at the sibling proxies before going to
//! the origin. [`simulate_cooperative`] implements exactly that two-level
//! scheme; comparing against [`crate::simulate`] quantifies the benefit
//! of cooperation.

use std::collections::HashMap;

use netclust_core::Clustering;
use netclust_weblog::Log;

use crate::lru::{Entry, LruCache};
use crate::resource::ResourceModel;
use crate::sim::SimConfig;

/// Aggregate counters for a cooperative run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoopStats {
    /// Requests replayed through proxies.
    pub requests: u64,
    /// Served fresh from the client's own proxy.
    pub local_hits: u64,
    /// Local miss served by a sibling proxy in the same group.
    pub sibling_hits: u64,
    /// Fetched from the origin server.
    pub origin_fetches: u64,
    /// Bytes served locally / by siblings / by the origin.
    pub bytes_local: u64,
    /// Bytes served by sibling proxies.
    pub bytes_sibling: u64,
    /// Bytes fetched from the origin.
    pub bytes_origin: u64,
}

impl CoopStats {
    /// Requests kept off the origin (local + sibling) over all requests.
    pub fn total_hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.local_hits + self.sibling_hits) as f64 / self.requests as f64
        }
    }

    /// Requests served by the client's own proxy only.
    pub fn local_hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.local_hits as f64 / self.requests as f64
        }
    }
}

/// Replays `log` through per-cluster proxies that cooperate within
/// `groups`: `groups[i]` lists the cluster indices forming proxy cluster
/// `i` (e.g. the members of a `netclust_core::NetworkCluster`). Cluster
/// indices absent from every group act standalone. Freshness uses the
/// same TTL semantics as the main simulator, simplified to whole-object
/// staleness (a stale copy counts as a miss at that proxy).
pub fn simulate_cooperative(
    log: &Log,
    clustering: &Clustering,
    groups: &[Vec<usize>],
    config: &SimConfig,
) -> CoopStats {
    // cluster index -> group id (dense; standalone clusters get their own).
    let mut group_of: Vec<u32> = vec![u32::MAX; clustering.clusters.len()];
    for (gid, members) in groups.iter().enumerate() {
        for &m in members {
            // analyze:allow(cast-truncation) group ids are bounded by the
            // u32 cluster count.
            group_of[m] = gid as u32;
        }
    }
    // analyze:allow(cast-truncation) group count <= cluster count < 2^32.
    let mut next = groups.len() as u32;
    for g in group_of.iter_mut() {
        if *g == u32::MAX {
            *g = next;
            next += 1;
        }
    }
    // Siblings per group.
    let mut members_of: Vec<Vec<u32>> = vec![Vec::new(); next as usize];
    for (idx, &g) in group_of.iter().enumerate() {
        // analyze:allow(cast-truncation) cluster indices are u32 by design.
        members_of[g as usize].push(idx as u32);
    }

    // Routing and caches.
    let mut route: HashMap<u32, u32> = HashMap::new();
    for (idx, cluster) in clustering.clusters.iter().enumerate() {
        for client in &cluster.clients {
            // analyze:allow(cast-truncation) cluster indices are u32 by design.
            route.insert(u32::from(client.addr), idx as u32);
        }
    }
    let mut caches: Vec<LruCache> = (0..clustering.clusters.len())
        .map(|_| LruCache::new(config.cache_bytes))
        .collect();
    let model: ResourceModel = config.model;
    let ttl = config.ttl_s;

    let fresh = |entry: &Entry, url: u32, now: u32| -> bool {
        now.saturating_sub(entry.validated_at) <= ttl && model.version(url, now) == entry.version
    };

    let mut stats = CoopStats::default();
    for r in &log.requests {
        let Some(&local) = route.get(&r.client) else {
            continue; // unclustered clients bypass the proxy tier
        };
        stats.requests += 1;
        // 1. Local proxy.
        if let Some(entry) = caches[local as usize].get(r.url) {
            if fresh(&entry, r.url, r.time) {
                stats.local_hits += 1;
                stats.bytes_local += entry.size as u64;
                continue;
            }
            caches[local as usize].remove(r.url);
        }
        // 2. Sibling proxies in the same group.
        let gid = group_of[local as usize];
        let mut sibling_hit = false;
        for &sib in &members_of[gid as usize] {
            if sib == local {
                continue;
            }
            if let Some(entry) = caches[sib as usize].peek(r.url) {
                if fresh(&entry, r.url, r.time) {
                    // Served by the sibling; the local proxy keeps a copy
                    // (cooperative fill), freshly validated as of now.
                    stats.sibling_hits += 1;
                    stats.bytes_sibling += entry.size as u64;
                    caches[local as usize].insert(
                        r.url,
                        Entry {
                            validated_at: r.time,
                            ..entry
                        },
                    );
                    sibling_hit = true;
                    break;
                }
            }
        }
        if sibling_hit {
            continue;
        }
        // 3. Origin fetch.
        stats.origin_fetches += 1;
        stats.bytes_origin += r.bytes as u64;
        caches[local as usize].insert(
            r.url,
            Entry {
                size: r.bytes,
                cached_at: r.time,
                validated_at: r.time,
                version: model.version(r.url, r.time),
            },
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use netclust_netgen::{standard_merged, Universe, UniverseConfig};
    use netclust_weblog::{generate, LogSpec};

    fn setup() -> (Log, Clustering) {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut spec = LogSpec::tiny("coop", 31);
        spec.total_requests = 20_000;
        spec.num_urls = 400;
        let log = generate(&u, &spec);
        let merged = standard_merged(&u, 0);
        (log.clone(), Clustering::network_aware(&log, &merged))
    }

    fn config() -> SimConfig {
        SimConfig {
            cache_bytes: u64::MAX,
            ttl_s: 3_600,
            model: ResourceModel::immutable(),
            min_url_accesses: 0,
        }
    }

    #[test]
    fn cooperation_beats_standalone() {
        let (log, clustering) = setup();
        // One big group: all proxies cooperate.
        let all: Vec<usize> = (0..clustering.clusters.len()).collect();
        let coop = simulate_cooperative(&log, &clustering, &[all], &config());
        let solo = simulate_cooperative(&log, &clustering, &[], &config());
        assert!(
            coop.sibling_hits > 0,
            "cooperation should produce sibling hits"
        );
        assert_eq!(solo.sibling_hits, 0, "standalone proxies have no siblings");
        assert!(coop.total_hit_ratio() > solo.total_hit_ratio());
        assert!(coop.origin_fetches < solo.origin_fetches);
        // Local behaviour is not worsened by cooperation (fills only add).
        assert!(coop.local_hit_ratio() >= solo.local_hit_ratio() - 1e-9);
    }

    #[test]
    fn standalone_matches_main_simulator_on_immutable_resources() {
        let (log, clustering) = setup();
        // A TTL longer than the log means neither simulator ever sees a
        // stale copy, so "hit" semantics coincide exactly.
        let mut cfg = config();
        cfg.ttl_s = log.duration_s + 1;
        let coop = simulate_cooperative(&log, &clustering, &[], &cfg);
        let main = simulate(&log, &clustering, &cfg);
        let main_hits: u64 = main.proxies.iter().map(|p| p.hits).sum();
        assert_eq!(coop.local_hits, main_hits);
        assert_eq!(
            main.proxies.iter().map(|p| p.validated_hits).sum::<u64>(),
            0
        );
        assert_eq!(
            coop.requests,
            main.proxies.iter().map(|p| p.requests).sum::<u64>()
        );
    }

    #[test]
    fn request_accounting_is_complete() {
        let (log, clustering) = setup();
        let groups: Vec<Vec<usize>> = (0..clustering.clusters.len())
            .collect::<Vec<usize>>()
            .chunks(5)
            .map(|c| c.to_vec())
            .collect();
        let stats = simulate_cooperative(&log, &clustering, &groups, &config());
        assert_eq!(
            stats.local_hits + stats.sibling_hits + stats.origin_fetches,
            stats.requests
        );
        assert_eq!(
            stats.bytes_local + stats.bytes_sibling + stats.bytes_origin,
            // All clustered requests' bytes.
            log.requests
                .iter()
                .filter(|r| clustering.cluster_of(r.client_addr()).is_some())
                .map(|r| r.bytes as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn ttl_expiry_counts_as_miss() {
        let (log, clustering) = setup();
        let mut cfg = config();
        cfg.ttl_s = 1; // everything stale immediately
        let stats = simulate_cooperative(&log, &clustering, &[], &cfg);
        // Nearly every request goes to the origin (same-second repeats may
        // still hit).
        assert!(
            stats.origin_fetches as f64 > stats.requests as f64 * 0.8,
            "{stats:?}"
        );
    }
}
