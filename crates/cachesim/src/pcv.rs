//! A proxy cache running LRU + Piggyback Cache Validation (PCV).
//!
//! §4.1.5: "We implement the Piggyback Cache Validation scheme with a fixed
//! ttl expiration period at each proxy cache. By default, a cached resource
//! is considered stale once a period of one hour has elapsed. When the
//! expiration time is reached for this resource, a validation check is
//! piggybacked on a subsequent request to its server. If the resource is
//! accessed after its expiration, but before validation, then a GET
//! If-Modified-Since request is sent to the server."
//!
//! [`PcvProxy::request`] implements exactly that state machine and counts
//! the message traffic, so both cache effectiveness (hit ratios) and
//! validation overhead are measurable.

use std::collections::VecDeque;

use crate::lru::{Entry, LruCache};
use crate::resource::ResourceModel;

/// Default freshness lifetime (1 hour, the paper's default).
pub const DEFAULT_TTL_S: u32 = 3_600;

/// Piggybacked validations attached per server contact (the PCV paper
/// batches a handful per request).
pub const PIGGYBACK_BATCH: usize = 10;

/// How one request was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Fresh copy in cache — no server contact.
    Hit,
    /// Stale copy revalidated with If-Modified-Since and found current —
    /// bytes from cache, one message round to the server.
    ValidatedHit,
    /// Fetched from the server (cold, evicted, or modified).
    Miss,
}

/// Per-proxy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Requests handled.
    pub requests: u64,
    /// Served from fresh cache.
    pub hits: u64,
    /// Served from cache after an If-Modified-Since round.
    pub validated_hits: u64,
    /// Fetched from the server.
    pub misses: u64,
    /// Bytes served from cache.
    pub bytes_hit: u64,
    /// Bytes fetched from the server.
    pub bytes_miss: u64,
    /// Messages sent to the server (fetches + IMS rounds).
    pub server_messages: u64,
    /// Validations piggybacked on those messages.
    pub piggybacked: u64,
}

impl ProxyStats {
    /// Requests served by the proxy (fresh or validated) over all requests.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.hits + self.validated_hits) as f64 / self.requests as f64
        }
    }

    /// Bytes served from cache over all bytes.
    pub fn byte_hit_ratio(&self) -> f64 {
        let total = self.bytes_hit + self.bytes_miss;
        if total == 0 {
            0.0
        } else {
            self.bytes_hit as f64 / total as f64
        }
    }
}

/// One proxy cache: LRU storage + PCV freshness.
pub struct PcvProxy {
    cache: LruCache,
    ttl: u32,
    model: ResourceModel,
    /// URLs awaiting piggybacked validation, with the time their copy
    /// expired. Front = oldest.
    pending: VecDeque<(u32, u32)>,
    stats: ProxyStats,
}

impl PcvProxy {
    /// Creates a proxy with `capacity` bytes of cache (`u64::MAX` for the
    /// infinite-cache runs) and the given TTL and modification model.
    pub fn new(capacity: u64, ttl: u32, model: ResourceModel) -> Self {
        PcvProxy {
            cache: LruCache::new(capacity),
            ttl,
            model,
            pending: VecDeque::new(),
            stats: ProxyStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    /// Objects currently cached.
    pub fn cached_objects(&self) -> usize {
        self.cache.len()
    }

    /// Handles one client request for `url` of `size` bytes at time `now`.
    pub fn request(&mut self, url: u32, size: u32, now: u32) -> Served {
        self.stats.requests += 1;
        let outcome = match self.cache.get(url) {
            Some(entry) if now.saturating_sub(entry.validated_at) <= self.ttl => {
                // Fresh: serve locally. (A validation for its eventual
                // expiry was queued when validated_at was last set.)
                self.stats.hits += 1;
                self.stats.bytes_hit += entry.size as u64;
                Served::Hit
            }
            Some(entry) => {
                // Stale and unvalidated: If-Modified-Since round.
                self.stats.server_messages += 1;
                if self.model.version(url, now) == entry.version {
                    // 304 Not Modified: serve from cache.
                    self.cache.update(
                        url,
                        Entry {
                            validated_at: now,
                            ..entry
                        },
                    );
                    self.stats.validated_hits += 1;
                    self.stats.bytes_hit += entry.size as u64;
                    self.pending.push_back((url, now + self.ttl));
                    self.piggyback(now);
                    return Served::ValidatedHit;
                }
                // Modified: full fetch.
                self.fetch(url, size, now);
                Served::Miss
            }
            None => {
                self.stats.server_messages += 1;
                self.fetch(url, size, now);
                Served::Miss
            }
        };
        if outcome != Served::Hit {
            self.piggyback(now);
        }
        outcome
    }

    fn fetch(&mut self, url: u32, size: u32, now: u32) {
        self.stats.misses += 1;
        self.stats.bytes_miss += size as u64;
        let version = self.model.version(url, now);
        self.cache.insert(
            url,
            Entry {
                size,
                cached_at: now,
                validated_at: now,
                version,
            },
        );
        self.pending.push_back((url, now + self.ttl));
    }

    /// Attaches up to [`PIGGYBACK_BATCH`] due validations to a server
    /// contact happening at `now`: still-current copies get their clock
    /// reset; modified copies are dropped (the next access refetches).
    fn piggyback(&mut self, now: u32) {
        let mut budget = PIGGYBACK_BATCH;
        while budget > 0 {
            match self.pending.front() {
                Some(&(_, due)) if due <= now => {}
                _ => break,
            }
            let (url, _) = self.pending.pop_front().expect("checked front");
            let Some(entry) = self.cache.peek(url) else {
                continue; // evicted meanwhile
            };
            if now.saturating_sub(entry.validated_at) <= self.ttl {
                continue; // revalidated via another path
            }
            budget -= 1;
            self.stats.piggybacked += 1;
            if self.model.version(url, now) == entry.version {
                self.cache.update(
                    url,
                    Entry {
                        validated_at: now,
                        ..entry
                    },
                );
                self.pending.push_back((url, now + self.ttl));
            } else {
                self.cache.remove(url);
            }
        }
    }
}

impl std::fmt::Debug for PcvProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcvProxy")
            .field("cache", &self.cache)
            .field("ttl", &self.ttl)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proxy(capacity: u64) -> PcvProxy {
        PcvProxy::new(capacity, DEFAULT_TTL_S, ResourceModel::immutable())
    }

    #[test]
    fn cold_miss_then_fresh_hits() {
        let mut p = proxy(u64::MAX);
        assert_eq!(p.request(1, 100, 0), Served::Miss);
        assert_eq!(p.request(1, 100, 10), Served::Hit);
        assert_eq!(p.request(1, 100, 3_600), Served::Hit);
        let s = p.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.bytes_hit, 200);
        assert_eq!(s.bytes_miss, 100);
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stale_immutable_revalidates_as_hit() {
        let mut p = proxy(u64::MAX);
        p.request(1, 100, 0);
        // Past the TTL: IMS round, 304, served from cache.
        assert_eq!(p.request(1, 100, 4_000), Served::ValidatedHit);
        let s = p.stats();
        assert_eq!(s.validated_hits, 1);
        assert_eq!(s.server_messages, 2); // fetch + IMS
        assert!((s.byte_hit_ratio() - 0.5).abs() < 1e-12);
        // Validation reset the clock: fresh again.
        assert_eq!(p.request(1, 100, 4_100), Served::Hit);
    }

    #[test]
    fn modified_resource_is_refetched() {
        // Period 100 s: version changes between accesses.
        let model = ResourceModel::new(1, 0.0, 100, 100);
        let mut p = PcvProxy::new(u64::MAX, 50, model);
        assert_eq!(p.request(7, 100, 0), Served::Miss);
        // Well past both TTL and modification period.
        assert_eq!(p.request(7, 100, 1_000), Served::Miss);
        assert_eq!(p.stats().misses, 2);
        assert_eq!(p.stats().validated_hits, 0);
    }

    #[test]
    fn eviction_causes_repeat_miss() {
        let mut p = proxy(150);
        assert_eq!(p.request(1, 100, 0), Served::Miss);
        assert_eq!(p.request(2, 100, 1), Served::Miss); // evicts 1
        assert_eq!(p.request(1, 100, 2), Served::Miss);
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn piggyback_validates_expired_copies() {
        let mut p = proxy(u64::MAX);
        p.request(1, 100, 0);
        p.request(2, 100, 0);
        // Much later, a miss on another URL piggybacks validations of the
        // two expired copies, restarting their freshness.
        assert_eq!(p.request(3, 100, 10_000), Served::Miss);
        assert!(p.stats().piggybacked >= 2, "{:?}", p.stats());
        // Both are fresh again without their own IMS round.
        assert_eq!(p.request(1, 100, 10_100), Served::Hit);
        assert_eq!(p.request(2, 100, 10_100), Served::Hit);
        assert_eq!(p.stats().validated_hits, 0);
    }

    #[test]
    fn piggyback_drops_modified_copies() {
        let model = ResourceModel::new(2, 0.0, 100, 100);
        let mut p = PcvProxy::new(u64::MAX, 50, model);
        p.request(1, 100, 0);
        // Later server contact piggybacks url 1's validation; it changed,
        // so the copy is dropped.
        p.request(2, 100, 1_000);
        assert_eq!(p.cached_objects(), 1, "url 1 dropped, url 2 cached");
        assert_eq!(p.request(1, 100, 1_001), Served::Miss);
    }

    #[test]
    fn ratios_start_at_zero() {
        let p = proxy(1000);
        assert_eq!(p.stats().hit_ratio(), 0.0);
        assert_eq!(p.stats().byte_hit_ratio(), 0.0);
    }
}
