//! A byte-capacity LRU cache over URL ids.
//!
//! The paper's caching simulation uses "LRU as the cache replacement
//! policy" with proxy cache sizes swept from 100 KB to 100 MB (and an
//! infinite setting for the per-proxy study). Entries carry the metadata
//! the Piggyback Cache Validation layer needs: when the copy was fetched,
//! when it was last validated, and which server-side version it is.

use std::collections::HashMap;

/// Cached-copy metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Resource size in bytes.
    pub size: u32,
    /// Simulation time the copy was fetched.
    pub cached_at: u32,
    /// Simulation time of the last freshness confirmation.
    pub validated_at: u32,
    /// Server-side version this copy corresponds to.
    pub version: u64,
}

const NIL: usize = usize::MAX;

struct Node {
    url: u32,
    entry: Entry,
    prev: usize,
    next: usize,
}

/// LRU cache keyed by URL id with a byte-capacity bound.
///
/// `get` refreshes recency; `insert` evicts least-recently-used entries
/// until the new object fits. Objects larger than the whole capacity are
/// rejected.
pub struct LruCache {
    capacity: u64,
    used: u64,
    map: HashMap<u32, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
}

impl LruCache {
    /// Creates a cache bounded to `capacity` bytes. Use
    /// [`LruCache::unbounded`] for the paper's infinite-cache runs.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            used: 0,
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// A cache that never evicts.
    pub fn unbounded() -> Self {
        Self::new(u64::MAX)
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up a cached copy, marking it most recently used.
    pub fn get(&mut self, url: u32) -> Option<Entry> {
        let idx = *self.map.get(&url)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(self.nodes[idx].entry)
    }

    /// Looks up without touching recency (for inspection).
    pub fn peek(&self, url: u32) -> Option<Entry> {
        self.map.get(&url).map(|&idx| self.nodes[idx].entry)
    }

    /// Updates the metadata of a cached copy in place (no recency change,
    /// no size accounting change). Returns `false` when absent.
    pub fn update(&mut self, url: u32, entry: Entry) -> bool {
        match self.map.get(&url) {
            Some(&idx) => {
                debug_assert_eq!(
                    self.nodes[idx].entry.size, entry.size,
                    "use insert to resize"
                );
                self.nodes[idx].entry = entry;
                true
            }
            None => false,
        }
    }

    /// Inserts (or replaces) a copy, evicting LRU entries as needed.
    /// Returns the evicted URL ids. Objects larger than the capacity are
    /// not cached (and nothing is evicted for them).
    pub fn insert(&mut self, url: u32, entry: Entry) -> Vec<u32> {
        if let Some(&idx) = self.map.get(&url) {
            // Replace in place, adjusting byte accounting.
            self.used = self.used - self.nodes[idx].entry.size as u64 + entry.size as u64;
            self.nodes[idx].entry = entry;
            self.detach(idx);
            self.attach_front(idx);
            // Replacement may overflow capacity; evict colder entries.
            return self.evict_to_fit(url);
        }
        if entry.size as u64 > self.capacity {
            return Vec::new();
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.nodes[idx] = Node {
                    url,
                    entry,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.nodes.push(Node {
                    url,
                    entry,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(url, idx);
        self.attach_front(idx);
        self.used += entry.size as u64;
        self.evict_to_fit(url)
    }

    fn evict_to_fit(&mut self, protect: u32) -> Vec<u32> {
        let mut evicted = Vec::new();
        while self.used > self.capacity {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL, "over capacity with empty cache");
            let url = self.nodes[tail].url;
            if url == protect {
                // The protected entry alone exceeds capacity: drop it too.
                // (Only reachable via replace-with-larger.)
            }
            self.remove(url);
            evicted.push(url);
        }
        evicted
    }

    /// Removes a copy, returning its entry.
    pub fn remove(&mut self, url: u32) -> Option<Entry> {
        let idx = self.map.remove(&url)?;
        self.detach(idx);
        let entry = self.nodes[idx].entry;
        self.used -= entry.size as u64;
        self.free.push(idx);
        Some(entry)
    }
}

impl std::fmt::Debug for LruCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("capacity", &self.capacity)
            .field("used", &self.used)
            .field("objects", &self.map.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(size: u32) -> Entry {
        Entry {
            size,
            cached_at: 0,
            validated_at: 0,
            version: 0,
        }
    }

    #[test]
    fn insert_get_basic() {
        let mut c = LruCache::new(1000);
        assert!(c.insert(1, entry(100)).is_empty());
        assert!(c.insert(2, entry(200)).is_empty());
        assert_eq!(c.used_bytes(), 300);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap().size, 100);
        assert!(c.get(3).is_none());
        assert!(!c.is_empty());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(300);
        c.insert(1, entry(100));
        c.insert(2, entry(100));
        c.insert(3, entry(100));
        // Touch 1 so 2 becomes LRU.
        c.get(1);
        let evicted = c.insert(4, entry(100));
        assert_eq!(evicted, vec![2]);
        assert!(c.peek(1).is_some());
        assert!(c.peek(2).is_none());
        assert_eq!(c.used_bytes(), 300);
    }

    #[test]
    fn eviction_cascades() {
        let mut c = LruCache::new(300);
        c.insert(1, entry(100));
        c.insert(2, entry(100));
        c.insert(3, entry(100));
        let evicted = c.insert(4, entry(150));
        assert_eq!(evicted, vec![1, 2]);
        assert_eq!(c.used_bytes(), 100 + 150);
    }

    #[test]
    fn oversized_objects_not_cached() {
        let mut c = LruCache::new(100);
        c.insert(1, entry(50));
        let evicted = c.insert(2, entry(500));
        assert!(evicted.is_empty());
        assert!(c.peek(2).is_none());
        assert!(c.peek(1).is_some(), "existing entries survive");
    }

    #[test]
    fn replace_adjusts_bytes() {
        let mut c = LruCache::new(1000);
        c.insert(1, entry(100));
        c.insert(1, entry(300));
        assert_eq!(c.used_bytes(), 300);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(1).unwrap().size, 300);
    }

    #[test]
    fn replace_larger_can_evict_others() {
        let mut c = LruCache::new(300);
        c.insert(1, entry(100));
        c.insert(2, entry(100));
        let evicted = c.insert(2, entry(250));
        assert_eq!(evicted, vec![1]);
        assert_eq!(c.used_bytes(), 250);
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c = LruCache::new(1000);
        c.insert(1, entry(100));
        assert_eq!(c.remove(1).unwrap().size, 100);
        assert_eq!(c.used_bytes(), 0);
        assert!(c.remove(1).is_none());
        // Arena slot is reused.
        c.insert(2, entry(50));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(2).unwrap().size, 50);
    }

    #[test]
    fn update_metadata_in_place() {
        let mut c = LruCache::new(1000);
        c.insert(
            1,
            Entry {
                size: 100,
                cached_at: 5,
                validated_at: 5,
                version: 1,
            },
        );
        assert!(c.update(
            1,
            Entry {
                size: 100,
                cached_at: 5,
                validated_at: 99,
                version: 1
            }
        ));
        assert_eq!(c.peek(1).unwrap().validated_at, 99);
        assert!(!c.update(9, entry(10)));
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut c = LruCache::unbounded();
        for i in 0..10_000u32 {
            assert!(c.insert(i, entry(1_000_000)).is_empty());
        }
        assert_eq!(c.len(), 10_000);
    }

    #[test]
    fn recency_order_after_many_ops() {
        let mut c = LruCache::new(250);
        c.insert(1, entry(100));
        c.insert(2, entry(100));
        c.get(1);
        c.get(2);
        c.get(1); // order (MRU→LRU): 1, 2
        let evicted = c.insert(3, entry(100));
        assert_eq!(evicted, vec![2]);
    }
}
