//! Trace-driven Web-caching simulation with per-cluster proxies (§4.1.5).
//!
//! One proxy is placed in front of each client cluster; every request is
//! routed through its client's proxy (unclustered clients go straight to
//! the origin). The simulation reports per-proxy statistics plus the
//! server-side totals the paper plots:
//!
//! * **Figure 11** — total hit ratio / byte-hit ratio observed at the
//!   server while sweeping the per-proxy cache size (100 KB–100 MB),
//! * **Figure 12** — per-proxy request volume, bytes, hit ratio and
//!   byte-hit ratio of the top clusters, with infinite caches.

use std::collections::HashMap;

use netclust_core::Clustering;
use netclust_weblog::Log;

use crate::pcv::{PcvProxy, ProxyStats, DEFAULT_TTL_S};
use crate::resource::ResourceModel;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Per-proxy cache capacity in bytes (`u64::MAX` = infinite).
    pub cache_bytes: u64,
    /// PCV freshness lifetime in seconds.
    pub ttl_s: u32,
    /// Resource modification model.
    pub model: ResourceModel,
    /// Drop requests to URLs accessed fewer than this many times in the
    /// whole log (the paper ignores resources accessed < 10 times,
    /// footnote 9). `0` keeps everything.
    pub min_url_accesses: u64,
}

impl SimConfig {
    /// Paper defaults: 1-hour TTL, default-web modification model, and the
    /// footnote-9 filter.
    pub fn paper(cache_bytes: u64) -> Self {
        SimConfig {
            cache_bytes,
            ttl_s: DEFAULT_TTL_S,
            model: ResourceModel::default_web(0xFEED),
            min_url_accesses: 10,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-proxy stats, parallel to `Clustering::clusters`.
    pub proxies: Vec<ProxyStats>,
    /// Requests that bypassed all proxies (unclustered clients).
    pub direct_requests: u64,
    /// Bytes fetched by unclustered clients.
    pub direct_bytes: u64,
    /// Requests simulated after the URL-popularity filter.
    pub simulated_requests: u64,
}

impl SimResult {
    /// Total hit ratio observed at the server: the fraction of simulated
    /// requests served by local proxies (direct requests count as misses).
    pub fn server_hit_ratio(&self) -> f64 {
        let served: u64 = self.proxies.iter().map(|p| p.hits + p.validated_hits).sum();
        if self.simulated_requests == 0 {
            0.0
        } else {
            served as f64 / self.simulated_requests as f64
        }
    }

    /// Total byte-hit ratio observed at the server.
    pub fn server_byte_hit_ratio(&self) -> f64 {
        let hit: u64 = self.proxies.iter().map(|p| p.bytes_hit).sum();
        let miss: u64 = self.proxies.iter().map(|p| p.bytes_miss).sum::<u64>() + self.direct_bytes;
        let total = hit + miss;
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }
}

/// Runs the simulation of `log` against `clustering`.
pub fn simulate(log: &Log, clustering: &Clustering, config: &SimConfig) -> SimResult {
    // Footnote-9 filter: URL access counts.
    let keep: Option<Vec<bool>> = if config.min_url_accesses > 1 {
        let mut counts = vec![0u64; log.urls.len()];
        for r in &log.requests {
            counts[r.url as usize] += 1;
        }
        Some(
            counts
                .iter()
                .map(|&c| c >= config.min_url_accesses)
                .collect(),
        )
    } else {
        None
    };

    // Client → proxy (cluster index) routing table.
    let mut route: HashMap<u32, u32> = HashMap::new();
    for (idx, cluster) in clustering.clusters.iter().enumerate() {
        for client in &cluster.clients {
            // analyze:allow(cast-truncation) cluster indices are u32 by design.
            route.insert(u32::from(client.addr), idx as u32);
        }
    }

    let mut proxies: Vec<PcvProxy> = (0..clustering.clusters.len())
        .map(|_| PcvProxy::new(config.cache_bytes, config.ttl_s, config.model))
        .collect();
    let mut direct_requests = 0u64;
    let mut direct_bytes = 0u64;
    let mut simulated = 0u64;

    for r in &log.requests {
        if let Some(keep) = &keep {
            if !keep[r.url as usize] {
                continue;
            }
        }
        simulated += 1;
        match route.get(&r.client) {
            Some(&idx) => {
                proxies[idx as usize].request(r.url, r.bytes, r.time);
            }
            None => {
                direct_requests += 1;
                direct_bytes += r.bytes as u64;
            }
        }
    }

    SimResult {
        proxies: proxies.iter().map(|p| p.stats()).collect(),
        direct_requests,
        direct_bytes,
        simulated_requests: simulated,
    }
}

/// Sweeps per-proxy cache sizes and returns `(bytes, hit ratio, byte-hit
/// ratio)` per point — Figure 11's curves.
pub fn sweep_cache_sizes(
    log: &Log,
    clustering: &Clustering,
    sizes: &[u64],
    base: &SimConfig,
) -> Vec<(u64, f64, f64)> {
    sizes
        .iter()
        .map(|&bytes| {
            let result = simulate(
                log,
                clustering,
                &SimConfig {
                    cache_bytes: bytes,
                    ..*base
                },
            );
            (
                bytes,
                result.server_hit_ratio(),
                result.server_byte_hit_ratio(),
            )
        })
        .collect()
}

/// The paper's Figure 11 sweep points: 100 KB to 100 MB, log-spaced.
pub fn fig11_sizes() -> Vec<u64> {
    vec![
        100 << 10,
        300 << 10,
        1 << 20,
        3 << 20,
        10 << 20,
        30 << 20,
        100 << 20,
    ]
}

/// Per-proxy report rows for the top `n` clusters by requests — Figure 12.
/// Returns `(cluster index, requests, kilobytes, hit ratio, byte-hit
/// ratio)` rows in reverse order of requests.
pub fn top_proxy_report(
    clustering: &Clustering,
    result: &SimResult,
    n: usize,
) -> Vec<(usize, u64, u64, f64, f64)> {
    let mut order: Vec<usize> = (0..result.proxies.len()).collect();
    order.sort_by(|&a, &b| {
        result.proxies[b]
            .requests
            .cmp(&result.proxies[a].requests)
            .then(a.cmp(&b))
    });
    order
        .into_iter()
        .take(n)
        .map(|i| {
            let p = &result.proxies[i];
            let _cluster: &netclust_core::Cluster = &clustering.clusters[i];
            (
                i,
                p.requests,
                (p.bytes_hit + p.bytes_miss) >> 10,
                p.hit_ratio(),
                p.byte_hit_ratio(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::{Universe, UniverseConfig};
    use netclust_weblog::{generate, LogSpec};

    fn setup() -> (Log, Clustering) {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut spec = LogSpec::tiny("cs", 77);
        spec.total_requests = 40_000;
        spec.num_urls = 300;
        let log = generate(&u, &spec);
        let merged = netclust_netgen::standard_merged(&u, 0);
        let clustering = Clustering::network_aware(&log, &merged);
        (log, clustering)
    }

    fn config(bytes: u64) -> SimConfig {
        SimConfig {
            cache_bytes: bytes,
            ttl_s: DEFAULT_TTL_S,
            model: ResourceModel::immutable(),
            min_url_accesses: 0,
        }
    }

    #[test]
    fn accounting_adds_up() {
        let (log, clustering) = setup();
        let result = simulate(&log, &clustering, &config(u64::MAX));
        let proxied: u64 = result.proxies.iter().map(|p| p.requests).sum();
        assert_eq!(proxied + result.direct_requests, log.requests.len() as u64);
        assert_eq!(result.simulated_requests, log.requests.len() as u64);
        // Bytes conservation.
        let bytes: u64 = result
            .proxies
            .iter()
            .map(|p| p.bytes_hit + p.bytes_miss)
            .sum::<u64>()
            + result.direct_bytes;
        assert_eq!(bytes, log.total_bytes());
    }

    #[test]
    fn bigger_caches_hit_more() {
        let (log, clustering) = setup();
        let points = sweep_cache_sizes(
            &log,
            &clustering,
            &[10 << 10, 1 << 20, 100 << 20],
            &config(0),
        );
        assert!(
            points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9),
            "{points:?}"
        );
        assert!(points.windows(2).all(|w| w[1].2 >= w[0].2 - 1e-9));
        // An effectively infinite cache gets a solid hit ratio on a
        // Zipf workload.
        assert!(points[2].1 > 0.4, "hit ratio {}", points[2].1);
    }

    #[test]
    fn infinite_cache_dominates_finite() {
        let (log, clustering) = setup();
        let finite = simulate(&log, &clustering, &config(50 << 10));
        let infinite = simulate(&log, &clustering, &config(u64::MAX));
        assert!(infinite.server_hit_ratio() >= finite.server_hit_ratio());
        assert!(infinite.server_byte_hit_ratio() >= finite.server_byte_hit_ratio());
    }

    #[test]
    fn url_filter_reduces_simulated_requests() {
        let (log, clustering) = setup();
        let mut cfg = config(u64::MAX);
        // 40,000 requests over 300 Zipf URLs leave every URL above 10
        // accesses; use a threshold that actually bites in this test.
        cfg.min_url_accesses = 200;
        let result = simulate(&log, &clustering, &cfg);
        assert!(result.simulated_requests < log.requests.len() as u64);
        assert!(result.simulated_requests > 0);
    }

    #[test]
    fn top_proxy_report_is_sorted_and_consistent() {
        let (log, clustering) = setup();
        let result = simulate(&log, &clustering, &config(u64::MAX));
        let rows = top_proxy_report(&clustering, &result, 10);
        assert!(rows.len() <= 10);
        assert!(rows.windows(2).all(|w| w[0].1 >= w[1].1));
        for (idx, requests, _, hit, byte_hit) in &rows {
            assert_eq!(result.proxies[*idx].requests, *requests);
            assert!((0.0..=1.0).contains(hit));
            assert!((0.0..=1.0).contains(byte_hit));
        }
    }

    #[test]
    fn clustering_granularity_matters() {
        // The headline of Figure 11: coarser (network-aware) clusters
        // share caches better than /24 fragments at equal capacity.
        let (log, aware) = setup();
        let simple = Clustering::simple24(&log);
        let cfg = config(u64::MAX);
        let aware_result = simulate(&log, &aware, &cfg);
        let simple_result = simulate(&log, &simple, &cfg);
        assert!(
            aware_result.server_hit_ratio() > simple_result.server_hit_ratio(),
            "aware {} vs simple {}",
            aware_result.server_hit_ratio(),
            simple_result.server_hit_ratio()
        );
    }

    #[test]
    fn validation_traffic_appears_with_mutable_resources() {
        let (log, clustering) = setup();
        let cfg = SimConfig {
            cache_bytes: u64::MAX,
            ttl_s: 600,
            model: ResourceModel::default_web(1),
            min_url_accesses: 0,
        };
        let result = simulate(&log, &clustering, &cfg);
        let validated: u64 = result.proxies.iter().map(|p| p.validated_hits).sum();
        let piggybacked: u64 = result.proxies.iter().map(|p| p.piggybacked).sum();
        assert!(validated > 0, "IMS rounds expected");
        assert!(piggybacked > 0, "piggybacked validations expected");
    }

    #[test]
    fn fig11_sizes_span_paper_range() {
        let sizes = fig11_sizes();
        assert_eq!(sizes[0], 100 << 10);
        assert_eq!(*sizes.last().unwrap(), 100 << 20);
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }
}
