//! Server-side resource modification model.
//!
//! Cache validation only matters if resources actually change. The model
//! gives each URL a deterministic modification period (heavy-tailed, with
//! an immutable fraction — images rarely change, scoreboards change
//! constantly); the *version* of a resource at time `t` is the number of
//! modifications so far. A cached copy is out of date when the server's
//! version exceeds the copy's.

use netclust_netgen::{uniform_u64, unit_f64};

/// Deterministic per-URL modification schedule.
#[derive(Debug, Clone, Copy)]
pub struct ResourceModel {
    seed: u64,
    /// Fraction of resources that never change.
    immutable_fraction: f64,
    /// Minimum modification period, seconds.
    min_period_s: u32,
    /// Maximum modification period, seconds.
    max_period_s: u32,
}

impl ResourceModel {
    /// Creates a model. Periods are log-uniform in
    /// `[min_period_s, max_period_s]`.
    pub fn new(seed: u64, immutable_fraction: f64, min_period_s: u32, max_period_s: u32) -> Self {
        assert!(min_period_s > 0 && min_period_s <= max_period_s);
        ResourceModel {
            seed,
            immutable_fraction,
            min_period_s,
            max_period_s,
        }
    }

    /// The paper-era default: 20 % immutable; the rest modified every
    /// 30 minutes to ~4 days.
    pub fn default_web(seed: u64) -> Self {
        Self::new(seed, 0.20, 1_800, 4 * 86_400)
    }

    /// A model where nothing ever changes (validations always succeed).
    pub fn immutable() -> Self {
        Self::new(0, 1.0, 1, 1)
    }

    /// The modification period of `url`, or `None` if immutable.
    pub fn period(&self, url: u32) -> Option<u32> {
        if unit_f64(self.seed, &[0x4E5, url as u64]) < self.immutable_fraction {
            return None;
        }
        // Log-uniform period.
        let lo = (self.min_period_s as f64).ln();
        let hi = (self.max_period_s as f64).ln();
        let u = unit_f64(self.seed, &[0x4E6, url as u64]);
        // analyze:allow(cast-truncation) the log-uniform draw lies within
        // [min_period_s, max_period_s], both u32.
        Some((lo + u * (hi - lo)).exp() as u32)
    }

    /// The server-side version of `url` at time `t` (0 for immutable
    /// resources, stepping by 1 every period with a per-URL phase).
    pub fn version(&self, url: u32, t: u32) -> u64 {
        match self.period(url) {
            None => 0,
            Some(p) => {
                // analyze:allow(cast-truncation) phase < p, and p is u32.
                let phase = uniform_u64(self.seed, &[0x4E7, url as u64], p as u64) as u32;
                ((t as u64) + phase as u64) / p as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotone_and_step_by_period() {
        let m = ResourceModel::new(7, 0.0, 100, 100);
        let mut last = m.version(1, 0);
        for t in (0..10_000).step_by(10) {
            let v = m.version(1, t);
            assert!(v >= last);
            last = v;
        }
        // Over 10,000 s with period 100 s: about 100 modifications.
        assert!((95..=105).contains(&(m.version(1, 10_000) - m.version(1, 0))));
    }

    #[test]
    fn immutable_resources_never_change() {
        let m = ResourceModel::immutable();
        for url in 0..50 {
            assert_eq!(m.period(url), None);
            assert_eq!(m.version(url, 0), 0);
            assert_eq!(m.version(url, 1_000_000), 0);
        }
    }

    #[test]
    fn immutable_fraction_is_respected() {
        let m = ResourceModel::new(9, 0.3, 60, 86_400);
        let immutable = (0..2000).filter(|&u| m.period(u).is_none()).count();
        let frac = immutable as f64 / 2000.0;
        assert!((0.25..0.35).contains(&frac), "{frac}");
    }

    #[test]
    fn periods_span_configured_range() {
        let m = ResourceModel::new(5, 0.0, 1_800, 4 * 86_400);
        let periods: Vec<u32> = (0..500).filter_map(|u| m.period(u)).collect();
        assert!(periods.iter().all(|&p| (1_800..=4 * 86_400).contains(&p)));
        let short = periods.iter().filter(|&&p| p < 10_000).count();
        let long = periods.iter().filter(|&&p| p > 100_000).count();
        assert!(short > 0 && long > 0, "log-uniform should cover both ends");
    }

    #[test]
    fn deterministic() {
        let a = ResourceModel::default_web(3);
        let b = ResourceModel::default_web(3);
        for url in 0..100 {
            assert_eq!(a.period(url), b.period(url));
            assert_eq!(a.version(url, 12345), b.version(url, 12345));
        }
    }
}
