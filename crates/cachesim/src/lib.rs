//! Trace-driven Web proxy cache simulator.
//!
//! Implements the caching study of §4.1.5: a proxy in front of every
//! client cluster, each running a byte-capacity [`LruCache`] with
//! [Piggyback Cache Validation](PcvProxy) (fixed TTL + If-Modified-Since +
//! piggybacked validation batches), over a deterministic
//! [`ResourceModel`] of server-side modifications.
//!
//! [`simulate`] replays a log through the proxies of a clustering;
//! [`sweep_cache_sizes`] produces Figure 11's server-side curves and
//! [`top_proxy_report`] Figure 12's per-proxy rows.

#![warn(missing_docs)]

mod coop;
mod lru;
mod pcv;
mod resource;
mod sim;

pub use coop::{simulate_cooperative, CoopStats};
pub use lru::{Entry, LruCache};
pub use pcv::{PcvProxy, ProxyStats, Served, DEFAULT_TTL_S, PIGGYBACK_BATCH};
pub use resource::ResourceModel;
pub use sim::{fig11_sizes, simulate, sweep_cache_sizes, top_proxy_report, SimConfig, SimResult};
