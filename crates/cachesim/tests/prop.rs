//! Property-based tests: the LRU cache agrees with a naive reference
//! model, and PCV/proxy invariants hold under arbitrary workloads.

use std::collections::VecDeque;

use netclust_cachesim::{Entry, LruCache, PcvProxy, ResourceModel, Served};
use proptest::prelude::*;

/// Naive reference LRU: a deque of (url, size), most recent at front.
struct RefLru {
    capacity: u64,
    items: VecDeque<(u32, u32)>,
}

impl RefLru {
    fn new(capacity: u64) -> Self {
        RefLru {
            capacity,
            items: VecDeque::new(),
        }
    }

    fn used(&self) -> u64 {
        self.items.iter().map(|&(_, s)| s as u64).sum()
    }

    fn get(&mut self, url: u32) -> bool {
        if let Some(pos) = self.items.iter().position(|&(u, _)| u == url) {
            let item = self.items.remove(pos).expect("position valid");
            self.items.push_front(item);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, url: u32, size: u32) {
        if let Some(pos) = self.items.iter().position(|&(u, _)| u == url) {
            self.items.remove(pos);
        }
        if size as u64 > self.capacity {
            return;
        }
        self.items.push_front((url, size));
        while self.used() > self.capacity {
            self.items.pop_back();
        }
    }
}

/// One randomized cache operation.
#[derive(Debug, Clone)]
enum Op {
    Get(u32),
    Insert(u32, u32),
    Remove(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..40).prop_map(Op::Get),
        (0u32..40, 1u32..600).prop_map(|(u, s)| Op::Insert(u, s)),
        (0u32..40).prop_map(Op::Remove),
    ]
}

proptest! {
    /// The arena LRU and the reference deque agree on membership, byte
    /// accounting and eviction order for arbitrary operation sequences.
    #[test]
    fn lru_matches_reference(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let capacity = 2_000u64;
        let mut lru = LruCache::new(capacity);
        let mut reference = RefLru::new(capacity);
        for op in ops {
            match op {
                Op::Get(u) => {
                    prop_assert_eq!(lru.get(u).is_some(), reference.get(u));
                }
                Op::Insert(u, s) => {
                    lru.insert(u, Entry { size: s, cached_at: 0, validated_at: 0, version: 0 });
                    reference.insert(u, s);
                }
                Op::Remove(u) => {
                    let was = reference.items.iter().position(|&(x, _)| x == u);
                    if let Some(pos) = was {
                        reference.items.remove(pos);
                        prop_assert!(lru.remove(u).is_some());
                    } else {
                        prop_assert!(lru.remove(u).is_none());
                    }
                }
            }
            prop_assert_eq!(lru.used_bytes(), reference.used(), "byte accounting");
            prop_assert_eq!(lru.len(), reference.items.len(), "object count");
            prop_assert!(lru.used_bytes() <= capacity, "capacity bound");
            // Membership agrees for every key.
            for u in 0u32..40 {
                prop_assert_eq!(
                    lru.peek(u).is_some(),
                    reference.items.iter().any(|&(x, _)| x == u),
                    "membership of {}", u
                );
            }
        }
    }

    /// PCV proxy stats are internally consistent for arbitrary workloads:
    /// hits+validated+misses == requests, byte totals match outcomes, and
    /// ratios stay in [0, 1].
    #[test]
    fn pcv_stats_consistent(
        reqs in proptest::collection::vec((0u32..60, 500u32..5_000, 0u32..200_000), 1..300),
        ttl in 60u32..7_200,
        capacity in prop_oneof![Just(u64::MAX), 10_000u64..200_000],
    ) {
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|&(_, _, t)| t);
        let mut proxy = PcvProxy::new(capacity, ttl, ResourceModel::default_web(1));
        let mut expect_miss_bytes = 0u64;
        for &(url, size, t) in &sorted {
            if proxy.request(url, size, t) == Served::Miss {
                expect_miss_bytes += size as u64;
            }
        }
        let s = proxy.stats();
        prop_assert_eq!(s.requests, sorted.len() as u64);
        prop_assert_eq!(s.hits + s.validated_hits + s.misses, s.requests);
        prop_assert_eq!(s.bytes_miss, expect_miss_bytes);
        prop_assert!((0.0..=1.0).contains(&s.hit_ratio()));
        prop_assert!((0.0..=1.0).contains(&s.byte_hit_ratio()));
        // Server messages: every miss costs one, every validated hit one.
        prop_assert!(s.server_messages >= s.misses + s.validated_hits);
    }

    /// With an immutable model and infinite cache, every repeat access to
    /// a URL is served locally (hit or validated hit) — no repeat misses.
    #[test]
    fn immutable_infinite_cache_never_remisses(
        urls in proptest::collection::vec(0u32..30, 2..200),
    ) {
        let mut proxy = PcvProxy::new(u64::MAX, 600, ResourceModel::immutable());
        let mut seen = std::collections::HashSet::new();
        for (i, &url) in urls.iter().enumerate() {
            let outcome = proxy.request(url, 1_000, (i as u32) * 100);
            if seen.contains(&url) {
                prop_assert_ne!(outcome, Served::Miss, "repeat miss on {}", url);
            }
            seen.insert(url);
        }
        prop_assert_eq!(proxy.stats().misses as usize, seen.len());
    }
}
