//! Property-based tests for the probe tools.

use netclust_netgen::{Universe, UniverseConfig};
use netclust_probe::{name_suffix, Nslookup, TraceOutcome, Traceroute};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The suffix rule: output is always a suffix of the input, has the
    /// right component count, and is idempotent.
    #[test]
    fn suffix_rule_properties(
        parts in proptest::collection::vec("[a-z][a-z0-9]{0,6}", 1..7),
    ) {
        let name = parts.join(".");
        let suffix = name_suffix(&name);
        prop_assert!(name.ends_with(suffix));
        let m = parts.len();
        let expect = if m >= 4 { 3 } else { 2.min(m) };
        prop_assert_eq!(suffix.split('.').count(), expect.max(1).min(m));
    }

    /// Traceroute invariants across arbitrary universe seeds: every traced
    /// org host resolves to a name or a non-empty path; optimized never
    /// costs more probes than classic; stats accumulate exactly.
    #[test]
    fn traceroute_invariants(seed in 0u64..100) {
        let u = Universe::generate(UniverseConfig::small(seed));
        let mut classic = Traceroute::classic(&u);
        let mut optimized = Traceroute::optimized(&u);
        let mut traces = 0u64;
        for org in u.orgs().iter().take(25) {
            let addr = org.host_addr(0).expect("active host");
            let c = classic.trace(addr);
            let o = optimized.trace(addr);
            traces += 1;
            prop_assert_eq!(c.hops(), o.hops(), "same discovered path");
            match &o {
                TraceOutcome::Reached { rtt_ms, hops, .. } => {
                    prop_assert!(*rtt_ms > 0.0);
                    prop_assert!(!hops.is_empty());
                }
                TraceOutcome::PathOnly { hops } => prop_assert!(!hops.is_empty()),
                TraceOutcome::Unroutable => prop_assert!(false, "org hosts are routable"),
            }
        }
        let (cs, os) = (classic.stats(), optimized.stats());
        prop_assert_eq!(cs.traces, traces);
        prop_assert_eq!(os.traces, traces);
        prop_assert!(os.probes <= cs.probes, "optimized {} vs classic {}", os.probes, cs.probes);
        prop_assert!(os.time_ms <= cs.time_ms);
    }

    /// nslookup and traceroute agree on who answers: a Reached outcome
    /// implies host_responds, and a resolved name implies Reached.
    #[test]
    fn nslookup_traceroute_consistency(seed in 0u64..100) {
        let u = Universe::generate(UniverseConfig::small(seed));
        let mut ns = Nslookup::new(&u);
        let mut tr = Traceroute::optimized(&u);
        for org in u.orgs().iter().take(30) {
            let addr = org.host_addr(0).expect("active host");
            let name = ns.resolve(addr);
            let outcome = tr.trace(addr);
            if name.is_some() {
                prop_assert!(
                    matches!(outcome, TraceOutcome::Reached { .. }),
                    "resolvable host must answer probes"
                );
                prop_assert_eq!(outcome.name(), name.as_deref());
            }
            prop_assert_eq!(
                matches!(outcome, TraceOutcome::Reached { .. }),
                u.host_responds(addr)
            );
        }
    }
}
