//! Simulated classic and optimized traceroute (§3.3).
//!
//! The paper validates clusters with an in-house traceroute modified in two
//! ways: (i) send one probe per TTL instead of a fixed `q`, retrying only
//! on missing information, and (ii) start at `ttl = Max_ttl` (30) so a
//! reachable destination answers the very first probe with an ICMP
//! `PORT_UNREACHABLE` carrying its address/name. They report saving ≈90 %
//! of probes and ≈80 % of waiting time versus the classic tool.
//!
//! The simulation models routers as always answering `TIME_EXCEEDED` and
//! end hosts as answering only when their organization is not firewalled
//! (≈50 % — consistent with the paper's observation that traceroute and
//! nslookup resolve about the same host population). Probe timing charges
//! each answered probe its hop RTT and each unanswered probe a timeout.

use std::net::Ipv4Addr;

use netclust_netgen::{Hop, Universe};

use crate::faults::{ProbeFaultModel, RetryPolicy, UNRESPONSIVE_HOP};

/// Timeout charged for an unanswered probe, in milliseconds.
pub const PROBE_TIMEOUT_MS: f64 = 3000.0;

/// Classic traceroute's fixed probes-per-TTL (`q`).
pub const CLASSIC_PROBES_PER_TTL: u32 = 3;

/// Default maximum TTL (the paper sets `Max_ttl = 30`).
pub const MAX_TTL: u8 = 30;

/// Outcome of tracing one destination.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOutcome {
    /// The destination answered: its name (when DNS has one), round-trip
    /// time, and the router path toward it.
    Reached {
        /// Reverse-resolved destination name, if registered in DNS.
        name: Option<String>,
        /// Round-trip time to the destination in milliseconds.
        rtt_ms: f64,
        /// Router hops toward the destination.
        hops: Vec<Hop>,
    },
    /// The destination never answered (firewall); only the router path
    /// was discovered.
    PathOnly {
        /// Router hops toward the destination (ends at the org gateway).
        hops: Vec<Hop>,
    },
    /// No route exists toward the address (outside allocated space).
    Unroutable,
}

impl TraceOutcome {
    /// The discovered router hops (empty for [`TraceOutcome::Unroutable`]).
    pub fn hops(&self) -> &[Hop] {
        match self {
            TraceOutcome::Reached { hops, .. } | TraceOutcome::PathOnly { hops } => hops,
            TraceOutcome::Unroutable => &[],
        }
    }

    /// The destination's DNS name, when it was reached and has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            TraceOutcome::Reached { name, .. } => name.as_deref(),
            _ => None,
        }
    }

    /// The last `k` router-hop names on the path (fewer when the path is
    /// short) — the paper compares the last two.
    pub fn path_suffix(&self, k: usize) -> Vec<&str> {
        let hops = self.hops();
        let start = hops.len().saturating_sub(k);
        hops[start..].iter().map(|h| h.name.as_str()).collect()
    }
}

/// Cumulative probe accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProbeStats {
    /// Destinations traced.
    pub traces: u64,
    /// UDP probes sent.
    pub probes: u64,
    /// Simulated wall-clock time waiting for replies, in milliseconds.
    pub time_ms: f64,
    /// Probes re-sent after an injected transient loss.
    pub retries: u64,
    /// Probes that timed out (silence or injected loss).
    pub timeouts: u64,
    /// Targets abandoned after exhausting the retry budget.
    pub gave_up: u64,
}

/// A traceroute engine over the synthetic universe.
///
/// `optimized` selects between the classic algorithm (start at `ttl = 1`,
/// `q = 3` probes per TTL, walk upward to `Max_ttl`) and the paper's
/// optimized one (one probe at `ttl = Max_ttl` first, then a minimal
/// binary search for the deepest responding hop when the destination is
/// silent).
pub struct Traceroute<'u> {
    universe: &'u Universe,
    optimized: bool,
    max_ttl: u8,
    stats: ProbeStats,
    faults: Option<(ProbeFaultModel, RetryPolicy)>,
}

impl<'u> Traceroute<'u> {
    /// Classic traceroute engine.
    pub fn classic(universe: &'u Universe) -> Self {
        Traceroute {
            universe,
            optimized: false,
            max_ttl: MAX_TTL,
            stats: ProbeStats::default(),
            faults: None,
        }
    }

    /// The paper's optimized traceroute engine.
    pub fn optimized(universe: &'u Universe) -> Self {
        Traceroute {
            universe,
            optimized: true,
            max_ttl: MAX_TTL,
            stats: ProbeStats::default(),
            faults: None,
        }
    }

    /// Arms a deterministic fault model with a retry policy. Injected
    /// losses affect the *optimized* engine (the one the clustering
    /// pipeline runs); the classic engine keeps the paper's noise-free
    /// cost model so the §3.3 probe-saving comparison stays meaningful.
    ///
    /// Under loss a trace can return a *partial* path: a hop that drops
    /// every retry is reported as [`UNRESPONSIVE_HOP`] or truncates the
    /// discovered path early, and a destination whose answers are all
    /// lost is treated as firewalled after the retry budget is spent.
    pub fn with_faults(mut self, model: ProbeFaultModel, policy: RetryPolicy) -> Self {
        self.faults = Some((model, policy));
        self
    }

    /// Cumulative probe statistics.
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }

    /// `true` when the destination host answers probes (neither its org
    /// nor, for delegated ISP space, its customer is firewalled).
    fn destination_answers(&self, addr: Ipv4Addr) -> bool {
        self.universe.host_responds(addr)
    }

    /// Traces the route toward `addr`.
    pub fn trace(&mut self, addr: Ipv4Addr) -> TraceOutcome {
        self.stats.traces += 1;
        let Some(hops) = self.universe.path_to(addr) else {
            // Probes toward unallocated space die silently; both variants
            // give up after one round of max_ttl probes.
            let wasted = if self.optimized {
                1
            } else {
                CLASSIC_PROBES_PER_TTL as u64
            };
            self.stats.probes += wasted;
            self.stats.timeouts += wasted;
            self.stats.time_ms += wasted as f64 * PROBE_TIMEOUT_MS;
            return TraceOutcome::Unroutable;
        };
        let answers = self.destination_answers(addr);
        let dest_rtt = hops.last().map(|h| h.rtt_ms).unwrap_or(0.0) + 1.0;
        if self.optimized {
            match self.faults {
                Some((model, policy)) => {
                    self.trace_optimized_faulty(hops, answers, dest_rtt, addr, model, policy)
                }
                None => self.trace_optimized(hops, answers, dest_rtt, addr),
            }
        } else {
            self.trace_classic(hops, answers, dest_rtt, addr)
        }
    }

    /// Classic: `q` probes at each TTL from 1 upward; stops at the
    /// destination's `PORT_UNREACHABLE` or at `Max_ttl`.
    fn trace_classic(
        &mut self,
        hops: Vec<Hop>,
        answers: bool,
        dest_rtt: f64,
        addr: Ipv4Addr,
    ) -> TraceOutcome {
        let q = CLASSIC_PROBES_PER_TTL as u64;
        // TTLs covering the router path: every probe is answered.
        for hop in &hops {
            self.stats.probes += q;
            self.stats.time_ms += q as f64 * hop.rtt_ms;
        }
        if answers {
            // The next TTL reaches the destination.
            self.stats.probes += q;
            self.stats.time_ms += q as f64 * dest_rtt;
            TraceOutcome::Reached {
                name: self.universe.dns_name(addr),
                rtt_ms: dest_rtt,
                hops,
            }
        } else {
            // Silence from hops.len()+1 up to max_ttl — all time out.
            let silent_ttls = (self.max_ttl as u64).saturating_sub(hops.len() as u64);
            self.stats.probes += q * silent_ttls;
            self.stats.timeouts += q * silent_ttls;
            self.stats.time_ms += (q * silent_ttls) as f64 * PROBE_TIMEOUT_MS;
            TraceOutcome::PathOnly { hops }
        }
    }

    /// Optimized: one probe at `ttl = Max_ttl` first. A reachable
    /// destination answers immediately (one probe total). Otherwise a
    /// binary search finds the deepest responding router, and one more
    /// probe confirms its predecessor — exactly the two hops the
    /// validation needs.
    fn trace_optimized(
        &mut self,
        hops: Vec<Hop>,
        answers: bool,
        dest_rtt: f64,
        addr: Ipv4Addr,
    ) -> TraceOutcome {
        // First probe at max_ttl.
        self.stats.probes += 1;
        if answers {
            self.stats.time_ms += dest_rtt;
            return TraceOutcome::Reached {
                name: self.universe.dns_name(addr),
                rtt_ms: dest_rtt,
                hops,
            };
        }
        // Timeout, then binary-search the deepest responding TTL in
        // [1, max_ttl): probing ttl t answers iff t <= hops.len().
        self.stats.timeouts += 1;
        self.stats.time_ms += PROBE_TIMEOUT_MS;
        // analyze:allow(cast-truncation) path depth is bounded by max_ttl.
        let depth = hops.len() as u32;
        let (mut lo, mut hi) = (1u32, u32::from(self.max_ttl) - 1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            self.stats.probes += 1;
            if mid <= depth {
                self.stats.time_ms += hops[mid as usize - 1].rtt_ms;
                lo = mid;
            } else {
                self.stats.timeouts += 1;
                self.stats.time_ms += PROBE_TIMEOUT_MS;
                hi = mid - 1;
            }
        }
        // One more probe at depth-1 re-confirms the penultimate hop (its
        // reply carries the name the suffix match needs).
        if depth >= 2 {
            self.stats.probes += 1;
            self.stats.time_ms += hops[depth as usize - 2].rtt_ms;
        }
        TraceOutcome::PathOnly { hops }
    }

    /// One logical probe at `ttl` under the fault model: retries with
    /// capped backoff on injected loss, single shot against true silence
    /// (silence never clears, so retrying it would only waste budget).
    /// Returns whether an answer arrived; charges probes/time/counters.
    fn probe_hop_with_retry(
        &mut self,
        hops: &[Hop],
        addr: u32,
        ttl: u32,
        model: &ProbeFaultModel,
        policy: &RetryPolicy,
    ) -> bool {
        let responds = ttl >= 1 && (ttl as usize) <= hops.len();
        for attempt in 0..policy.attempts() {
            self.stats.probes += 1;
            if responds && !model.hop_lost(addr, ttl, attempt) {
                self.stats.time_ms += hops[ttl as usize - 1].rtt_ms;
                return true;
            }
            self.stats.timeouts += 1;
            self.stats.time_ms += PROBE_TIMEOUT_MS;
            if !responds {
                return false;
            }
            if attempt + 1 < policy.attempts() {
                self.stats.retries += 1;
                self.stats.time_ms += policy.backoff_ms(attempt);
            }
        }
        self.stats.gave_up += 1;
        false
    }

    /// The optimized strategy under injected loss. Same shape as the
    /// clean run — destination probe first, then a binary search — but
    /// every probe can be lost, so the search finds the deepest
    /// *observably* responding TTL. The discovered path may therefore be
    /// truncated (naming shallower routers than the truth) and its
    /// penultimate hop may be wildcarded — the partial signatures §3.5's
    /// quorum matching is built to absorb.
    fn trace_optimized_faulty(
        &mut self,
        hops: Vec<Hop>,
        answers: bool,
        dest_rtt: f64,
        addr: Ipv4Addr,
        model: ProbeFaultModel,
        policy: RetryPolicy,
    ) -> TraceOutcome {
        let addr32 = u32::from(addr);
        if answers {
            for attempt in 0..policy.attempts() {
                self.stats.probes += 1;
                if !model.dest_lost(addr32, attempt) {
                    self.stats.time_ms += dest_rtt;
                    return TraceOutcome::Reached {
                        name: self.universe.dns_name(addr),
                        rtt_ms: dest_rtt,
                        hops,
                    };
                }
                self.stats.timeouts += 1;
                self.stats.time_ms += PROBE_TIMEOUT_MS;
                if attempt + 1 < policy.attempts() {
                    self.stats.retries += 1;
                    self.stats.time_ms += policy.backoff_ms(attempt);
                }
            }
            // All answers lost: fall back to path discovery as if the
            // destination were firewalled (the bounded-error case).
            self.stats.gave_up += 1;
        } else {
            self.stats.probes += 1;
            self.stats.timeouts += 1;
            self.stats.time_ms += PROBE_TIMEOUT_MS;
        }
        // Binary search over observable responses; a hop lost through
        // every retry is indistinguishable from silence and pushes the
        // discovered depth down.
        let (mut lo, mut hi) = (0u32, u32::from(self.max_ttl) - 1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.probe_hop_with_retry(&hops, addr32, mid, &model, &policy) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let found = lo as usize;
        let mut partial: Vec<Hop> = hops[..found].to_vec();
        if found >= 2 {
            // Re-confirm the penultimate hop; if it stays silent its name
            // is unknown — a wildcard in the signature, not an error.
            // analyze:allow(cast-truncation) found <= max_ttl.
            if !self.probe_hop_with_retry(&hops, addr32, found as u32 - 1, &model, &policy) {
                partial[found - 2].name = UNRESPONSIVE_HOP.to_string();
            }
        }
        TraceOutcome::PathOnly { hops: partial }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::UniverseConfig;

    fn universe() -> Universe {
        Universe::generate(UniverseConfig::small(7))
    }

    #[test]
    fn reachable_destination_resolves_in_one_probe() {
        let u = universe();
        let org = u.orgs().iter().find(|o| o.resolvable).unwrap();
        let addr = org.host_addr(0).unwrap();
        let mut tr = Traceroute::optimized(&u);
        let outcome = tr.trace(addr);
        assert!(matches!(outcome, TraceOutcome::Reached { .. }));
        assert_eq!(tr.stats().probes, 1);
        assert_eq!(tr.stats().traces, 1);
    }

    #[test]
    fn firewalled_destination_yields_path_only() {
        let u = universe();
        let org = u.orgs().iter().find(|o| !o.resolvable).unwrap();
        let addr = org.host_addr(0).unwrap();
        let mut tr = Traceroute::optimized(&u);
        let outcome = tr.trace(addr);
        match &outcome {
            TraceOutcome::PathOnly { hops } => {
                assert!(hops.last().unwrap().name.starts_with("gw"));
            }
            other => panic!("expected PathOnly, got {other:?}"),
        }
        // Binary search costs ~log2(30) + 2 probes, not ~90.
        assert!(tr.stats().probes <= 8, "{}", tr.stats().probes);
        // Suffix of length 2 ends with the org gateway.
        let suffix = outcome.path_suffix(2);
        assert_eq!(suffix.len(), 2);
        assert!(suffix[1].starts_with("gw"));
    }

    #[test]
    fn classic_costs_much_more() {
        let u = universe();
        let mut classic = Traceroute::classic(&u);
        let mut optimized = Traceroute::optimized(&u);
        for org in u.orgs().iter().take(60) {
            let addr = org.host_addr(0).unwrap();
            let a = classic.trace(addr);
            let b = optimized.trace(addr);
            // Same discovered path either way.
            assert_eq!(a.hops(), b.hops());
        }
        let (c, o) = (classic.stats(), optimized.stats());
        let probe_saving = 1.0 - o.probes as f64 / c.probes as f64;
        let time_saving = 1.0 - o.time_ms / c.time_ms;
        // The paper claims ≈90 % probe and ≈80 % time savings.
        assert!(probe_saving > 0.80, "probe saving {probe_saving}");
        assert!(time_saving > 0.60, "time saving {time_saving}");
    }

    #[test]
    fn resolvability_is_roughly_half() {
        let u = Universe::generate(UniverseConfig::paper(13));
        let mut tr = Traceroute::optimized(&u);
        let mut reached = 0usize;
        let mut total = 0usize;
        for org in u.orgs().iter().take(1500) {
            let addr = org.host_addr(0).unwrap();
            total += 1;
            if matches!(tr.trace(addr), TraceOutcome::Reached { .. }) {
                reached += 1;
            }
        }
        let frac = reached as f64 / total as f64;
        assert!((0.5..0.9).contains(&frac), "reached fraction {frac}");
        // Every trace resolved *something* (name or path): 100 % resolvability.
        assert_eq!(tr.stats().traces, total as u64);
    }

    #[test]
    fn unroutable_address() {
        let u = universe();
        let mut tr = Traceroute::optimized(&u);
        assert_eq!(
            tr.trace("9.9.9.9".parse().unwrap()),
            TraceOutcome::Unroutable
        );
        assert_eq!(tr.stats().probes, 1);
        let mut trc = Traceroute::classic(&u);
        assert_eq!(
            trc.trace("9.9.9.9".parse().unwrap()),
            TraceOutcome::Unroutable
        );
        assert_eq!(trc.stats().probes, CLASSIC_PROBES_PER_TTL as u64);
    }

    #[test]
    fn faulty_trace_is_deterministic_and_counts_recovery() {
        use crate::faults::{ProbeFaultModel, RetryPolicy};
        let u = universe();
        let model = ProbeFaultModel::new(11).hop_loss(0.3).dest_loss(0.3);
        let policy = RetryPolicy::default();
        let run = |_| {
            let mut tr = Traceroute::optimized(&u).with_faults(model, policy);
            let outcomes: Vec<TraceOutcome> = u
                .orgs()
                .iter()
                .take(80)
                .map(|o| tr.trace(o.host_addr(0).unwrap()))
                .collect();
            (outcomes, tr.stats())
        };
        let (a, sa) = run(0);
        let (b, sb) = run(1);
        assert_eq!(a, b, "same seed must reproduce outcomes bit-for-bit");
        assert_eq!(sa, sb);
        // Loss at these rates must actually trigger the recovery machinery.
        assert!(sa.retries > 0, "{sa:?}");
        assert!(sa.timeouts > 0, "{sa:?}");
        // A different seed shifts the injected faults.
        let other = ProbeFaultModel::new(12).hop_loss(0.3).dest_loss(0.3);
        let mut tr = Traceroute::optimized(&u).with_faults(other, policy);
        let c: Vec<TraceOutcome> = u
            .orgs()
            .iter()
            .take(80)
            .map(|o| tr.trace(o.host_addr(0).unwrap()))
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn lossless_fault_model_matches_clean_run() {
        use crate::faults::{ProbeFaultModel, RetryPolicy};
        let u = universe();
        let mut clean = Traceroute::optimized(&u);
        let mut armed = Traceroute::optimized(&u)
            .with_faults(ProbeFaultModel::lossless(), RetryPolicy::default());
        for org in u.orgs().iter().take(60) {
            let addr = org.host_addr(0).unwrap();
            // Same outcome (the lossless search can spend one extra probe
            // confirming the first hop, so costs are compared loosely).
            assert_eq!(clean.trace(addr), armed.trace(addr));
        }
        assert!(armed.stats().probes >= clean.stats().probes);
        assert_eq!(armed.stats().retries, 0);
        assert_eq!(armed.stats().gave_up, 0);
    }

    #[test]
    fn path_suffix_shorter_than_k() {
        let outcome = TraceOutcome::PathOnly {
            hops: vec![Hop {
                name: "only.example.net".into(),
                rtt_ms: 1.0,
            }],
        };
        assert_eq!(outcome.path_suffix(2), vec!["only.example.net"]);
        assert!(TraceOutcome::Unroutable.path_suffix(2).is_empty());
    }

    #[test]
    fn same_org_shares_path_suffix_different_orgs_do_not() {
        let u = universe();
        let mut tr = Traceroute::optimized(&u);
        let orgs: Vec<_> = u
            .orgs()
            .iter()
            .filter(|o| o.active_hosts >= 2)
            .take(2)
            .collect();
        let s1a = tr
            .trace(orgs[0].host_addr(0).unwrap())
            .path_suffix(2)
            .join(",");
        let s1b = tr
            .trace(orgs[0].host_addr(1).unwrap())
            .path_suffix(2)
            .join(",");
        let s2 = tr
            .trace(orgs[1].host_addr(0).unwrap())
            .path_suffix(2)
            .join(",");
        assert_eq!(s1a, s1b);
        assert_ne!(s1a, s2);
    }
}
