//! Simulated `nslookup` and the paper's domain-name suffix rule.

use std::net::Ipv4Addr;

use netclust_netgen::Universe;

use crate::faults::{ProbeFaultModel, RetryPolicy};

/// Milliseconds charged per DNS query (the paper observes one optimized
/// traceroute probe costs about the same as one nslookup).
pub const NSLOOKUP_MS: f64 = 80.0;

/// A DNS reverse-lookup client over the synthetic universe, with query
/// accounting.
///
/// Roughly half of all hosts resolve (firewalled orgs, DHCP pools and
/// unregistered ISP customers do not), matching §3.3's observation.
pub struct Nslookup<'u> {
    universe: &'u Universe,
    queries: u64,
    resolved: u64,
    time_ms: f64,
    retries: u64,
    gave_up: u64,
    faults: Option<(ProbeFaultModel, RetryPolicy)>,
}

impl<'u> Nslookup<'u> {
    /// Creates a client over `universe`.
    pub fn new(universe: &'u Universe) -> Self {
        Nslookup {
            universe,
            queries: 0,
            resolved: 0,
            time_ms: 0.0,
            retries: 0,
            gave_up: 0,
            faults: None,
        }
    }

    /// Arms a deterministic transient-failure model: each query can fail
    /// with the model's `lookup_loss` probability and is retried under
    /// `policy` with capped backoff. A name that genuinely does not
    /// resolve (NXDOMAIN) is authoritative and never retried.
    pub fn with_faults(mut self, model: ProbeFaultModel, policy: RetryPolicy) -> Self {
        self.faults = Some((model, policy));
        self
    }

    /// Reverse-resolves `addr` to a fully-qualified domain name.
    pub fn resolve(&mut self, addr: Ipv4Addr) -> Option<String> {
        let name = self.universe.dns_name(addr);
        let Some((model, policy)) = self.faults else {
            self.queries += 1;
            self.time_ms += NSLOOKUP_MS;
            if name.is_some() {
                self.resolved += 1;
            }
            return name;
        };
        // NXDOMAIN answers immediately; only positive answers can be
        // transiently lost.
        if name.is_none() {
            self.queries += 1;
            self.time_ms += NSLOOKUP_MS;
            return None;
        }
        let addr32 = u32::from(addr);
        for attempt in 0..policy.attempts() {
            self.queries += 1;
            self.time_ms += NSLOOKUP_MS;
            if !model.lookup_lost(addr32, attempt) {
                self.resolved += 1;
                return name;
            }
            if attempt + 1 < policy.attempts() {
                self.retries += 1;
                self.time_ms += policy.backoff_ms(attempt);
            }
        }
        self.gave_up += 1;
        None
    }

    /// Queries re-sent after an injected transient failure.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Lookups abandoned after exhausting the retry budget.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// Total queries issued.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Queries that returned a name.
    pub fn resolved(&self) -> u64 {
        self.resolved
    }

    /// Total simulated wall-clock time spent, in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.time_ms
    }

    /// Fraction of queries that resolved (0.0 before any query).
    pub fn resolve_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.resolved as f64 / self.queries as f64
        }
    }
}

/// The paper's non-trivial suffix of a fully-qualified domain name: the
/// last `n` dot-separated components, where `n = 3` if the name has at
/// least 4 components and `n = 2` otherwise (§3.3, footnote 7).
///
/// ```
/// use netclust_probe::name_suffix;
/// assert_eq!(name_suffix("macbeth.cs.wits.ac.za"), "wits.ac.za");
/// assert_eq!(name_suffix("foo.dummy.com"), "dummy.com");
/// assert_eq!(name_suffix("h1.cs.northfield3.edu"), "cs.northfield3.edu");
/// ```
pub fn name_suffix(name: &str) -> &str {
    let m = name.split('.').count();
    let n = if m >= 4 { 3 } else { 2 };
    if m <= n {
        return name;
    }
    // Byte offset of the start of the last n components.
    let mut idx = name.len();
    for _ in 0..n {
        idx = name[..idx].rfind('.').unwrap_or(0);
    }
    &name[idx + 1..]
}

/// Whether two names share a non-trivial suffix under the paper's rule.
pub fn suffixes_match(a: &str, b: &str) -> bool {
    name_suffix(a) == name_suffix(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_netgen::UniverseConfig;

    #[test]
    fn suffix_rule_matches_paper_examples() {
        // m = 5 → last 3 components.
        assert_eq!(name_suffix("macbeth.cs.wits.ac.za"), "wits.ac.za");
        assert_eq!(name_suffix("macabre.cs.wits.ac.za"), "wits.ac.za");
        assert!(suffixes_match(
            "macbeth.cs.wits.ac.za",
            "macabre.cs.wits.ac.za"
        ));
        // m = 3 → last 2 components.
        assert_eq!(name_suffix("foo.dummy.com"), "dummy.com");
        // m = 4 → last 3.
        assert_eq!(name_suffix("client-1.isp.dummy.net"), "isp.dummy.net");
        // Degenerate short names are their own suffix.
        assert_eq!(name_suffix("localhost"), "localhost");
        assert_eq!(name_suffix("a.b"), "a.b");
    }

    #[test]
    fn different_orgs_do_not_match() {
        assert!(!suffixes_match(
            "mailsrv1.wakefern.com",
            "firewall.commonhealthusa.com"
        ));
        assert!(!suffixes_match(
            "client-151-198-194-17.bellatlantic.net",
            "mailsrv1.wakefern.com"
        ));
    }

    #[test]
    fn resolver_counts_and_ratio() {
        let u = Universe::generate(UniverseConfig::small(7));
        let mut ns = Nslookup::new(&u);
        assert_eq!(ns.resolve_ratio(), 0.0);
        let mut hits = 0;
        let mut total = 0;
        for org in u.orgs().iter().take(200) {
            for i in 0..org.active_hosts.min(2) {
                total += 1;
                if ns.resolve(org.host_addr(i).unwrap()).is_some() {
                    hits += 1;
                }
            }
        }
        assert_eq!(ns.queries(), total);
        assert_eq!(ns.resolved(), hits);
        assert!(
            (0.3..0.75).contains(&ns.resolve_ratio()),
            "{}",
            ns.resolve_ratio()
        );
        assert!((ns.time_ms() - total as f64 * NSLOOKUP_MS).abs() < 1e-9);
    }

    #[test]
    fn transient_dns_failures_retry_and_give_up_deterministically() {
        use crate::faults::{ProbeFaultModel, RetryPolicy};
        let u = Universe::generate(UniverseConfig::small(7));
        let model = ProbeFaultModel::new(3).lookup_loss(0.4);
        let policy = RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        };
        let run = || {
            let mut ns = Nslookup::new(&u).with_faults(model, policy);
            let names: Vec<Option<String>> = u
                .orgs()
                .iter()
                .take(150)
                .map(|o| ns.resolve(o.host_addr(0).unwrap()))
                .collect();
            (names, ns.queries(), ns.retries(), ns.gave_up())
        };
        let (a, qa, ra, ga) = run();
        let (b, qb, rb, gb) = run();
        assert_eq!(a, b);
        assert_eq!((qa, ra, ga), (qb, rb, gb));
        // At a 40 % loss rate with one retry, both recovery and give-up
        // must be exercised.
        assert!(ra > 0);
        assert!(ga > 0);
        // The clean run resolves a superset of the lossy one.
        let mut clean = Nslookup::new(&u);
        for (org, lossy) in u.orgs().iter().take(150).zip(&a) {
            let name = clean.resolve(org.host_addr(0).unwrap());
            if lossy.is_some() {
                assert_eq!(lossy, &name);
            }
        }
    }

    #[test]
    fn same_org_hosts_share_suffix_different_orgs_do_not() {
        let u = Universe::generate(UniverseConfig::small(9));
        let mut ns = Nslookup::new(&u);
        let mut org_names: Vec<Vec<String>> = Vec::new();
        // Customer-hosting ISPs intentionally mix suffixes (delegated
        // provider space); same-suffix only holds for regular orgs.
        for org in u
            .orgs()
            .iter()
            .filter(|o| o.resolvable && !o.hosts_customers)
            .take(30)
        {
            let names: Vec<String> = (0..org.active_hosts.min(6))
                .filter_map(|i| ns.resolve(org.host_addr(i).unwrap()))
                .collect();
            if names.len() >= 2 {
                org_names.push(names);
            }
        }
        assert!(org_names.len() >= 5);
        for names in &org_names {
            for pair in names.windows(2) {
                assert!(suffixes_match(&pair[0], &pair[1]), "{pair:?}");
            }
        }
    }
}
