//! Probe tools: simulated `nslookup` and traceroute over a synthetic
//! universe, with full probe/time cost accounting.
//!
//! These replace the live-Internet measurements the paper's validation
//! stage (§3.3) performs:
//!
//! * [`Nslookup`] — reverse DNS with the paper's ≈50 % resolvability, plus
//!   the non-trivial [`name_suffix`] rule used for suffix matching,
//! * [`Traceroute`] — both the classic algorithm and the paper's optimized
//!   variant (single probe per TTL, initial `ttl = Max_ttl`), whose probe
//!   and waiting-time savings (≈90 % / ≈80 %) are measurable via
//!   [`ProbeStats`],
//! * [`ProbeFaultModel`] / [`RetryPolicy`] — a deterministic, seed-driven
//!   loss model (unresponsive hops, transient destination/DNS failures)
//!   with retry-and-capped-backoff recovery, so the lossy reality the
//!   paper's §3.5 alludes to is reproducible in tests.

#![warn(missing_docs)]

mod faults;
mod nslookup;
mod traceroute;

pub use faults::{
    sig_specificity, sigs_compatible, ProbeFaultModel, RetryPolicy, UNRESPONSIVE_HOP,
};
pub use nslookup::{name_suffix, suffixes_match, Nslookup, NSLOOKUP_MS};
pub use traceroute::{
    ProbeStats, TraceOutcome, Traceroute, CLASSIC_PROBES_PER_TTL, MAX_TTL, PROBE_TIMEOUT_MS,
};
