//! Deterministic probe fault model and retry policy.
//!
//! Real deployments of the paper's validation tools see unresponsive
//! routers, load-balanced paths, and transient DNS failures; the clean
//! simulation in [`crate::Traceroute`]/[`crate::Nslookup`] models none of
//! that. This module supplies the missing noise, *deterministically*:
//! every loss decision is a pure function of `(seed, address, ttl,
//! attempt)`, so a faulted run is bit-for-bit reproducible from its seed
//! and a retry of the same probe re-rolls only the attempt index.
//!
//! [`RetryPolicy`] is the paired recovery strategy: a bounded number of
//! retries with exponentially growing, capped backoff, matching what the
//! paper's unattended probing scripts would need in production.

use netclust_netgen::unit_f64;

/// Stream tags keeping hop / destination / DNS loss draws independent.
const STREAM_HOP: u64 = 0x4f50_0001;
const STREAM_DEST: u64 = 0x4f50_0002;
const STREAM_DNS: u64 = 0x4f50_0003;

/// Seed-driven probabilities of probe-level failures.
///
/// All probabilities are per *attempt*: a retry re-rolls the decision, so
/// transient failures can clear while a genuinely silent target (firewall)
/// stays silent regardless of the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeFaultModel {
    /// Seed every loss decision derives from.
    pub seed: u64,
    /// Probability a responding router hop drops one probe.
    pub hop_loss: f64,
    /// Probability a responding destination drops one probe.
    pub dest_loss: f64,
    /// Probability one DNS query transiently fails.
    pub lookup_loss: f64,
}

impl ProbeFaultModel {
    /// A model injecting no faults at all (the noise-free simulation).
    pub fn lossless() -> Self {
        ProbeFaultModel {
            seed: 0,
            hop_loss: 0.0,
            dest_loss: 0.0,
            lookup_loss: 0.0,
        }
    }

    /// A model with the given seed and all loss rates zero; set rates with
    /// the builder methods.
    pub fn new(seed: u64) -> Self {
        ProbeFaultModel {
            seed,
            ..Self::lossless()
        }
    }

    /// Sets the per-attempt router-hop loss probability.
    pub fn hop_loss(mut self, p: f64) -> Self {
        self.hop_loss = p;
        self
    }

    /// Sets the per-attempt destination loss probability.
    pub fn dest_loss(mut self, p: f64) -> Self {
        self.dest_loss = p;
        self
    }

    /// Sets the per-attempt DNS transient-failure probability.
    pub fn lookup_loss(mut self, p: f64) -> Self {
        self.lookup_loss = p;
        self
    }

    /// `true` when a probe toward `addr` at `ttl` (attempt `attempt`) is
    /// lost at a router hop.
    pub fn hop_lost(&self, addr: u32, ttl: u32, attempt: u32) -> bool {
        self.hop_loss > 0.0
            && unit_f64(
                self.seed,
                &[STREAM_HOP, addr as u64, ttl as u64, attempt as u64],
            ) < self.hop_loss
    }

    /// `true` when the destination `addr` drops attempt `attempt`.
    pub fn dest_lost(&self, addr: u32, attempt: u32) -> bool {
        self.dest_loss > 0.0
            && unit_f64(self.seed, &[STREAM_DEST, addr as u64, attempt as u64]) < self.dest_loss
    }

    /// `true` when DNS query attempt `attempt` for `addr` transiently fails.
    pub fn lookup_lost(&self, addr: u32, attempt: u32) -> bool {
        self.lookup_loss > 0.0
            && unit_f64(self.seed, &[STREAM_DNS, addr as u64, attempt as u64]) < self.lookup_loss
    }
}

/// Retry-with-capped-backoff policy for lossy probes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = single shot).
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: f64,
    /// Ceiling the exponential backoff saturates at.
    pub max_backoff_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 500.0,
            max_backoff_ms: 4000.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged before retry number `retry` (0-based): exponential
    /// doubling from the base, saturating at the cap.
    pub fn backoff_ms(&self, retry: u32) -> f64 {
        // analyze:allow(cast-truncation) clamped to 30, well inside i32.
        let factor = 2f64.powi(retry.min(30) as i32);
        (self.base_backoff_ms * factor).min(self.max_backoff_ms)
    }

    /// Total attempts (first try + retries).
    pub fn attempts(&self) -> u32 {
        self.max_retries + 1
    }
}

/// Placeholder name for a router hop that never answered: the partial-path
/// signatures of §3.5's self-correction treat it as a wildcard.
pub const UNRESPONSIVE_HOP: &str = "*";

/// Whether two `>`-joined path signatures are compatible: same number of
/// components and every pair of components equal or wildcarded
/// ([`UNRESPONSIVE_HOP`]). Signatures of different lengths are *not*
/// compatible — a loss-truncated path names the wrong routers, not unknown
/// ones.
pub fn sigs_compatible(a: &str, b: &str) -> bool {
    let (mut ia, mut ib) = (a.split('>'), b.split('>'));
    loop {
        match (ia.next(), ib.next()) {
            (None, None) => return true,
            (Some(x), Some(y)) => {
                if x != y && x != UNRESPONSIVE_HOP && y != UNRESPONSIVE_HOP {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

/// Number of concrete (non-wildcard) components in a signature — used to
/// pick the most informative representative of a compatible set.
pub fn sig_specificity(sig: &str) -> usize {
    sig.split('>').filter(|c| *c != UNRESPONSIVE_HOP).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let m = ProbeFaultModel::new(7).hop_loss(0.3);
        let mut lost = 0usize;
        for addr in 0..2000u32 {
            let a = m.hop_lost(addr, 5, 0);
            assert_eq!(a, m.hop_lost(addr, 5, 0));
            if a {
                lost += 1;
            }
        }
        let frac = lost as f64 / 2000.0;
        assert!((0.25..0.35).contains(&frac), "loss fraction {frac}");
        // A retry re-rolls: some lost first attempts succeed on attempt 1.
        let retried_ok = (0..2000u32)
            .filter(|&a| m.hop_lost(a, 5, 0) && !m.hop_lost(a, 5, 1))
            .count();
        assert!(retried_ok > 0);
        // Different seeds give different draws.
        let other = ProbeFaultModel::new(8).hop_loss(0.3);
        assert!((0..200u32).any(|a| m.hop_lost(a, 5, 0) != other.hop_lost(a, 5, 0)));
    }

    #[test]
    fn zero_rates_never_fire() {
        let m = ProbeFaultModel::lossless();
        for addr in 0..100u32 {
            assert!(!m.hop_lost(addr, 1, 0));
            assert!(!m.dest_lost(addr, 0));
            assert!(!m.lookup_lost(addr, 0));
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(0), 500.0);
        assert_eq!(p.backoff_ms(1), 1000.0);
        assert_eq!(p.backoff_ms(2), 2000.0);
        assert_eq!(p.backoff_ms(3), 4000.0);
        assert_eq!(p.backoff_ms(10), 4000.0);
        assert_eq!(p.attempts(), 3);
    }

    #[test]
    fn signature_compatibility() {
        assert!(sigs_compatible("a>b", "a>b"));
        assert!(sigs_compatible("*>b", "a>b"));
        assert!(sigs_compatible("a>*", "*>b"));
        assert!(!sigs_compatible("a>b", "a>c"));
        assert!(!sigs_compatible("a>b", "b"));
        assert!(!sigs_compatible("", "a"));
        assert_eq!(sig_specificity("a>*>c"), 2);
        assert_eq!(sig_specificity("*>*"), 0);
    }
}
