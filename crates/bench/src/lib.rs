//! Shared scaffolding for the experiment binaries (one per table/figure of
//! the paper) and the Criterion micro-benchmarks.
//!
//! Every binary prints a deterministic plain-text reproduction of its
//! exhibit. Workload sizes honor the `NETCLUST_SCALE` environment variable
//! (default `0.2`): presets carry the paper's published request/client
//! counts, scaled proportionally. `NETCLUST_SCALE=1` reproduces full paper
//! scale (slower); the shapes are scale-free.

#![warn(missing_docs)]

use std::collections::HashMap;

use netclust_netgen::{Universe, UniverseConfig};
use netclust_prefix::Ipv4Net;
use netclust_weblog::LogSpec;

/// Universe seed shared by every experiment.
pub const UNIVERSE_SEED: u64 = 0x5EED_2000;

/// Reads the global scale factor (`NETCLUST_SCALE`, default 0.2).
pub fn scale() -> f64 {
    std::env::var("NETCLUST_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(0.2)
}

/// A paper preset scaled by [`scale`].
pub fn scaled(spec: LogSpec) -> LogSpec {
    spec.scale(scale())
}

/// A universe sized to host logs with up to `max_clients` clients
/// (clusters average ~4–6 clients, plus headroom for special clusters).
pub fn universe_for(max_clients: u64) -> Universe {
    let orgs_needed = (max_clients / 2).max(2_500);
    let num_ases = (orgs_needed as usize / 18).max(150);
    Universe::generate(UniverseConfig {
        seed: UNIVERSE_SEED,
        num_ases,
        ..UniverseConfig::default()
    })
}

/// The universe all four scaled paper logs fit in.
pub fn paper_universe() -> Universe {
    let max = (180_000.0 * scale()) as u64; // Apache is the largest preset
    universe_for(max)
}

/// Builds the scaled Nagano log, its universe and the day-0 merged table —
/// the setup most experiments start from.
pub fn nagano_env() -> (Universe, netclust_weblog::Log, netclust_rtable::MergedTable) {
    let universe = paper_universe();
    let log = netclust_weblog::generate(&universe, &scaled(LogSpec::nagano(1)));
    let merged = netclust_netgen::standard_merged(&universe, 0);
    (universe, log, merged)
}

/// Prints a separator-delimited table with a header rule.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Downsamples a series to at most `n` points (first and last kept) for
/// compact figure output.
pub fn downsample<T: Clone>(series: &[T], n: usize) -> Vec<(usize, T)> {
    if series.is_empty() || n == 0 {
        return Vec::new();
    }
    if series.len() <= n {
        return series.iter().cloned().enumerate().collect();
    }
    let mut picks: Vec<usize> = (0..n).map(|i| i * (series.len() - 1) / (n - 1)).collect();
    picks.dedup();
    picks.into_iter().map(|i| (i, series[i].clone())).collect()
}

/// A naive linear-scan LPM baseline — ablation partner for the radix trie
/// (see `benches/trie_lpm.rs`).
pub struct LinearLpm {
    entries: Vec<Ipv4Net>,
}

impl LinearLpm {
    /// Builds from a prefix list.
    pub fn new(entries: Vec<Ipv4Net>) -> Self {
        LinearLpm { entries }
    }

    /// Longest-prefix match by scanning everything.
    pub fn lookup(&self, addr: u32) -> Option<Ipv4Net> {
        self.entries
            .iter()
            .filter(|n| n.contains_u32(addr))
            .max_by_key(|n| n.len())
            .copied()
    }
}

/// A per-length hash-map LPM baseline: probe lengths 32..=0 against one
/// `HashMap` per prefix length. The classic software-router alternative to
/// a trie.
pub struct ByLengthLpm {
    maps: Vec<HashMap<u32, Ipv4Net>>,
}

impl ByLengthLpm {
    /// Builds from a prefix list.
    pub fn new(entries: &[Ipv4Net]) -> Self {
        let mut maps: Vec<HashMap<u32, Ipv4Net>> = vec![HashMap::new(); 33];
        for &net in entries {
            maps[net.len() as usize].insert(net.addr_u32(), net);
        }
        ByLengthLpm { maps }
    }

    /// Longest-prefix match by probing each length, longest first.
    pub fn lookup(&self, addr: u32) -> Option<Ipv4Net> {
        for len in (0..=32u8).rev() {
            let map = &self.maps[len as usize];
            if map.is_empty() {
                continue;
            }
            let key = if len == 0 {
                0
            } else {
                addr & (u32::MAX << (32 - u32::from(len)))
            };
            if let Some(&net) = map.get(&key) {
                return Some(net);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclust_rtable::PrefixTrie;

    #[test]
    fn lpm_baselines_agree_with_trie() {
        let u = Universe::generate(UniverseConfig::small(3));
        let table =
            netclust_netgen::snapshot(&u, &netclust_netgen::VantageSpec::new("X", 0.8, 0.05), 0, 0);
        let prefixes = table.prefixes().to_vec();
        let trie: PrefixTrie<()> = prefixes.iter().map(|&n| (n, ())).collect();
        let linear = LinearLpm::new(prefixes.clone());
        let bylen = ByLengthLpm::new(&prefixes);
        for org in u.orgs().iter().take(300) {
            let addr = u32::from(org.host_addr(0).unwrap());
            let expect = trie.longest_match_u32(addr).map(|(n, _)| n);
            assert_eq!(linear.lookup(addr), expect);
            assert_eq!(bylen.lookup(addr), expect);
        }
    }

    #[test]
    fn downsample_keeps_ends() {
        let series: Vec<u64> = (0..1000).collect();
        let picked = downsample(&series, 10);
        assert_eq!(picked.len(), 10);
        assert_eq!(picked[0], (0, 0));
        assert_eq!(picked[9], (999, 999));
        assert_eq!(downsample(&series, 0).len(), 0);
        let short = downsample(&series[..3], 10);
        assert_eq!(short.len(), 3);
    }

    #[test]
    fn scale_default() {
        // Without the env var the default applies (tests run with a clean
        // env; guard against CI overrides).
        if std::env::var("NETCLUST_SCALE").is_err() {
            assert!((scale() - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.954), "95.4%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
