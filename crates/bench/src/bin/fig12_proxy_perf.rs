//! Figure 12: per-proxy cache performance of the top 100 Nagano client
//! clusters with infinite caches — (a) requests and (b) kilobytes per
//! cluster, (c) hit ratio and (d) byte-hit ratio at each proxy, all in
//! reverse order of requests, for both clustering approaches.
//!
//! Paper reference: the two approaches disagree sharply on per-proxy load
//! and hit ratios — the simple approach "fails to properly evaluate the
//! potential benefit of proxy caching".

use netclust_bench::{downsample, nagano_env, pct, print_table};
use netclust_cachesim::{simulate, top_proxy_report, SimConfig};
use netclust_core::{detect, strip_clients, AnomalyConfig, Clustering};

fn main() {
    let (_u, log, merged) = nagano_env();
    let pre = Clustering::network_aware(&log, &merged);
    let anomalous: Vec<std::net::Ipv4Addr> = detect(&log, &pre, &AnomalyConfig::default())
        .iter()
        .map(|d| d.addr)
        .collect();
    let log = strip_clients(&log, &anomalous);

    let aware = Clustering::network_aware(&log, &merged);
    let simple = Clustering::simple24(&log);
    let config = SimConfig::paper(u64::MAX); // infinite caches

    for clustering in [&aware, &simple] {
        let result = simulate(&log, clustering, &config);
        let rows_all = top_proxy_report(clustering, &result, 100);
        let rows: Vec<Vec<String>> = downsample(&rows_all, 20)
            .into_iter()
            .map(|(rank, (_, requests, kb, hit, byte_hit))| {
                vec![
                    (rank + 1).to_string(),
                    requests.to_string(),
                    kb.to_string(),
                    pct(hit),
                    pct(byte_hit),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Figure 12 [{}]: top-100 proxies, infinite cache (downsampled ranks)",
                clustering.method
            ),
            &[
                "rank",
                "(a) requests",
                "(b) KB",
                "(c) hit ratio",
                "(d) byte-hit ratio",
            ],
            &rows,
        );
        let top: Vec<_> = rows_all.iter().take(100).collect();
        let mean_hit = top.iter().map(|r| r.3).sum::<f64>() / top.len().max(1) as f64;
        let mean_req = top.iter().map(|r| r.1).sum::<u64>() / top.len().max(1) as u64;
        println!(
            "[{}] top-100 proxies: mean requests {}, mean hit ratio {}",
            clustering.method,
            mean_req,
            pct(mean_hit)
        );
    }
    println!("\npaper: per-proxy request volumes and hit ratios differ greatly between approaches");
}
