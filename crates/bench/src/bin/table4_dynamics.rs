//! Table 4: the effect of AADS routing-table dynamics on cluster
//! identification, over periods of 0, 1, 4, 7 and 14 days, for the Apache,
//! EW3, Nagano and Sun logs.
//!
//! Paper reference (full scale): AADS holds 16,595–17,288 entries over the
//! period with a maximum effect of 711–1,404 (≈4–8 %); per-log effects
//! stay under ~3 % of clusters, and under ~5 % of busy clusters — BGP
//! dynamics barely perturbs clustering.

use netclust_bench::{paper_universe, print_table, scaled};
use netclust_core::{dynamics_analysis, threshold_busy, Clustering, LogUnderStudy};
use netclust_netgen::{standard_merged, VantageSpec};
use netclust_weblog::{generate, LogSpec};

fn main() {
    let universe = paper_universe();
    let merged = standard_merged(&universe, 0);

    // Cluster all four logs and find their busy subsets.
    let logs: Vec<(String, Clustering)> = LogSpec::paper_presets(1)
        .into_iter()
        .map(|spec| {
            let log = generate(&universe, &scaled(spec));
            let clustering = Clustering::network_aware(&log, &merged);
            (log.name.clone(), clustering)
        })
        .collect();
    let busies: Vec<Vec<usize>> = logs
        .iter()
        .map(|(_, c)| threshold_busy(c, 0.7).busy)
        .collect();
    let studies: Vec<LogUnderStudy<'_>> = logs
        .iter()
        .zip(&busies)
        .map(|((name, clustering), busy)| LogUnderStudy {
            name: name.clone(),
            clustering,
            busy,
        })
        .collect();

    let spec = VantageSpec::new("AADS", 0.23, 0.06);
    let periods = [0u32, 1, 4, 7, 14];
    let rows_data = dynamics_analysis(&universe, &spec, &studies, &periods, 12);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let period_cells =
        |f: &dyn Fn(usize) -> String| -> Vec<String> { (0..periods.len()).map(f).collect() };
    let mut push_row = |label: String, cells: Vec<String>| {
        let mut r = vec![label];
        r.extend(cells);
        rows.push(r);
    };
    push_row(
        "AADS prefix".into(),
        period_cells(&|i| rows_data[i].table_size.to_string()),
    );
    push_row(
        "Maximum effect".into(),
        period_cells(&|i| rows_data[i].max_effect.to_string()),
    );
    for (li, (name, clustering)) in logs.iter().enumerate() {
        push_row(
            format!("{name} prefix (total {})", clustering.len()),
            period_cells(&|i| rows_data[i].logs[li].prefixes_in_table.to_string()),
        );
        push_row(
            "  maximum effect".into(),
            period_cells(&|i| rows_data[i].logs[li].prefix_effect.to_string()),
        );
        push_row(
            format!("{name} busy clusters (total {})", busies[li].len()),
            period_cells(&|i| rows_data[i].logs[li].busy_in_table.to_string()),
        );
        push_row(
            "  maximum effect".into(),
            period_cells(&|i| rows_data[i].logs[li].busy_effect.to_string()),
        );
    }
    let headers: Vec<String> = std::iter::once("period (days)".to_string())
        .chain(periods.iter().map(|p| p.to_string()))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Table 4: the effect of AADS dynamics on cluster identifying",
        &headers_ref,
        &rows,
    );

    for row in &rows_data {
        let frac = row.max_effect as f64 / row.table_size.max(1) as f64;
        println!(
            "period {:>2}: max effect = {:.1}% of table",
            row.period_days,
            frac * 100.0
        );
    }
    println!("paper: 4.3% (period 0) growing to 8.1% (period 14); <3% of client clusters affected");
}
