//! §3.5: self-correction and adaptation on the Nagano log.
//!
//! Unclustered clients (~0.1 %) are absorbed or become new clusters;
//! same-signature clusters merge (too-small repair); mixed clusters split
//! (too-large repair). Ground-truth org purity improves accordingly.

use netclust_bench::{nagano_env, pct};
use netclust_core::{org_purity, self_correct, Clustering, CorrectionConfig};

fn main() {
    let (universe, log, merged) = nagano_env();
    let clustering = Clustering::network_aware(&log, &merged);

    println!("== §3.5 self-correction (nagano) ==");
    println!(
        "before: {} clusters, {} unclustered clients, coverage {}",
        clustering.len(),
        clustering.unclustered.len(),
        pct(clustering.coverage())
    );
    println!(
        "before: org purity {}",
        pct(org_purity(&universe, &clustering))
    );

    for r in [1usize, 3, 8] {
        let report = self_correct(
            &universe,
            &log,
            &clustering,
            &CorrectionConfig {
                samples_per_cluster: r,
                seed: 0xC0,
                ..CorrectionConfig::default()
            },
        );
        println!("\n-- samples per cluster r = {r} --");
        println!("clusters after      : {}", report.clustering.len());
        println!(
            "coverage after      : {}",
            pct(report.clustering.coverage())
        );
        println!(
            "org purity after    : {}",
            pct(org_purity(&universe, &report.clustering))
        );
        println!("absorbed unclustered: {}", report.absorbed);
        println!("new singleton groups: {}", report.new_from_unclustered);
        println!("clusters merged away: {}", report.merged_away);
        println!("clusters split      : {}", report.split);
        println!(
            "probes spent        : {} ({} traces)",
            report.probe_stats.probes, report.probe_stats.traces
        );
    }
    println!(
        "\npaper: periodic traceroute sampling fixes unidentified clients and raises accuracy;"
    );
    println!("       larger r catches more mixed clusters at higher probe cost");
}
