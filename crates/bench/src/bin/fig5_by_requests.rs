//! Figure 5: the same Nagano series as Figure 4, re-sorted in reverse
//! order of number of requests — (a) requests, (b) clients, (c) URLs.
//!
//! Paper reference: busy clusters usually hold many clients and touch many
//! URLs, but some busy clusters have very few clients (and may touch few
//! URLs) — again the spider/proxy signal.

use netclust_bench::{downsample, nagano_env, print_table};
use netclust_core::{Clustering, Distributions};

fn main() {
    let (_u, log, merged) = nagano_env();
    let clustering = Clustering::network_aware(&log, &merged);
    let d = Distributions::of(&clustering);

    let requests = Distributions::series_in(&d.requests, &d.by_requests);
    let clients = Distributions::series_in(&d.clients, &d.by_requests);
    let urls = Distributions::series_in(&d.urls, &d.by_requests);

    let rows: Vec<Vec<String>> = downsample(&requests, 24)
        .into_iter()
        .map(|(rank, r)| {
            vec![
                (rank + 1).to_string(),
                r.to_string(),
                clients[rank].to_string(),
                urls[rank].to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 5: clusters in reverse order of #requests (downsampled ranks)",
        &["rank", "(a) requests", "(b) clients", "(c) unique URLs"],
        &rows,
    );

    // Busy single-client clusters (the Nagano proxy cluster issued 77,311
    // requests from one client at full scale).
    let busy_small: Vec<(u64, u64)> = d
        .by_requests
        .iter()
        .take(20)
        .map(|&i| (d.requests[i], d.clients[i]))
        .filter(|&(_, c)| c <= 2)
        .collect();
    println!("\nbusy clusters with <=2 clients among the top 20: {busy_small:?}");
    println!("proxy ground truth: {:?}", log.truth.proxies);
    println!("paper: some busy clusters have very few clients — suspected proxies");
}
