//! Table 1: the collection of routing tables — 12 BGP vantage points plus
//! 2 registry network dumps, with entry counts.
//!
//! Paper reference: sizes range from CANET's 1.7 K to ARIN's 300 K; the
//! union holds 391,497 unique prefix/netmask entries. Our synthetic
//! vantage visibilities are calibrated to the same relative sizes.

use netclust_bench::{paper_universe, print_table};
use netclust_netgen::standard_collection;
use netclust_rtable::{MergedTable, TableKind};

fn main() {
    let universe = paper_universe();
    let tables = standard_collection(&universe, 0, 0);

    let rows: Vec<Vec<String>> = tables
        .iter()
        .map(|t| {
            vec![
                t.name.clone(),
                t.date.clone(),
                t.len().to_string(),
                match t.kind {
                    TableKind::Bgp => "BGP routing table snapshot".to_string(),
                    TableKind::NetworkDump => "IP network dump".to_string(),
                },
            ]
        })
        .collect();
    print_table(
        "Table 1: our collection of routing tables",
        &["name", "date", "entries", "comments"],
        &rows,
    );

    let merged = MergedTable::merge(tables.iter());
    println!(
        "\nunion: {} unique prefixes ({} BGP tier + {} registry tier) from {} sources",
        merged.len(),
        merged.bgp_len(),
        merged.dump_len(),
        merged.source_names().len(),
    );
    let largest = tables
        .iter()
        .filter(|t| t.kind == TableKind::Bgp)
        .map(|t| t.len())
        .max()
        .unwrap();
    println!(
        "largest single BGP table: {largest} entries; union adds {} more routed prefixes",
        merged.bgp_len().saturating_sub(largest),
    );
    println!("paper: 14 sources, 391,497 unique entries; no single table is complete");
}
