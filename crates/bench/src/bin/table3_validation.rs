//! Table 3: client-cluster validation of the Apache, Nagano and Sun logs
//! via DNS nslookup and optimized traceroute over 1 % cluster samples.
//!
//! Paper reference (full scale): Nagano samples 111 clusters / 307
//! clients; nslookup resolves ~50 % of clients and fails 5 clusters
//! (95.4 % pass); traceroute resolves everyone and fails 12; only 57 of
//! 111 sampled clusters are /24s, so the simple approach passes just
//! 48.6 %. The optimized traceroute saves ~90 % of probes and ~80 % of
//! waiting time versus the classic tool.

use netclust_bench::{paper_universe, pct, print_table, scaled};
use netclust_core::{validate, Clustering, SamplePlan, ValidationReport};
use netclust_netgen::standard_merged;
use netclust_probe::{TraceOutcome, Traceroute};
use netclust_weblog::{generate, LogSpec};

fn main() {
    let universe = paper_universe();
    let merged = standard_merged(&universe, 0);
    // The paper samples 1% of full-scale cluster populations (111 clusters
    // for Nagano). At NETCLUST_SCALE < 1 we match the paper's sample *size*
    // rather than its fraction, so the mis-identification estimate carries
    // comparable statistical weight.
    let plan = SamplePlan {
        fraction: 0.01 / netclust_bench::scale().min(1.0),
        min_clusters: 100,
        ..SamplePlan::default()
    };

    let mut reports: Vec<(String, ValidationReport)> = Vec::new();
    for spec in [LogSpec::apache(1), LogSpec::nagano(1), LogSpec::sun(1)] {
        let log = generate(&universe, &scaled(spec));
        let clustering = Clustering::network_aware(&log, &merged);
        let report = validate(&universe, &clustering, &plan);
        reports.push((log.name.clone(), report));
    }

    let row = |label: &str, f: &dyn Fn(&ValidationReport) -> String| -> Vec<String> {
        let mut r = vec![label.to_string()];
        r.extend(reports.iter().map(|(_, rep)| f(rep)));
        r
    };
    let headers: Vec<&str> = std::iter::once("server log")
        .chain(reports.iter().map(|(n, _)| n.as_str()))
        .collect();
    let rows = vec![
        row("total client clusters", &|r| r.total_clusters.to_string()),
        row("sampled client clusters", &|r| {
            r.sampled_clusters.to_string()
        }),
        row("sampled clients", &|r| r.sampled_clients.to_string()),
        row("prefix length range", &|r| {
            format!("{} - {}", r.prefix_len_range.0, r.prefix_len_range.1)
        }),
        row("clusters of prefix length 24", &|r| {
            r.len24_clusters.to_string()
        }),
        row("[nslookup] reachable clients", &|r| {
            r.nslookup.reachable_clients.to_string()
        }),
        row("[nslookup] mis-identified clusters", &|r| {
            r.nslookup.misidentified.to_string()
        }),
        row("[nslookup] mis-identified non-US", &|r| {
            r.nslookup.misidentified_non_us.to_string()
        }),
        row("[nslookup] pass rate", &|r| pct(r.nslookup_pass_rate())),
        row("[traceroute] reachable clients", &|r| {
            r.traceroute.reachable_clients.to_string()
        }),
        row("[traceroute] mis-identified clusters", &|r| {
            r.traceroute.misidentified.to_string()
        }),
        row("[traceroute] mis-identified non-US", &|r| {
            r.traceroute.misidentified_non_us.to_string()
        }),
        row("[traceroute] pass rate", &|r| pct(r.traceroute_pass_rate())),
        row("[ground truth] mis-identified", &|r| {
            r.truth_misidentified.to_string()
        }),
        row("simple approach pass rate (/24 rule)", &|r| {
            pct(r.simple_pass_rate())
        }),
    ];
    print_table("Table 3: client cluster validation", &headers, &rows);
    println!("\npaper: network-aware passes >90% (both tests); simple approach ~50%; nslookup resolves ~50% of clients");

    // Optimized vs classic traceroute cost (§3.3's savings claims),
    // measured over the Nagano sample's clients.
    let log = generate(&universe, &scaled(LogSpec::nagano(1)));
    let clustering = Clustering::network_aware(&log, &merged);
    let clients: Vec<std::net::Ipv4Addr> = clustering
        .clusters
        .iter()
        .step_by(100.max(clustering.len() / 300))
        .flat_map(|c| c.clients.iter().take(3).map(|cl| cl.addr))
        .collect();
    let mut classic = Traceroute::classic(&universe);
    let mut optimized = Traceroute::optimized(&universe);
    let mut reached = 0usize;
    for &addr in &clients {
        classic.trace(addr);
        if matches!(optimized.trace(addr), TraceOutcome::Reached { .. }) {
            reached += 1;
        }
    }
    let (c, o) = (classic.stats(), optimized.stats());
    println!(
        "\n== Optimized traceroute savings ({} targets) ==",
        clients.len()
    );
    println!(
        "classic  : {} probes, {:.1} s waiting",
        c.probes,
        c.time_ms / 1000.0
    );
    println!(
        "optimized: {} probes, {:.1} s waiting",
        o.probes,
        o.time_ms / 1000.0
    );
    println!(
        "savings  : {} of probes, {} of time (paper: ~90% probes, ~80% time)",
        pct(1.0 - o.probes as f64 / c.probes as f64),
        pct(1.0 - o.time_ms / c.time_ms),
    );
    println!(
        "destination reachable in one probe: {} (paper: ~50%)",
        pct(reached as f64 / clients.len() as f64)
    );
}
