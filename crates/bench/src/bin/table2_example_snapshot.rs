//! Table 2: an example snapshot of a (VBNS-like) BGP routing table, with
//! prefix, destination description, next hop, and AS path columns.

use netclust_bench::{paper_universe, print_table};
use netclust_netgen::{snapshot_with_attrs, VantageSpec};

fn main() {
    let universe = paper_universe();
    let spec = VantageSpec::new("VBNS", 0.025, 0.10);
    let table = snapshot_with_attrs(&universe, &spec, 0, 0);

    let rows: Vec<Vec<String>> = table
        .routes()
        .take(12)
        .map(|(net, attrs)| {
            vec![
                net.to_string(),
                attrs.description,
                attrs.next_hop,
                attrs
                    .as_path
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
                    + " (IGP)",
            ]
        })
        .collect();
    print_table(
        "Table 2: example snapshot of a BGP routing table (VBNS-like)",
        &["prefix", "prefix description", "next hop", "AS path"],
        &rows,
    );
    println!(
        "\n(total {} entries in this snapshot; first 12 shown)",
        table.len()
    );
    println!("paper: table rows look like `12.0.48.0/20  Harvard University  cs.cht.vbns.net  1742 (IGP)`");
}
