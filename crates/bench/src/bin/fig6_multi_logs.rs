//! Figure 6: cross-log comparison of cluster distributions for the
//! Apache, EW3, Nagano and Sun logs — clients and requests per cluster, in
//! reverse order of clients ((a),(b)) and of requests ((c),(d)).
//!
//! Paper reference: every observation made on the Nagano log (heavy tails,
//! busy small clusters, suspected spiders/proxies) holds on all four logs.

use netclust_bench::{paper_universe, pct, print_table, scaled};
use netclust_core::{Clustering, Distributions};
use netclust_netgen::standard_merged;
use netclust_weblog::{generate, LogSpec};

fn main() {
    let universe = paper_universe();
    let merged = standard_merged(&universe, 0);

    let mut rows = Vec::new();
    for spec in LogSpec::paper_presets(1) {
        let log = generate(&universe, &scaled(spec));
        let clustering = Clustering::network_aware(&log, &merged);
        let d = Distributions::of(&clustering);
        let top = |order: &[usize], series: &[u64], k: usize| -> String {
            order
                .iter()
                .take(k)
                .map(|&i| series[i].to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        rows.push(vec![
            log.name.clone(),
            clustering.len().to_string(),
            clustering.client_count().to_string(),
            log.requests.len().to_string(),
            pct(clustering.coverage()),
            top(&d.by_clients, &d.clients, 3),
            top(&d.by_requests, &d.requests, 3),
            pct(Distributions::top_percent_share(&d.requests, 1.0)),
        ]);
    }
    print_table(
        "Figure 6: cluster distributions across four logs (summary series)",
        &[
            "log",
            "clusters",
            "clients",
            "requests",
            "coverage",
            "top3 by clients",
            "top3 by requests",
            "top-1% req share",
        ],
        &rows,
    );
    println!("\npaper: all four logs show the same shapes; spiders/proxies visible in (b)/(d)");
}
