//! Figure 3: cumulative distributions over Nagano client clusters —
//! (a) number of clients per cluster, (b) number of requests per cluster.
//!
//! Paper reference: >95 % of clusters have <100 clients; ~90 % issue
//! <1,000 requests; the request distribution is more heavy-tailed than the
//! client distribution (suspected proxies/spiders live in that tail).

use netclust_bench::{nagano_env, pct, print_table};
use netclust_core::{cdf, cdf_at, Clustering, Distributions};

fn main() {
    let (_u, log, merged) = nagano_env();
    let clustering = Clustering::network_aware(&log, &merged);
    let d = Distributions::of(&clustering);

    for (title, series, marks) in [
        (
            "Figure 3(a): CDF of clients per cluster",
            &d.clients,
            vec![1u64, 2, 5, 10, 20, 50, 100, 500, 2000],
        ),
        (
            "Figure 3(b): CDF of requests per cluster",
            &d.requests,
            vec![1, 10, 100, 1_000, 10_000, 100_000],
        ),
    ] {
        let points = cdf(series);
        let rows: Vec<Vec<String>> = marks
            .iter()
            .map(|&x| vec![x.to_string(), pct(cdf_at(&points, x))])
            .collect();
        print_table(title, &["x", "fraction of clusters <= x"], &rows);
    }

    println!(
        "\nfraction of clusters with <100 clients: {} (paper: >95%)",
        pct(d.fraction_clusters_with_clients_below(100))
    );
    println!(
        "fraction of clusters with <1000 requests: {} (paper: ~90%)",
        pct(d.fraction_clusters_with_requests_below(1_000))
    );
    println!(
        "top-1% share: clients {} vs requests {} (paper: requests more heavy-tailed)",
        pct(Distributions::top_percent_share(&d.clients, 1.0)),
        pct(Distributions::top_percent_share(&d.requests, 1.0)),
    );
}
