//! Figure 7 (and the §3.3 comparison text): network-aware vs simple
//! cluster distributions on the Nagano log.
//!
//! Paper reference (full scale): network-aware yields 9,853 clusters vs
//! 23,523 for the simple approach; the largest network-aware cluster holds
//! 1,343 hosts (134,963 requests, 1.15 % of the log) vs 63 hosts (9,662
//! requests, 0.08 %) for simple; simple clusters cap at 256 clients by
//! construction and have smaller mean and variance.

use netclust_bench::{downsample, nagano_env, print_table};
use netclust_core::{Clustering, Distributions, Summary};

fn main() {
    let (_u, log, merged) = nagano_env();
    let aware = Clustering::network_aware(&log, &merged);
    let simple = Clustering::simple24(&log);
    let classful = Clustering::classful(&log);

    let mut rows = Vec::new();
    for clustering in [&aware, &simple, &classful] {
        let d = Distributions::of(clustering);
        let sizes = Summary::of(&d.clients).unwrap();
        let reqs = Summary::of(&d.requests).unwrap();
        let largest = clustering.largest_by_clients().unwrap();
        rows.push(vec![
            clustering.method.clone(),
            clustering.len().to_string(),
            format!("{:.2}", sizes.mean),
            format!("{:.1}", sizes.variance.sqrt()),
            largest.client_count().to_string(),
            largest.requests.to_string(),
            format!(
                "{:.2}%",
                100.0 * largest.requests as f64 / log.requests.len() as f64
            ),
            format!("{:.1}", reqs.mean),
        ]);
    }
    print_table(
        "Figure 7 summary: network-aware vs simple (vs classful) on nagano",
        &[
            "method",
            "clusters",
            "mean clients",
            "sd clients",
            "largest (clients)",
            "its requests",
            "req share",
            "mean requests",
        ],
        &rows,
    );

    // The rank series themselves (downsampled), network-aware (dotted in
    // the paper) vs simple (solid).
    let da = Distributions::of(&aware);
    let ds = Distributions::of(&simple);
    let a_clients = Distributions::series_in(&da.clients, &da.by_clients);
    let s_clients = Distributions::series_in(&ds.clients, &ds.by_clients);
    let a_reqs = Distributions::series_in(&da.requests, &da.by_requests);
    let s_reqs = Distributions::series_in(&ds.requests, &ds.by_requests);
    let rows: Vec<Vec<String>> = downsample(&a_clients, 16)
        .into_iter()
        .map(|(rank, v)| {
            let frac = rank as f64 / a_clients.len().max(1) as f64;
            let s_rank = ((frac * s_clients.len() as f64) as usize).min(s_clients.len() - 1);
            vec![
                format!("{:.0}%", frac * 100.0),
                v.to_string(),
                s_clients[s_rank].to_string(),
                a_reqs[((frac * a_reqs.len() as f64) as usize).min(a_reqs.len() - 1)].to_string(),
                s_reqs[s_rank.min(s_reqs.len() - 1)].to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 7 series at matching rank percentiles",
        &[
            "rank pct",
            "(a) aware clients",
            "simple clients",
            "(c) aware requests",
            "simple requests",
        ],
        &rows,
    );
    println!("\npaper: simple produces ~2.4x more clusters, capped at 256 clients, with smaller means/variance");
}
