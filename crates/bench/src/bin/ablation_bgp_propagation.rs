//! Ablation: statistical vantage sampling vs structural BGP propagation.
//!
//! The paper consumes real BGP snapshots; our default substitute samples
//! route visibility per site statistically. This ablation swaps in the
//! `netclust-bgpsim` alternative — a three-tier Gao-Rexford AS topology
//! with valley-free per-prefix propagation and day-scale link failures —
//! and verifies the downstream results (coverage, validation pass rates,
//! union-over-single-table benefit) are insensitive to which substitution
//! is used, i.e. the reproduction does not hinge on the statistical model.

use netclust_bench::{nagano_env, pct, print_table};
use netclust_bgpsim::{PropagationModel, Topology};
use netclust_core::{validate, Clustering, SamplePlan};
use netclust_netgen::registry_dump;
use netclust_rtable::MergedTable;

fn main() {
    let (universe, log, statistical_merged) = nagano_env();

    // Build propagated tables: 12 vantage ASes spread across tiers, feed
    // quality mirroring Table 1's size spread.
    let topology = Topology::generate(&universe, 0xB6);
    let model = PropagationModel::new(&universe, topology, 0xB6);
    let topo = model.topology();
    let mut by_tier: Vec<Vec<u32>> = vec![Vec::new(); 4];
    // analyze:allow(cast-truncation) AS ids are u32 by design.
    for a in 0..topo.len() as u32 {
        by_tier[topo.tier[a as usize] as usize].push(a);
    }
    let feeds = [
        ("AADS", 1, 0.23),
        ("AT&T-BGP", 1, 0.97),
        ("AT&T-Forw", 1, 0.87),
        ("CANET", 3, 0.023),
        ("CERFNET", 2, 0.67),
        ("MAE-EAST", 2, 0.62),
        ("MAE-WEST", 2, 0.41),
        ("OREGON", 1, 0.94),
        ("PACBELL", 2, 0.34),
        ("PAIX", 3, 0.14),
        ("SINGAREN", 2, 0.91),
        ("VBNS", 3, 0.025),
    ];
    let vantages: Vec<(String, u32, f64)> = feeds
        .iter()
        .enumerate()
        .map(|(i, &(name, tier, vis))| {
            let pool = &by_tier[tier];
            (name.to_string(), pool[i % pool.len()], vis)
        })
        .collect();
    let mut tables = model.vantage_tables(&vantages, 0, 0);
    tables.push(registry_dump(&universe, "ARIN", 0.97));
    tables.push(registry_dump(&universe, "NLANR", 0.62));
    let propagated_merged = MergedTable::merge(tables.iter());

    let rows: Vec<Vec<String>> = tables
        .iter()
        .map(|t| vec![t.name.clone(), t.len().to_string()])
        .collect();
    print_table("Propagated vantage tables", &["vantage", "entries"], &rows);
    println!(
        "union: {} BGP + {} registry prefixes",
        propagated_merged.bgp_len(),
        propagated_merged.dump_len()
    );

    // Downstream comparison.
    let mut rows = Vec::new();
    for (label, merged) in [
        ("statistical", &statistical_merged),
        ("propagated", &propagated_merged),
    ] {
        let clustering = Clustering::network_aware(&log, merged);
        let report = validate(&universe, &clustering, &SamplePlan::default());
        rows.push(vec![
            label.to_string(),
            clustering.len().to_string(),
            pct(clustering.coverage()),
            pct(report.nslookup_pass_rate()),
            pct(report.traceroute_pass_rate()),
            pct(report.truth_pass_rate()),
        ]);
    }
    print_table(
        "Clustering under the two BGP substitutions (nagano)",
        &[
            "table model",
            "clusters",
            "coverage",
            "nslookup pass",
            "traceroute pass",
            "truth pass",
        ],
        &rows,
    );
    println!("\nexpected: both models give ~99.9% coverage and >90% validation pass —");
    println!("the reproduction's conclusions do not depend on the visibility model");
}
