//! Figure 4: Nagano cluster distributions in reverse order of number of
//! clients — (a) clients, (b) requests, (c) unique URLs per cluster.
//! Points at the same rank refer to the same cluster.
//!
//! Paper reference: larger clusters usually issue more requests and touch
//! more URLs, but a few relatively small clusters issue ~1 % of all
//! requests and touch ~20 % of all URLs — the spider/proxy signature.

use netclust_bench::{downsample, nagano_env, print_table};
use netclust_core::{Clustering, Distributions};

fn main() {
    let (_u, log, merged) = nagano_env();
    let clustering = Clustering::network_aware(&log, &merged);
    let d = Distributions::of(&clustering);

    let clients = Distributions::series_in(&d.clients, &d.by_clients);
    let requests = Distributions::series_in(&d.requests, &d.by_clients);
    let urls = Distributions::series_in(&d.urls, &d.by_clients);

    let rows: Vec<Vec<String>> = downsample(&clients, 24)
        .into_iter()
        .map(|(rank, c)| {
            vec![
                (rank + 1).to_string(),
                c.to_string(),
                requests[rank].to_string(),
                urls[rank].to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 4: clusters in reverse order of #clients (downsampled ranks)",
        &["rank", "(a) clients", "(b) requests", "(c) unique URLs"],
        &rows,
    );

    // Paper's observation: some small clusters issue a disproportionate
    // share of requests / URLs.
    let total_requests: u64 = d.requests.iter().sum();
    let total_urls = log.accessed_url_count() as f64;
    let small_heavy = d
        .by_clients
        .iter()
        .rev()
        .take(d.by_clients.len() / 2) // the smaller half
        .map(|&i| (d.clients[i], d.requests[i], d.urls[i]))
        .max_by_key(|&(_, r, _)| r);
    if let Some((c, r, u)) = small_heavy {
        println!(
            "\nheaviest small cluster: {c} clients, {r} requests ({:.2}% of all), {u} URLs ({:.1}% of accessed)",
            100.0 * r as f64 / total_requests as f64,
            100.0 * u as f64 / total_urls,
        );
    }
    println!("paper: small clusters can reach ~1% of requests and ~20% of URLs");
}
