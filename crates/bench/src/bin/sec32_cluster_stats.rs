//! §3.2.2: headline clustering statistics on the Nagano log, plus the
//! table-union ablation behind the 99 % → 99.9 % coverage claim.
//!
//! Paper reference (full scale): 11,665,713 requests from 59,582 clients
//! over 33,875 URLs group into 9,853 clusters; cluster sizes span 1–1,343
//! clients, 1–339,632 requests, 1–8,095 unique URLs; >99.9 % of clients
//! are clusterable with the full table union, ~99 % with BGP tables alone.

use netclust_bench::{nagano_env, pct, print_table, scale};
use netclust_core::Clustering;
use netclust_netgen::{registry_dump, standard_vantages};
use netclust_rtable::MergedTable;

fn main() {
    println!("scale factor: {}", scale());
    let (universe, log, merged) = nagano_env();

    let clustering = Clustering::network_aware(&log, &merged);
    let sizes: Vec<u64> = clustering
        .clusters
        .iter()
        .map(|c| c.client_count() as u64)
        .collect();
    let reqs: Vec<u64> = clustering.clusters.iter().map(|c| c.requests).collect();
    let urls: Vec<u64> = clustering
        .clusters
        .iter()
        .map(|c| c.unique_urls as u64)
        .collect();
    let minmax = |v: &[u64]| {
        (
            v.iter().min().copied().unwrap_or(0),
            v.iter().max().copied().unwrap_or(0),
        )
    };

    println!("\n== §3.2.2 cluster statistics (nagano) ==");
    println!("requests            : {}", log.requests.len());
    println!("clients             : {}", clustering.client_count());
    println!("unique URLs accessed: {}", log.accessed_url_count());
    println!("client clusters     : {}", clustering.len());
    println!(
        "coverage            : {} clustered ({} unclustered clients)",
        pct(clustering.coverage()),
        clustering.unclustered.len()
    );
    let (lo, hi) = minmax(&sizes);
    println!("cluster size range  : {lo} - {hi} clients");
    let (lo, hi) = minmax(&reqs);
    println!("cluster reqs range  : {lo} - {hi} requests");
    let (lo, hi) = minmax(&urls);
    println!("cluster URLs range  : {lo} - {hi} unique URLs");
    println!("paper (scale 1.0)   : 9,853 clusters; 1-1,343 clients; 1-339,632 requests; 1-8,095 URLs; 99.9% coverage");

    // Ablation: coverage as tables are merged one at a time (BGP first,
    // registry dumps last) — the paper's 99% -> 99.9% claim.
    let specs = standard_vantages();
    let mut tables = Vec::new();
    let mut rows = Vec::new();
    let clients = log.unique_clients();
    for spec in &specs {
        tables.push(netclust_netgen::snapshot(&universe, spec, 0, 0));
        let merged_k = MergedTable::merge(tables.iter());
        let covered = clients
            .iter()
            .filter(|&&a| merged_k.lookup(a).is_some())
            .count();
        rows.push(vec![
            format!("+{}", spec.name),
            merged_k.bgp_len().to_string(),
            pct(covered as f64 / clients.len() as f64),
        ]);
    }
    for (name, coverage) in [("ARIN", 0.97), ("NLANR", 0.62)] {
        tables.push(registry_dump(&universe, name, coverage));
        let merged_k = MergedTable::merge(tables.iter());
        let covered = clients
            .iter()
            .filter(|&&a| merged_k.lookup(a).is_some())
            .count();
        rows.push(vec![
            format!("+{name} (dump)"),
            (merged_k.bgp_len() + merged_k.dump_len()).to_string(),
            pct(covered as f64 / clients.len() as f64),
        ]);
    }
    print_table(
        "Ablation: client coverage as tables are merged",
        &["table added", "union size", "clients clustered"],
        &rows,
    );
    println!("paper: BGP tables alone ~99%; adding registry dumps -> 99.9%");
}
