//! Figure 1: distribution of prefix lengths extracted from Mae-West NAP
//! routing table snapshots — (a) histogram on one day, (b) stability over
//! four consecutive days.
//!
//! Paper reference: ≈50 % of prefixes are /24; among the rest, short
//! prefixes outnumber long ones; day-to-day counts barely move (e.g. /24
//! count 13,937 → 14,018 across 7/3–7/6/1999).

use netclust_bench::{paper_universe, pct, print_table};
use netclust_netgen::{snapshot, VantageSpec};
use netclust_rtable::PrefixLengthHistogram;

fn main() {
    let universe = paper_universe();
    let spec = VantageSpec::new("MAE-WEST", 0.41, 0.06);

    // (a) Histogram on day 0.
    let day0 = snapshot(&universe, &spec, 0, 0);
    let hist = PrefixLengthHistogram::from_prefixes(day0.prefixes().iter().copied());
    let rows: Vec<Vec<String>> = hist
        .nonzero()
        .map(|(len, count)| {
            vec![
                format!("/{len}"),
                count.to_string(),
                pct(hist.fraction(len)),
                "#".repeat((60.0 * hist.fraction(len)).ceil() as usize),
            ]
        })
        .collect();
    print_table(
        "Figure 1(a): prefix-length histogram, MAE-WEST day 0",
        &["len", "count", "frac", "histogram"],
        &rows,
    );
    println!(
        "total={} mode=/{} frac24={} shorter-than-24={} longer-than-24={}",
        hist.total(),
        hist.mode().unwrap_or(0),
        pct(hist.fraction(24)),
        pct(hist.fraction_shorter_than(24)),
        pct(hist.fraction_longer_than(24)),
    );
    println!("paper: ~50% of prefixes are /24; more shorter than longer among the rest");

    // (b) Length distribution over four days.
    let days: Vec<PrefixLengthHistogram> = (0..4)
        .map(|d| {
            let snap = snapshot(&universe, &spec, d, 0);
            PrefixLengthHistogram::from_prefixes(snap.prefixes().iter().copied())
        })
        .collect();
    let lengths: Vec<u8> = {
        let mut set = std::collections::BTreeSet::new();
        for h in &days {
            set.extend(h.nonzero().map(|(l, _)| l));
        }
        set.into_iter().collect()
    };
    let rows: Vec<Vec<String>> = days
        .iter()
        .enumerate()
        .map(|(d, h)| {
            let mut row = vec![format!("day {d}")];
            row.extend(lengths.iter().map(|&l| h.count(l).to_string()));
            row.push(h.total().to_string());
            row
        })
        .collect();
    let mut headers: Vec<String> = vec!["date".into()];
    headers.extend(lengths.iter().map(|l| format!("/{l}")));
    headers.push("total".into());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 1(b): prefix-length distribution over four days",
        &headers_ref,
        &rows,
    );
    println!("paper: counts per length change by well under 1% day-to-day");
}
