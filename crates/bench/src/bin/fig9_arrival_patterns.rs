//! Figure 9: request-arrival histograms in the Sun log — (a) the whole
//! log, (b) a cluster containing a proxy, (c) a cluster containing a
//! spider.
//!
//! Paper reference: the proxy's spikes line up with the log's daily
//! spikes; the spider shows a burst with no resemblance to the diurnal
//! pattern.

use netclust_bench::{paper_universe, print_table, scaled};
use netclust_core::{correlation, hourly_histogram, Clustering};
use netclust_netgen::standard_merged;
use netclust_weblog::{generate, LogSpec};

fn bars(hist: &[u64], cols: usize) -> Vec<String> {
    // Compress the histogram to `cols` buckets of '#' bars.
    let chunk = hist.len().div_ceil(cols).max(1);
    let sums: Vec<u64> = hist.chunks(chunk).map(|c| c.iter().sum()).collect();
    let max = sums.iter().copied().max().unwrap_or(1).max(1);
    sums.iter()
        .map(|&s| "#".repeat((s * 24 / max) as usize))
        .collect()
}

fn main() {
    let universe = paper_universe();
    let merged = standard_merged(&universe, 0);
    let log = generate(&universe, &scaled(LogSpec::sun(1)));
    let clustering = Clustering::network_aware(&log, &merged);

    let whole = hourly_histogram(&log, |_| true);
    let proxy = u32::from(log.truth.proxies[0]);
    let spider = u32::from(log.truth.spiders[0]);
    let proxy_cluster = clustering
        .cluster_of(log.truth.proxies[0])
        .expect("proxy clustered");
    let spider_cluster = clustering
        .cluster_of(log.truth.spiders[0])
        .expect("spider clustered");
    let proxy_members: std::collections::HashSet<u32> = proxy_cluster
        .clients
        .iter()
        .map(|c| u32::from(c.addr))
        .collect();
    let spider_members: std::collections::HashSet<u32> = spider_cluster
        .clients
        .iter()
        .map(|c| u32::from(c.addr))
        .collect();
    let proxy_hist = hourly_histogram(&log, |r| proxy_members.contains(&r.client));
    let spider_hist = hourly_histogram(&log, |r| spider_members.contains(&r.client));

    let wb = bars(&whole, 28);
    let pb = bars(&proxy_hist, 28);
    let sb = bars(&spider_hist, 28);
    let rows: Vec<Vec<String>> = (0..wb.len())
        .map(|i| {
            vec![
                format!("t{}", i),
                wb[i].clone(),
                pb[i].clone(),
                sb[i].clone(),
            ]
        })
        .collect();
    print_table(
        "Figure 9: request histograms (sun) — whole log vs proxy cluster vs spider cluster",
        &[
            "bucket",
            "(a) entire log",
            "(b) proxy cluster",
            "(c) spider cluster",
        ],
        &rows,
    );

    println!(
        "\narrival correlation with whole log: proxy cluster {:.3}, spider cluster {:.3}",
        correlation(&proxy_hist, &whole),
        correlation(&spider_hist, &whole),
    );
    println!(
        "proxy client requests: {}, spider client requests: {}",
        log.requests.iter().filter(|r| r.client == proxy).count(),
        log.requests.iter().filter(|r| r.client == spider).count(),
    );
    println!("paper: proxy spikes match the daily spikes of the log; the spider's burst does not");
}
