//! Extension: the paper's stated ongoing/future work, implemented and
//! measured — suffix-based cluster merging (with the §6 AS hint as a
//! guard), selective-sampling validation (§3.3's threshold idea), and
//! real-time streaming clustering (§4).

use netclust_bench::{nagano_env, pct, print_table};
use netclust_core::{
    merge_by_name_suffix, org_purity, selective_validate, Clustering, SamplePlan, SelectiveMode,
    StreamingClustering,
};
use netclust_prefix::Ipv4Net;

fn main() {
    let (universe, log, merged) = nagano_env();
    let clustering = Clustering::network_aware(&log, &merged);

    // --- Suffix-based merging with and without the AS hint ----------------
    // The AS hint comes from the announcement data (origin AS per prefix),
    // exactly what real BGP dumps carry in their AS paths.
    let origin_trie: netclust_rtable::PrefixTrie<u32> = universe
        .announcements(0)
        .into_iter()
        .map(|a| (a.prefix, a.as_id))
        .collect();
    // Origin AS of a cluster prefix: exact announcement, or the covering
    // one (registry-derived prefixes are not announced verbatim).
    let origin_of = |p: Ipv4Net| -> Option<u32> {
        origin_trie
            .get(p)
            .copied()
            .or_else(|| origin_trie.longest_match(p.addr()).map(|(_, &asn)| asn))
    };
    let unguarded = merge_by_name_suffix(
        &universe,
        &log,
        &clustering,
        3,
        7,
        None::<fn(Ipv4Net) -> Option<u32>>,
    );
    let guarded = merge_by_name_suffix(&universe, &log, &clustering, 3, 7, Some(origin_of));
    let rows = vec![
        vec![
            "no AS guard".to_string(),
            unguarded.merged_away.to_string(),
            unguarded.blocked_by_as_guard.to_string(),
            unguarded.clustering.len().to_string(),
            pct(org_purity(&universe, &unguarded.clustering)),
        ],
        vec![
            "AS-guarded (§6)".to_string(),
            guarded.merged_away.to_string(),
            guarded.blocked_by_as_guard.to_string(),
            guarded.clustering.len().to_string(),
            pct(org_purity(&universe, &guarded.clustering)),
        ],
    ];
    print_table(
        &format!(
            "Suffix-based cluster merging (nagano; before: {} clusters, purity {})",
            clustering.len(),
            pct(org_purity(&universe, &clustering))
        ),
        &[
            "variant",
            "merged away",
            "blocked by guard",
            "clusters after",
            "purity after",
        ],
        &rows,
    );
    println!("unguarded merges that lower purity are name-collision errors (distinct orgs with");
    println!("look-alike domains); the §6 AS hint blocks exactly those while still permitting");
    println!("same-AS fragment merges — 'using information on ASes to reduce the error ratio'");

    // --- Selective-sampling validation -------------------------------------
    let plan = SamplePlan::default();
    let mut rows = Vec::new();
    for (label, tol, mode) in [
        ("strict (0%)", 0.0, SelectiveMode::ClientBased),
        ("5% client-based", 0.05, SelectiveMode::ClientBased),
        ("5% request-based", 0.05, SelectiveMode::RequestBased),
        ("10% client-based", 0.10, SelectiveMode::ClientBased),
    ] {
        let r = selective_validate(&universe, &clustering, &plan, tol, mode);
        rows.push(vec![
            label.to_string(),
            r.sampled_clusters.to_string(),
            r.passed.to_string(),
            pct(r.pass_rate()),
            r.rescued.to_string(),
        ]);
    }
    print_table(
        "Selective-sampling validation (§3.3's threshold idea)",
        &[
            "tolerance",
            "sampled",
            "passed",
            "pass rate",
            "rescued vs strict",
        ],
        &rows,
    );

    // --- Streaming clustering -----------------------------------------------
    let mut stream =
        StreamingClustering::builder(netclust_netgen::standard_merged(&universe, 0)).build();
    let checkpoints = [0.25, 0.5, 0.75, 1.0];
    let mut rows = Vec::new();
    let mut fed = 0usize;
    for &frac in &checkpoints {
        let until = (log.requests.len() as f64 * frac) as usize;
        for r in &log.requests[fed..until] {
            stream.push(r);
        }
        fed = until;
        let top = stream.top_k(1);
        rows.push(vec![
            format!("{:.0}%", frac * 100.0),
            stream.len().to_string(),
            pct(stream.coverage()),
            top.first()
                .map(|(p, s)| format!("{p} ({} reqs)", s.requests))
                .unwrap_or_default(),
        ]);
    }
    print_table(
        "Real-time streaming clustering (nagano replay)",
        &["stream progress", "clusters", "coverage", "busiest cluster"],
        &rows,
    );
    // Adapt to routing dynamics: swap in day 7's tables mid-flight.
    stream.swap_table(netclust_netgen::standard_merged(&universe, 7));
    println!(
        "\nafter swapping in day-7 tables: {} clusters, coverage {} (rebuilt without replay)",
        stream.len(),
        pct(stream.coverage())
    );
}
