//! §3.6: the three side studies — time-partitioned sessions, server
//! clustering from a proxy log, and second-level (network) clustering.
//!
//! Paper reference: four 6-hour Nagano sessions show the same per-cluster
//! patterns; in an 11-day ISP proxy trace 69,192 server addresses cluster
//! with only ~0.2 % unclusterable and ~4 % of server clusters draw 70 % of
//! the 12.4 M requests; client clusters group further into network
//! clusters via traceroute path suffixes.

use netclust_bench::{nagano_env, pct, print_table, scale};
use netclust_core::{network_clusters, session_report, threshold_busy, Clustering};
use netclust_netgen::stream_rng;
use netclust_weblog::pareto_u64;
use rand::Rng;

fn main() {
    let (universe, log, merged) = nagano_env();

    // --- Time partitioning ------------------------------------------------
    let report = session_report(&log, 4, |a| merged.lookup(a).map(|(n, _)| n));
    let rows: Vec<Vec<String>> = report
        .sessions
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                s.requests.to_string(),
                s.clusters.to_string(),
                s.clients.to_string(),
            ]
        })
        .collect();
    print_table(
        "§3.6 four 6-hour sessions (nagano)",
        &["session", "requests", "clusters", "clients"],
        &rows,
    );
    println!(
        "consecutive-session request correlations: {:?} (paper: patterns persist across sessions)",
        report
            .consecutive_correlations
            .iter()
            .map(|c| format!("{c:.3}"))
            .collect::<Vec<_>>()
    );

    // --- Server clustering from a proxy log --------------------------------
    // Synthesize an ISP proxy trace: servers drawn from universe orgs with
    // heavy-tailed request counts.
    let mut rng = stream_rng(77, &[0x3E2]);
    let n_servers = (69_192.0 * scale()) as usize;
    let mut counts = Vec::with_capacity(n_servers);
    let orgs = universe.orgs();
    while counts.len() < n_servers {
        let org = &orgs[rng.gen_range(0..orgs.len())];
        let idx = rng.gen_range(0..org.active_hosts.max(1));
        if let Some(addr) = org.host_addr(idx) {
            let requests = pareto_u64(&mut rng, 1.1, 1, 200_000);
            counts.push((addr, requests, requests * 8_000));
        }
    }
    // A sliver of servers outside any registered allocation.
    let extra = (counts.len() / 500).max(1);
    for i in 0..extra {
        // analyze:allow(cast-truncation) i % 250 < 250, and the sliver is
        // far too small for i / 250 to reach 256.
        let addr = std::net::Ipv4Addr::new(9, 9, (i / 250) as u8, (i % 250) as u8 + 1);
        counts.push((addr, 1, 8_000));
    }
    let servers = Clustering::from_counts(&counts, "servers", |a| merged.lookup(a).map(|(n, _)| n));
    println!("\n== §3.6 server clustering from a proxy log ==");
    println!("unique server addresses : {}", counts.len());
    println!("server clusters         : {}", servers.len());
    println!(
        "unclusterable            : {} ({}) (paper: ~0.2%)",
        servers.unclustered.len(),
        pct(servers.unclustered.len() as f64 / counts.len() as f64)
    );
    let busy = threshold_busy(&servers, 0.7);
    println!(
        "busy server clusters     : {} of {} ({}) draw 70% of requests (paper: ~4%)",
        busy.busy.len(),
        servers.len(),
        pct(busy.busy.len() as f64 / servers.len() as f64),
    );

    // --- Second-level clustering -------------------------------------------
    let clustering = Clustering::network_aware(&log, &merged);
    let nets = network_clusters(&universe, &clustering, 2, 2, 0xF00D);
    println!("\n== §3.6 second-level (network) clustering ==");
    println!("client clusters   : {}", clustering.len());
    println!("network clusters  : {}", nets.len());
    let multi = nets.iter().filter(|n| n.members.len() > 1).count();
    println!("multi-member groups: {multi}");
    let top: Vec<String> = nets
        .iter()
        .take(5)
        .map(|n| {
            format!(
                "{} members / {} reqs via {}",
                n.members.len(),
                n.requests,
                n.key
            )
        })
        .collect();
    println!("top groups by requests:");
    for line in top {
        println!("  {line}");
    }
    // Consistency check parameter sensitivity: r = 1 vs r = 3.
    let nets_r1 = network_clusters(&universe, &clustering, 1, 2, 0xF00D);
    println!(
        "group count with r=1: {} vs r=2: {} (sampling barely matters: {} stable)",
        nets_r1.len(),
        nets.len(),
        pct(1.0 - (nets_r1.len() as f64 - nets.len() as f64).abs() / nets.len().max(1) as f64)
    );
}
