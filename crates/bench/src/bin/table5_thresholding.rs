//! Table 5: thresholding busy client clusters on the Nagano log —
//! network-aware vs simple approach, after spider/proxy elimination.
//!
//! Paper reference (full scale): network-aware keeps 717 of 9,853 clusters
//! (32,691 clients, 8,167,590 requests, threshold 2,744 requests, busy
//! sizes 1–1,343 clients); simple keeps 3,242 of 23,523 (threshold 696,
//! busy sizes 4–63 clients).

use netclust_bench::{nagano_env, print_table};
use netclust_core::{detect, strip_clients, threshold_busy, AnomalyConfig, Clustering};

fn main() {
    let (_u, log, merged) = nagano_env();

    // Eliminate detected spiders/proxies first (§4.1.3 step order).
    let clustering0 = Clustering::network_aware(&log, &merged);
    let detections = detect(&log, &clustering0, &AnomalyConfig::default());
    let anomalous: Vec<std::net::Ipv4Addr> = detections.iter().map(|d| d.addr).collect();
    let log = strip_clients(&log, &anomalous);
    println!(
        "eliminated {} anomalous clients before thresholding",
        anomalous.len()
    );

    let aware = Clustering::network_aware(&log, &merged);
    let simple = Clustering::simple24(&log);

    let mut rows = Vec::new();
    for clustering in [&aware, &simple] {
        let t = threshold_busy(clustering, 0.7);
        rows.push(vec![
            clustering.method.clone(),
            t.total_clusters.to_string(),
            t.threshold.to_string(),
            format!(
                "{} ({} clients, {} reqs)",
                t.busy.len(),
                t.busy_clients,
                t.busy_requests
            ),
            format!(
                "{} - {} ({} - {} clients)",
                t.busy_request_range.0,
                t.busy_request_range.1,
                t.busy_client_range.0,
                t.busy_client_range.1
            ),
            format!(
                "{} - {} ({} - {} clients)",
                t.lessbusy_request_range.0,
                t.lessbusy_request_range.1,
                t.lessbusy_client_range.0,
                t.lessbusy_client_range.1
            ),
        ]);
    }
    print_table(
        "Table 5: thresholding client clusters (70% of requests) on nagano",
        &[
            "approach",
            "total clusters",
            "threshold (reqs)",
            "busy clusters",
            "busy range (reqs/clients)",
            "less-busy range",
        ],
        &rows,
    );
    let ta = threshold_busy(&aware, 0.7);
    let ts = threshold_busy(&simple, 0.7);
    println!(
        "\nbusy-cluster ratio simple/aware: {:.2} (paper: 3242/717 = 4.52)",
        ts.busy.len() as f64 / ta.busy.len().max(1) as f64
    );
    println!("paper: simple needs far more, far smaller busy clusters for the same 70% of traffic");
}
