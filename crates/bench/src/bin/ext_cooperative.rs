//! Extension: cooperative proxy clusters (§4.1.4's second placement
//! approach). Proxies grouped by shared upstream (the second-level
//! network clusters of §3.6) serve each other's misses; we quantify the
//! extra traffic kept off the origin versus standalone proxies.

use netclust_bench::{nagano_env, pct, print_table};
use netclust_cachesim::{simulate_cooperative, ResourceModel, SimConfig};
use netclust_core::{network_clusters, Clustering};

fn main() {
    let (universe, log, merged) = nagano_env();
    let clustering = Clustering::network_aware(&log, &merged);

    // Proxy clusters = second-level network clusters (per upstream/AS).
    let nets = network_clusters(&universe, &clustering, 2, 2, 0xC00F);
    let groups: Vec<Vec<usize>> = nets.iter().map(|n| n.members.clone()).collect();
    println!(
        "{} proxies grouped into {} proxy clusters ({} with >1 member)",
        clustering.len(),
        groups.len(),
        groups.iter().filter(|g| g.len() > 1).count()
    );

    let mut rows = Vec::new();
    for cache_mb in [1u64, 4, 16] {
        let cfg = SimConfig {
            cache_bytes: cache_mb << 20,
            ttl_s: 3_600,
            model: ResourceModel::default_web(0xFEED),
            min_url_accesses: 10,
        };
        let solo = simulate_cooperative(&log, &clustering, &[], &cfg);
        let coop = simulate_cooperative(&log, &clustering, &groups, &cfg);
        rows.push(vec![
            format!("{cache_mb}MB"),
            pct(solo.total_hit_ratio()),
            pct(coop.local_hit_ratio()),
            pct(coop.sibling_hits as f64 / coop.requests.max(1) as f64),
            pct(coop.total_hit_ratio()),
            format!(
                "{:.1}%",
                100.0 * (1.0 - coop.origin_fetches as f64 / solo.origin_fetches.max(1) as f64)
            ),
        ]);
    }
    print_table(
        "Extension: cooperative proxy clusters (nagano)",
        &[
            "cache",
            "standalone hit",
            "coop local hit",
            "coop sibling hit",
            "coop total hit",
            "origin traffic cut",
        ],
        &rows,
    );
    println!("\ncooperation helps most at small caches (siblings extend effective capacity)");
    println!("and for shared-upstream groups with overlapping interests");
}
