//! Figure 11: Web-server performance vs proxy cache size on the Nagano
//! log — (a) total hit ratio and (b) total byte-hit ratio observed at the
//! server, for the network-aware and simple clusterings.
//!
//! Paper reference: both ratios rise with cache size; the simple approach
//! under-estimates both by ≈10 % once per-proxy caches exceed ~700 KB;
//! network-aware hit ratios reach 60–75 % on the Nagano event log.

use netclust_bench::{nagano_env, pct, print_table};
use netclust_cachesim::{fig11_sizes, sweep_cache_sizes, SimConfig};
use netclust_core::{detect, strip_clients, AnomalyConfig, Clustering};

fn main() {
    let (_u, log, merged) = nagano_env();

    // Eliminate spiders/proxies, as the paper does before simulation.
    let pre = Clustering::network_aware(&log, &merged);
    let anomalous: Vec<std::net::Ipv4Addr> = detect(&log, &pre, &AnomalyConfig::default())
        .iter()
        .map(|d| d.addr)
        .collect();
    let log = strip_clients(&log, &anomalous);

    let aware = Clustering::network_aware(&log, &merged);
    let simple = Clustering::simple24(&log);
    let config = SimConfig::paper(0);
    let sizes = fig11_sizes();

    let aware_pts = sweep_cache_sizes(&log, &aware, &sizes, &config);
    let simple_pts = sweep_cache_sizes(&log, &simple, &sizes, &config);

    let fmt_size = |b: u64| {
        if b >= 1 << 20 {
            format!("{}MB", b >> 20)
        } else {
            format!("{}KB", b >> 10)
        }
    };
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            vec![
                fmt_size(b),
                pct(aware_pts[i].1),
                pct(simple_pts[i].1),
                pct(aware_pts[i].2),
                pct(simple_pts[i].2),
                format!("{:+.1}pp", (aware_pts[i].1 - simple_pts[i].1) * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 11: server hit/byte-hit ratio vs per-proxy cache size (nagano)",
        &[
            "cache",
            "(a) hit aware",
            "hit simple",
            "(b) byte-hit aware",
            "byte-hit simple",
            "aware-simple gap",
        ],
        &rows,
    );
    println!("\n(ttl = 1h, LRU, PCV; requests to URLs accessed <10 times ignored)");
    println!("paper: simple under-estimates both ratios by ~10% beyond ~700KB; aware reaches 60-75% hit ratio");
}
