//! Figure 10: the per-client request distribution inside the Sun log's
//! spider cluster — and the spider/proxy detector's verdicts.
//!
//! Paper reference (full scale): the spider issues 692,453 requests —
//! 99.79 % of its 27-host cluster — and covers 4,426 of 116,274 URLs. The
//! Sun proxy cluster has two clients issuing 2,699 and 323,867 requests.

use netclust_bench::{paper_universe, pct, print_table, scaled};
use netclust_core::{cluster_request_distribution, detect, AnomalyConfig, ClientClass, Clustering};
use netclust_netgen::standard_merged;
use netclust_weblog::{generate, LogSpec};

fn main() {
    let universe = paper_universe();
    let merged = standard_merged(&universe, 0);
    let log = generate(&universe, &scaled(LogSpec::sun(1)));
    let clustering = Clustering::network_aware(&log, &merged);

    let spider = log.truth.spiders[0];
    let dist = cluster_request_distribution(&clustering, spider);
    let total: u64 = dist.iter().sum();
    let rows: Vec<Vec<String>> = dist
        .iter()
        .enumerate()
        .take(27)
        .map(|(rank, &r)| {
            vec![
                (rank + 1).to_string(),
                r.to_string(),
                pct(r as f64 / total as f64),
            ]
        })
        .collect();
    print_table(
        "Figure 10: request distribution inside the spider cluster (sun)",
        &["client rank", "requests", "share"],
        &rows,
    );
    println!(
        "cluster: {} clients, {} requests; top client's share {} (paper: 99.79%)",
        dist.len(),
        total,
        pct(dist[0] as f64 / total as f64)
    );

    // Detector verdicts against ground truth.
    let min_requests = (20_000.0 * netclust_bench::scale()) as u64;
    let config = AnomalyConfig {
        min_requests: min_requests.max(500),
        ..Default::default()
    };
    let detections = detect(&log, &clustering, &config);
    let rows: Vec<Vec<String>> = detections
        .iter()
        .map(|d| {
            vec![
                d.addr.to_string(),
                format!("{:?}", d.class),
                d.requests.to_string(),
                pct(d.cluster_share),
                format!("{:.3}", d.arrival_correlation),
                pct(d.burst_share),
                d.unique_urls.to_string(),
                d.unique_uas.to_string(),
            ]
        })
        .collect();
    print_table(
        "Detector verdicts (sun)",
        &[
            "client",
            "class",
            "requests",
            "cluster share",
            "corr",
            "burst",
            "URLs",
            "UAs",
        ],
        &rows,
    );
    let found_spider = detections
        .iter()
        .any(|d| d.class == ClientClass::Spider && d.addr == spider);
    let found_proxy = detections
        .iter()
        .any(|d| d.class == ClientClass::SuspectedProxy && d.addr == log.truth.proxies[0]);
    println!(
        "ground truth: spider {spider} {}, proxy {} {}",
        if found_spider { "DETECTED" } else { "MISSED" },
        log.truth.proxies[0],
        if found_proxy { "DETECTED" } else { "MISSED" }
    );
    println!("paper: spiders found via burstiness + dominance; proxies via UA diversity + diurnal mimicry");
}
