//! Ablation: PCV TTL sensitivity (§4.1.5: "Varying ttl to 5, 10, and 15
//! minutes yields similar results" to the 1-hour default).

use netclust_bench::{nagano_env, pct, print_table};
use netclust_cachesim::{simulate, ResourceModel, SimConfig};
use netclust_core::Clustering;

fn main() {
    let (_u, log, merged) = nagano_env();
    let clustering = Clustering::network_aware(&log, &merged);

    let mut rows = Vec::new();
    for (label, ttl) in [
        ("5 min", 300u32),
        ("10 min", 600),
        ("15 min", 900),
        ("1 h", 3_600),
        ("4 h", 14_400),
    ] {
        let cfg = SimConfig {
            cache_bytes: 16 << 20,
            ttl_s: ttl,
            model: ResourceModel::default_web(0xFEED),
            min_url_accesses: 10,
        };
        let result = simulate(&log, &clustering, &cfg);
        let validated: u64 = result.proxies.iter().map(|p| p.validated_hits).sum();
        let msgs: u64 = result.proxies.iter().map(|p| p.server_messages).sum();
        rows.push(vec![
            label.to_string(),
            pct(result.server_hit_ratio()),
            pct(result.server_byte_hit_ratio()),
            validated.to_string(),
            msgs.to_string(),
        ]);
    }
    print_table(
        "Ablation: PCV TTL sensitivity (nagano, 16MB proxies)",
        &[
            "ttl",
            "hit ratio",
            "byte-hit ratio",
            "IMS validations",
            "server msgs",
        ],
        &rows,
    );
    println!("\npaper: 5/10/15-minute TTLs yield results similar to the 1-hour default;");
    println!("shorter TTLs trade extra validation messages for (slightly) fresher content");
}
