//! Incremental patch vs full recompile on the DIR-24-8 table.
//!
//! A live BGP feed is dominated by small announce/withdraw batches, so
//! the interesting number is how much cheaper `apply_delta` lands one
//! than `CompiledTable::from_prefixes` rebuilding all ~110K prefixes.
//! Each patch measurement applies a batch and its exact inverse (the
//! withdrawn prefixes re-announced, the announced ones withdrawn), so the
//! table returns to the base state every iteration and the per-batch cost
//! is `ns_per_iter / 2`; the recompile side rebuilds the same base table
//! from scratch. The headline persisted to `BENCH_table_update.json` is
//! the single-prefix speedup, which the live-update path relies on being
//! orders of magnitude (the acceptance floor is 50x).

use std::collections::BTreeSet;

use criterion::{host_threads, quick_mode, BenchmarkId, Criterion, Throughput};
use netclust_prefix::Ipv4Net;
use netclust_rtable::{CompiledTable, TableDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizes `n` unique prefixes with a BGP-like length mix (same
/// model as the ingest and obs benches).
fn synth_prefixes(n: usize, seed: u64) -> Vec<Ipv4Net> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set: BTreeSet<Ipv4Net> = BTreeSet::new();
    while set.len() < n {
        let roll: u32 = rng.gen_range(0..100);
        let len: u8 = if roll < 55 {
            24
        } else if roll < 85 {
            rng.gen_range(16..=23)
        } else if roll < 95 {
            rng.gen_range(25..=28)
        } else {
            rng.gen_range(8..=15)
        };
        set.insert(Ipv4Net::new(rng.gen::<u32>(), len).expect("len <= 32"));
    }
    set.into_iter().collect()
}

/// An invertible batch of `n` deltas against `base`: alternating
/// withdrawals of live prefixes and announcements of fresh /24s, with the
/// inverse batch restoring the base set exactly. All touched prefixes are
/// distinct, so the two directions commute and the round trip is clean.
fn invertible_batch(base: &[Ipv4Net], n: usize, seed: u64) -> (Vec<TableDelta>, Vec<TableDelta>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let live: BTreeSet<Ipv4Net> = base.iter().copied().collect();
    let mut picked: BTreeSet<Ipv4Net> = BTreeSet::new();
    let mut forward = Vec::with_capacity(n);
    let mut inverse = Vec::with_capacity(n);
    for i in 0..n {
        if i % 2 == 0 {
            // Withdraw a distinct live prefix; the inverse re-announces it.
            let p = loop {
                let p = base[rng.gen_range(0..base.len())];
                if picked.insert(p) {
                    break p;
                }
            };
            forward.push(TableDelta::withdraw(p));
            inverse.push(TableDelta::announce(p));
        } else {
            // Announce a fresh /24; the inverse withdraws it.
            let p = loop {
                let p = Ipv4Net::new(rng.gen::<u32>(), 24).expect("/24");
                if !live.contains(&p) && picked.insert(p) {
                    break p;
                }
            };
            forward.push(TableDelta::announce(p));
            inverse.push(TableDelta::withdraw(p));
        }
    }
    (forward, inverse)
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let (n_prefixes, sizes): (usize, &[usize]) = if quick_mode() {
        (8_000, &[1, 8, 64])
    } else {
        (110_000, &[1, 8, 64, 512])
    };

    let base = synth_prefixes(n_prefixes, 0xB67);
    let mut table = CompiledTable::from_prefixes(base.iter().copied());
    println!(
        "base table: {} prefixes, {} overflow groups\n",
        table.len(),
        table.long_groups()
    );

    // Pre-timing gate: every swept batch round-trips through the in-place
    // patch path (no recompile fallback) and restores the base table
    // exactly — the measured numbers are the incremental path's.
    for &n in sizes {
        let (forward, inverse) = invertible_batch(&base, n, n as u64 ^ 0x5EED);
        let fwd = table.apply_delta(&forward);
        let inv = table.apply_delta(&inverse);
        assert!(
            fwd.patched_in_place() && inv.patched_in_place(),
            "batch of {n} fell back to recompile"
        );
        assert!(fwd.slot_writes() > 0, "batch of {n} wrote no slots");
        assert_eq!(table.len(), base.len(), "round trip of {n} did not restore");
    }

    let mut group = c.benchmark_group("table_update");
    group.threads_used(1);
    for &n in sizes {
        let (forward, inverse) = invertible_batch(&base, n, n as u64 ^ 0x5EED);
        group.throughput(Throughput::Elements(2 * n as u64));
        group.bench_function(BenchmarkId::new("patch_roundtrip", n), |b| {
            b.iter(|| {
                table.apply_delta(&forward);
                table.apply_delta(&inverse).slot_writes()
            })
        });
    }
    group.throughput(Throughput::Elements(1));
    group.bench_function(BenchmarkId::new("recompile", n_prefixes), |b| {
        b.iter(|| CompiledTable::from_prefixes(base.iter().copied()).len())
    });
    group.finish();

    // Persist machine-readable results.
    let results = c.take_results();
    let ns_of = |needle: &str| {
        results
            .iter()
            .find(|r| r.id.contains(needle))
            .map(|r| r.ns_per_iter)
            .unwrap_or(f64::NAN)
    };
    let recompile_ns = ns_of("recompile");
    // A measured round trip is two batches, so one batch is half of it.
    let patch_ns = |n: usize| ns_of(&format!("patch_roundtrip/{n}")) / 2.0;
    let single_patch_ns = patch_ns(1);
    let single_speedup = recompile_ns / single_patch_ns;

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"threads_used\": {}}}{}\n",
            r.id,
            r.ns_per_iter,
            r.threads_used,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"host_threads\": {},\n", host_threads()));
    json.push_str("  \"threads_used\": 1,\n");
    json.push_str(&format!("  \"table_prefixes\": {},\n", base.len()));
    json.push_str(&format!(
        "  \"delta_sizes\": [{}],\n",
        sizes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"patch_ns_per_batch\": {");
    json.push_str(
        &sizes
            .iter()
            .map(|&n| format!("\"{n}\": {:.1}", patch_ns(n)))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("},\n");
    json.push_str(&format!("  \"recompile_ns\": {recompile_ns:.1},\n"));
    json.push_str(&format!(
        "  \"single_patch_speedup\": {single_speedup:.1},\n"
    ));
    json.push_str("  \"single_patch_speedup_floor\": 50,\n");
    json.push_str(&format!("  \"quick\": {}\n", quick_mode()));
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_table_update.json");
    std::fs::write(out, &json).expect("write BENCH_table_update.json");
    let patch_disp = if single_patch_ns < 1e3 {
        format!("{single_patch_ns:.0} ns")
    } else {
        format!("{:.1} µs", single_patch_ns / 1e3)
    };
    println!(
        "\nsingle-prefix patch: {patch_disp} vs recompile {:.2} ms -> {single_speedup:.0}x (floor 50x)",
        recompile_ns / 1e6,
    );
    assert!(
        single_speedup >= 50.0,
        "single-prefix patch must be >= 50x faster than recompile, got {single_speedup:.1}x"
    );
    println!("wrote {out}");
}
