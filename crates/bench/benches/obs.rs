//! Observability overhead on the fused ingest pipeline: the same corpus
//! pushed through `IngestPipeline` bare (disabled `Obs`, the default) and
//! fully observed (enabled registry attached to the compiled table and
//! the pipeline: stage spans, per-chunk histograms, LPM hit/miss
//! counters).
//!
//! The two are measured as an interleaved pair so clock drift cannot be
//! charged to either side; the persisted headline in `BENCH_obs.json` is
//! the enabled-instrumentation overhead, which must stay within the 5%
//! budget. The baseline String route is measured alongside to re-validate
//! the PR 2 fused-over-baseline speedup under the new layer, and the
//! registry's own counters are cross-checked against the corpus to show
//! the instrumented numbers are the real ones.

use std::collections::BTreeSet;

use criterion::{quick_mode, BenchmarkId, Criterion, Throughput};
use netclust_core::{Clustering, IngestPipeline};
use netclust_obs::Obs;
use netclust_prefix::Ipv4Net;
use netclust_rtable::{MergedTable, RoutingTable, TableKind};
use netclust_weblog::{clf, Log, LogTruth, Request, UrlMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizes `n` unique prefixes with a BGP-like length mix (same
/// model as the ingest bench).
fn synth_prefixes(n: usize, seed: u64) -> Vec<Ipv4Net> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set: BTreeSet<Ipv4Net> = BTreeSet::new();
    while set.len() < n {
        let roll: u32 = rng.gen_range(0..100);
        let len: u8 = if roll < 55 {
            24
        } else if roll < 85 {
            rng.gen_range(16..=23)
        } else if roll < 95 {
            rng.gen_range(25..=28)
        } else {
            rng.gen_range(8..=15)
        };
        set.insert(Ipv4Net::new(rng.gen::<u32>(), len).expect("len <= 32"));
    }
    set.into_iter().collect()
}

/// A synthetic access log whose clients live inside the table's prefixes.
fn synth_log(prefixes: &[Ipv4Net], requests: usize, clients: usize, seed: u64) -> Log {
    let mut rng = StdRng::seed_from_u64(seed);
    let client_addrs: Vec<u32> = (0..clients)
        .map(|_| {
            let net = prefixes[rng.gen_range(0..prefixes.len())];
            net.addr_u32() | (rng.gen::<u32>() & !net.netmask_u32())
        })
        .collect();
    let n_urls = 2_000u32;
    let requests: Vec<Request> = (0..requests)
        .map(|i| Request {
            time: i as u32,
            client: client_addrs[rng.gen_range(0..client_addrs.len())],
            url: rng.gen_range(0..n_urls),
            bytes: rng.gen_range(200..20_000),
            status: 200,
            ua: 0,
        })
        .collect();
    Log {
        name: "obs-bench".into(),
        requests,
        urls: (0..n_urls)
            .map(|i| UrlMeta {
                path: format!("/docs/section-{}/page-{i}.html", i % 37),
                size: 4_096,
            })
            .collect(),
        user_agents: vec!["Mozilla/4.0 (compatible; MSIE 5.0; Windows 98)".into()],
        start_time: 887_328_000,
        duration_s: u32::MAX,
        truth: LogTruth::default(),
    }
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let (n_prefixes_synth, n_requests, n_clients) = if quick_mode() {
        (8_000, 50_000, 5_000)
    } else {
        (110_000, 500_000, 40_000)
    };

    let prefixes = synth_prefixes(n_prefixes_synth, 0xF1A7);
    let split = prefixes.len() * 92 / 100;
    let bgp = RoutingTable::new(
        "SYNTH-BGP",
        "d0",
        TableKind::Bgp,
        prefixes[..split].to_vec(),
    );
    let dump = RoutingTable::new(
        "SYNTH-ARIN",
        "d0",
        TableKind::NetworkDump,
        prefixes[split..].to_vec(),
    );
    let merged = MergedTable::merge([&bgp, &dump]);

    // Two compiled tables: one bare, one with counters attached — the
    // attachment itself is part of what "observed" costs.
    let bare_table = merged.compile();
    let obs = Obs::enabled();
    let mut observed_table = merged.compile();
    observed_table.attach_obs(&obs);

    let log = synth_log(&prefixes, n_requests, n_clients, 0xC10C);
    let corpus = clf::to_clf(&log);
    let bytes = corpus.as_bytes();
    let lines = corpus.lines().count();
    println!(
        "corpus: {} lines, {:.1} MiB, {} table prefixes\n",
        lines,
        bytes.len() as f64 / (1024.0 * 1024.0),
        merged.len()
    );

    let mut group = c.benchmark_group("obs");
    group.throughput(Throughput::Bytes(bytes.len() as u64));

    // The headline pair: identical fused pipelines, the only difference
    // being a live registry (stage spans + chunk histograms + LPM
    // counters) on the observed side.
    let bare = IngestPipeline::new(&bare_table);
    let observed = IngestPipeline::new(&observed_table).obs(obs.clone());
    group.bench_pair(
        BenchmarkId::new("fused_bare", lines),
        || bare.run(bytes).clustering.len(),
        BenchmarkId::new("fused_observed", lines),
        || observed.run(bytes).clustering.len(),
    );
    // PR 2 re-validation: the String-route baseline, so the persisted
    // file carries the fused-over-baseline speedup measured on the same
    // host in the same process.
    group.bench_function(BenchmarkId::new("baseline_string", lines), |b| {
        b.iter(|| {
            let (log, _) = clf::from_clf("bench", &corpus);
            Clustering::network_aware_compiled(&log, &bare_table).len()
        })
    });
    group.finish();

    // Cross-check: the registry's data-derived counters agree with the
    // corpus and with a bare run — observation changed nothing.
    let bare_report = bare.run(bytes);
    let before = obs.snapshot(true);
    let observed_report = observed.run(bytes);
    let after = obs.snapshot(true);
    assert_eq!(bare_report.counts, observed_report.counts);
    assert_eq!(
        bare_report.clustering.len(),
        observed_report.clustering.len()
    );
    let delta = |name: &str| {
        after.counters.get(name).copied().unwrap_or(0)
            - before.counters.get(name).copied().unwrap_or(0)
    };
    assert_eq!(delta("ingest.lines"), lines as u64);
    assert_eq!(delta("ingest.bytes"), bytes.len() as u64);
    assert!(before.is_prefix_of(&after), "registry must only grow");

    // Persist machine-readable results.
    let results = c.take_results();
    let rate = |needle: &str| {
        results
            .iter()
            .find(|r| r.id.contains(needle))
            .and_then(|r| r.per_second())
            .unwrap_or(f64::NAN)
    };
    let bare_rate = rate("obs/fused_bare");
    let observed_rate = rate("obs/fused_observed");
    let baseline_rate = rate("obs/baseline_string");
    // Overhead: how much slower the observed pipeline runs, as a fraction
    // of bare throughput. Negative values are noise in the bare side's
    // favor being repaid; the budget is 5%.
    let overhead = bare_rate / observed_rate - 1.0;
    let speedup = observed_rate / baseline_rate;

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"per_second\": {}, \"threads_used\": {}}}{}\n",
            r.id,
            r.ns_per_iter,
            r.per_second().map_or("null".into(), |p| format!("{p:.1}")),
            r.threads_used,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    json.push_str(&format!("  \"host_threads\": {threads},\n"));
    json.push_str(&format!("  \"corpus_bytes\": {},\n", bytes.len()));
    json.push_str(&format!("  \"corpus_lines\": {lines},\n"));
    json.push_str(&format!("  \"table_prefixes\": {},\n", merged.len()));
    json.push_str(&format!("  \"bare_bytes_per_sec\": {bare_rate:.1},\n"));
    json.push_str(&format!(
        "  \"observed_bytes_per_sec\": {observed_rate:.1},\n"
    ));
    json.push_str(&format!(
        "  \"baseline_bytes_per_sec\": {baseline_rate:.1},\n"
    ));
    json.push_str(&format!(
        "  \"observed_over_baseline_speedup\": {speedup:.2},\n"
    ));
    json.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    json.push_str("  \"overhead_budget\": 0.05,\n");
    json.push_str(&format!("  \"observed_overhead\": {overhead:.4}\n"));
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(out, &json).expect("write BENCH_obs.json");
    println!(
        "\nobserved overhead: {:.2}% (budget 5%); fused-over-baseline: {speedup:.2}x",
        overhead * 100.0
    );
    println!("wrote {out}");
}
