//! Parallel fused-ingest scaling: the work-stealing per-shard pipeline
//! swept over worker counts (1 / 2 / 4 / all cores), against the serial
//! reference (`threads(1)`) on the same corpus.
//!
//! Before anything is timed, every swept thread count's report is
//! asserted byte-identical to the serial reference — the determinism
//! contract the sharded merge guarantees — so the persisted numbers can
//! never come from divergent work.
//!
//! Results persist to `BENCH_ingest_par.json` at the repo root with the
//! actual `threads_used` per entry and the speedup-vs-threads curve.
//! `NETCLUST_BENCH_THREADS` caps the sweep (CI smoke pins it to 2).

use std::collections::BTreeSet;

use criterion::{host_threads, quick_mode, BenchmarkId, Criterion, Throughput};
use netclust_core::IngestPipeline;
use netclust_prefix::Ipv4Net;
use netclust_rtable::{MergedTable, RoutingTable, TableKind};
use netclust_weblog::{clf, Log, LogTruth, Request, UrlMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizes `n` unique prefixes with a BGP-like length mix (same
/// model as the flat_lpm and ingest benches).
fn synth_prefixes(n: usize, seed: u64) -> Vec<Ipv4Net> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set: BTreeSet<Ipv4Net> = BTreeSet::new();
    while set.len() < n {
        let roll: u32 = rng.gen_range(0..100);
        let len: u8 = if roll < 55 {
            24
        } else if roll < 85 {
            rng.gen_range(16..=23)
        } else if roll < 95 {
            rng.gen_range(25..=28)
        } else {
            rng.gen_range(8..=15)
        };
        set.insert(Ipv4Net::new(rng.gen::<u32>(), len).expect("len <= 32"));
    }
    set.into_iter().collect()
}

/// A synthetic access log whose clients live inside the table's prefixes.
fn synth_log(prefixes: &[Ipv4Net], requests: usize, clients: usize, seed: u64) -> Log {
    let mut rng = StdRng::seed_from_u64(seed);
    let client_addrs: Vec<u32> = (0..clients)
        .map(|_| {
            let net = prefixes[rng.gen_range(0..prefixes.len())];
            net.addr_u32() | (rng.gen::<u32>() & !net.netmask_u32())
        })
        .collect();
    let n_urls = 2_000u32;
    let requests: Vec<Request> = (0..requests)
        .map(|i| Request {
            time: i as u32,
            client: client_addrs[rng.gen_range(0..client_addrs.len())],
            url: rng.gen_range(0..n_urls),
            bytes: rng.gen_range(200..20_000),
            status: 200,
            ua: 0,
        })
        .collect();
    Log {
        name: "ingest-par-bench".into(),
        requests,
        urls: (0..n_urls)
            .map(|i| UrlMeta {
                path: format!("/docs/section-{}/page-{i}.html", i % 37),
                size: 4_096,
            })
            .collect(),
        user_agents: vec!["Mozilla/4.0 (compatible; MSIE 5.0; Windows 98)".into()],
        start_time: 887_328_000,
        duration_s: u32::MAX,
        truth: LogTruth::default(),
    }
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let (n_prefixes_synth, n_requests, n_clients) = if quick_mode() {
        (8_000, 50_000, 5_000)
    } else {
        (110_000, 500_000, 40_000)
    };

    let prefixes = synth_prefixes(n_prefixes_synth, 0xF1A7);
    let split = prefixes.len() * 92 / 100;
    let bgp = RoutingTable::new(
        "SYNTH-BGP",
        "d0",
        TableKind::Bgp,
        prefixes[..split].to_vec(),
    );
    let dump = RoutingTable::new(
        "SYNTH-ARIN",
        "d0",
        TableKind::NetworkDump,
        prefixes[split..].to_vec(),
    );
    let merged = MergedTable::merge([&bgp, &dump]);
    let compiled = merged.compile();

    let log = synth_log(&prefixes, n_requests, n_clients, 0xC10C);
    let corpus = clf::to_clf(&log);
    let bytes = corpus.as_bytes();
    let lines = corpus.lines().count();

    // The sweep: 1 / 2 / 4 / all-cores, deduplicated, optionally capped
    // by NETCLUST_BENCH_THREADS (CI smoke pins 2). The serial reference
    // always stays in.
    let host = host_threads();
    let cap = std::env::var("NETCLUST_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    let mut sweep: Vec<usize> = [1usize, 2, 4, host]
        .into_iter()
        .filter(|&t| t == 1 || cap.is_none_or(|c| t <= c))
        .collect();
    sweep.sort_unstable();
    sweep.dedup();

    println!(
        "corpus: {} lines, {:.1} MiB, {} table prefixes; host threads: {host}; sweep: {sweep:?}\n",
        lines,
        bytes.len() as f64 / (1024.0 * 1024.0),
        merged.len()
    );

    // Determinism gate before any timing: every thread count — stealing
    // and static-strided alike — must reproduce the serial report
    // byte for byte.
    let reference = IngestPipeline::new(&compiled).threads(1).run(bytes);
    let reference_rendered = format!("{:?}", reference.clustering);
    for &t in &sweep {
        for deterministic in [false, true] {
            let report = IngestPipeline::new(&compiled)
                .threads(t)
                .deterministic(deterministic)
                .run(bytes);
            assert_eq!(report.counts, reference.counts, "t={t}");
            assert_eq!(report.errors, reference.errors, "t={t}");
            assert_eq!(
                format!("{:?}", report.clustering),
                reference_rendered,
                "threads={t} deterministic={deterministic} diverged from serial"
            );
        }
    }
    println!("parallel == serial across sweep: verified\n");

    let mut group = c.benchmark_group("ingest_par");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    for &t in &sweep {
        group.threads_used(t);
        let pipeline = IngestPipeline::new(&compiled).threads(t);
        group.bench_function(BenchmarkId::new(format!("fused_t{t}"), lines), |b| {
            b.iter(|| pipeline.run(bytes).clustering.len())
        });
    }
    group.finish();

    // Persist machine-readable results with the speedup-vs-threads curve.
    let results = c.take_results();
    let rate_at = |t: usize| {
        results
            .iter()
            .find(|r| r.id.contains(&format!("fused_t{t}/")))
            .and_then(|r| r.per_second())
            .unwrap_or(f64::NAN)
    };
    let base = rate_at(1);

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"per_second\": {}, \"threads_used\": {}}}{}\n",
            r.id,
            r.ns_per_iter,
            r.per_second().map_or("null".into(), |p| format!("{p:.1}")),
            r.threads_used,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"scaling\": [\n");
    for (i, &t) in sweep.iter().enumerate() {
        let rate = rate_at(t);
        json.push_str(&format!(
            "    {{\"threads\": {t}, \"bytes_per_sec\": {rate:.1}, \"speedup_vs_t1\": {:.3}}}{}\n",
            rate / base,
            if i + 1 < sweep.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"host_threads\": {host},\n"));
    json.push_str(&format!(
        "  \"threads_cap\": {},\n",
        cap.map_or("null".into(), |c| c.to_string())
    ));
    json.push_str(&format!("  \"corpus_bytes\": {},\n", bytes.len()));
    json.push_str(&format!("  \"corpus_lines\": {lines},\n"));
    json.push_str(&format!("  \"table_prefixes\": {},\n", merged.len()));
    json.push_str("  \"parallel_equals_serial\": true,\n");
    json.push_str(&format!("  \"quick\": {}\n", quick_mode()));
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest_par.json");
    std::fs::write(out, &json).expect("write BENCH_ingest_par.json");
    for &t in &sweep {
        println!("t={t}: {:.2}x vs serial", rate_at(t) / base);
    }
    println!("wrote {out}");
}
