//! Workload-generation and parsing throughput: synthetic log generation,
//! CLF serialization and CLF parsing rates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netclust_netgen::{snapshot, Universe, UniverseConfig, VantageSpec};
use netclust_weblog::{clf, generate, LogSpec};

fn bench_loggen(c: &mut Criterion) {
    let universe = Universe::generate(UniverseConfig {
        seed: 7,
        ..UniverseConfig::default()
    });
    let mut spec = LogSpec::tiny("bench", 9);
    spec.total_requests = 100_000;
    spec.target_clients = 2_000;

    let mut group = c.benchmark_group("loggen");
    group.throughput(Throughput::Elements(spec.total_requests));
    group.sample_size(10);
    group.bench_function("generate_100k", |b| {
        b.iter(|| generate(&universe, &spec).requests.len())
    });
    group.finish();

    let log = generate(&universe, &spec);
    let text = clf::to_clf(&log);
    let mut group = c.benchmark_group("clf");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.sample_size(10);
    group.bench_function("serialize", |b| b.iter(|| clf::to_clf(&log).len()));
    group.bench_function("parse", |b| {
        b.iter(|| clf::from_clf("bench", &text).0.requests.len())
    });
    group.finish();

    let mut group = c.benchmark_group("netgen");
    group.sample_size(10);
    group.bench_function("vantage_snapshot", |b| {
        b.iter(|| snapshot(&universe, &VantageSpec::new("OREGON", 0.94, 0.03), 0, 0).len())
    });
    group.bench_function("universe_small", |b| {
        b.iter(|| Universe::generate(UniverseConfig::small(3)).orgs().len())
    });
    group.finish();
}

criterion_group!(benches, bench_loggen);
criterion_main!(benches);
