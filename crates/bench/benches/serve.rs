//! Query-plane costs of the `netclustd` daemon: what one routed request
//! costs in-process (the router hot path alone), what a full HTTP round
//! trip costs over a loopback keep-alive socket, and — the headline —
//! sustained aggregate throughput with several concurrent keep-alive
//! clients hammering `/v1/cluster`. Lands in `BENCH_serve.json`; the
//! acceptance floor is 100k queries/s sustained.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, host_threads, quick_mode, BenchmarkId, Criterion, Throughput};
use netclust_netgen::{standard_collection, Universe, UniverseConfig};
use netclust_rtable::TableKind;
use netclust_serve::http::{parse_request, Method, Parse};
use netclust_serve::router;
use netclust_serve::{Daemon, ServeConfig};
use netclust_weblog::{clf, generate, LogSpec};

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "netclust_serve_bench_{name}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// One blocking keep-alive client: send the pre-rendered request, read
/// exactly one response (Content-Length framed).
struct KeepAlive {
    conn: TcpStream,
    buf: Vec<u8>,
    scratch: Vec<u8>,
}

impl KeepAlive {
    fn connect(addr: SocketAddr) -> KeepAlive {
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_nodelay(true).expect("nodelay");
        KeepAlive {
            conn,
            buf: Vec::with_capacity(4096),
            scratch: vec![0u8; 16 * 1024],
        }
    }

    /// Writes `depth` pipelined copies of the request cycle in one burst,
    /// then drains the matching responses. Returns bytes received.
    fn pipelined(&mut self, batch: &[u8], depth: usize) -> usize {
        self.conn.write_all(batch).expect("send batch");
        (0..depth).map(|_| self.read_one()).sum()
    }

    fn round_trip(&mut self, wire: &[u8]) -> usize {
        self.conn.write_all(wire).expect("send");
        self.read_one()
    }

    fn read_one(&mut self) -> usize {
        loop {
            if let Some(head_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&self.buf[..head_end]).expect("ascii head");
                let content_length: usize = head
                    .lines()
                    .find_map(|l| {
                        l.to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(|v| v.trim().parse().expect("content-length"))
                    })
                    .expect("content-length header");
                let total = head_end + 4 + content_length;
                while self.buf.len() < total {
                    let n = self.conn.read(&mut self.scratch).expect("read body");
                    assert!(n > 0, "server closed mid-body");
                    self.buf.extend_from_slice(&self.scratch[..n]);
                }
                self.buf.drain(..total);
                return total;
            }
            let n = self.conn.read(&mut self.scratch).expect("read head");
            assert!(n > 0, "server closed before head");
            self.buf.extend_from_slice(&self.scratch[..n]);
        }
    }
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let (requests, sustain_for, clients) = if quick_mode() {
        (20_000u64, Duration::from_millis(300), 2usize)
    } else {
        (
            200_000,
            Duration::from_secs(2),
            host_threads().clamp(2, 8) / 2 * 2,
        )
    };
    let clients = clients.max(2);

    // Corpus on disk, exactly what a production boot reads: routing-table
    // files plus a CLF access log.
    let dir = bench_dir("corpus");
    let universe = Universe::generate(UniverseConfig::small(0x5E21));
    let mut tables = Vec::new();
    let mut dumps = Vec::new();
    for table in standard_collection(&universe, 0, 0) {
        let ext = match table.kind {
            TableKind::Bgp => "bgp",
            TableKind::NetworkDump => "dump",
        };
        let path = dir.join(format!(
            "{}.{ext}",
            table.name.to_lowercase().replace(['&', '-', ' '], "_")
        ));
        let body: String = table.prefixes().iter().map(|p| format!("{p}\n")).collect();
        std::fs::write(&path, body).expect("write table");
        match table.kind {
            TableKind::Bgp => tables.push(path),
            TableKind::NetworkDump => dumps.push(path),
        }
    }
    let mut spec = LogSpec::tiny("serve-bench", 0x5E21);
    spec.total_requests = requests;
    let log = generate(&universe, &spec);
    let log_path = dir.join("access.log");
    std::fs::write(&log_path, clf::to_clf(&log)).expect("write log");
    let sample_ips: Vec<String> = log
        .unique_clients()
        .iter()
        .step_by(7)
        .take(64)
        .map(|a| a.to_string())
        .collect();

    let daemon = Daemon::start(
        ServeConfig::new()
            .tables(tables)
            .dumps(dumps)
            .log(&log_path)
            .http_threads(clients.max(4))
            .poll_interval(Duration::from_millis(5)),
    )
    .expect("boot daemon");
    let addr = daemon.local_addr();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let total = daemon
            .state()
            .stream
            .read()
            .expect("stream lock")
            .total_requests();
        if total >= requests {
            break;
        }
        assert!(Instant::now() < deadline, "log never finished ingesting");
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "daemon: {} requests ingested, {} clients sampled, {clients} bench connections\n",
        requests,
        sample_ips.len()
    );

    // Pre-rendered wire requests, cycling through the sampled addresses.
    let wires: Vec<Vec<u8>> = sample_ips
        .iter()
        .map(|ip| format!("GET /v1/cluster?ip={ip} HTTP/1.1\r\nHost: b\r\n\r\n").into_bytes())
        .collect();

    let mut group = c.benchmark_group("serve");
    group.threads_used(1);

    // The router alone: parsed request in, JSON response out. This is the
    // [hot-path] cost with the socket stripped away.
    let state = Arc::clone(daemon.state());
    let parsed = match parse_request(&wires[0]) {
        Parse::Complete { request, .. } => request,
        other => panic!("bench request must parse: {other:?}"),
    };
    assert_eq!(parsed.method, Method::Get);
    group.throughput(Throughput::Elements(1));
    group.bench_function(BenchmarkId::new("router_handle", "cluster"), |b| {
        b.iter(|| black_box(router::handle(&state, &parsed)))
    });

    // Full loopback round trip on one keep-alive connection.
    let mut one = KeepAlive::connect(addr);
    let mut i = 0usize;
    group.throughput(Throughput::Elements(1));
    group.bench_function(BenchmarkId::new("http_round_trip", "cluster"), |b| {
        b.iter(|| {
            i = (i + 1) % wires.len();
            black_box(one.round_trip(&wires[i]))
        })
    });
    group.finish();

    // Sustained aggregate load: N keep-alive clients, each sending
    // pipelined bursts (the parser drains every buffered request before
    // the next read, so this measures server capacity rather than
    // per-request syscall latency).
    const PIPELINE_DEPTH: usize = 16;
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..clients)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let wires = wires.clone();
            std::thread::spawn(move || {
                let mut conn = KeepAlive::connect(addr);
                let mut done = 0u64;
                // Stagger each client's burst through the address cycle.
                let batch: Vec<u8> = (0..PIPELINE_DEPTH)
                    .flat_map(|j| wires[(w + j) % wires.len()].clone())
                    .collect();
                while !stop.load(Ordering::Relaxed) {
                    conn.pipelined(&batch, PIPELINE_DEPTH);
                    done += PIPELINE_DEPTH as u64;
                }
                done
            })
        })
        .collect();
    let started = Instant::now();
    std::thread::sleep(sustain_for);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .sum();
    let elapsed = started.elapsed().as_secs_f64();
    let sustained_qps = total as f64 / elapsed;

    let results = c.take_results();
    let ns_of = |needle: &str| {
        results
            .iter()
            .find(|r| r.id.contains(needle))
            .map(|r| r.ns_per_iter)
            .unwrap_or(f64::NAN)
    };
    let router_ns = ns_of("router_handle");
    let round_trip_ns = ns_of("http_round_trip");

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"threads_used\": {}}}{}\n",
            r.id,
            r.ns_per_iter,
            r.threads_used,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"host_threads\": {},\n", host_threads()));
    json.push_str(&format!("  \"ingested_requests\": {requests},\n"));
    json.push_str(&format!("  \"router_handle_ns\": {router_ns:.1},\n"));
    json.push_str(&format!("  \"http_round_trip_ns\": {round_trip_ns:.1},\n"));
    json.push_str(&format!("  \"sustained_clients\": {clients},\n"));
    json.push_str(&format!("  \"sustained_seconds\": {elapsed:.3},\n"));
    json.push_str(&format!("  \"sustained_queries\": {total},\n"));
    json.push_str(&format!("  \"sustained_qps\": {sustained_qps:.0},\n"));
    json.push_str(&format!("  \"quick\": {}\n", quick_mode()));
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    println!(
        "\nrouter {:.2} µs, round trip {:.2} µs, sustained {:.0} q/s \
         ({clients} clients, {:.2}s)",
        router_ns / 1e3,
        round_trip_ns / 1e3,
        sustained_qps,
        elapsed
    );
    println!("wrote {out}");

    drop(daemon);
    let _ = std::fs::remove_dir_all(dir);
}
