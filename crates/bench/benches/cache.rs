//! Cache-simulator micro-benchmarks: raw LRU operations, PCV request
//! handling, and the full per-cluster trace replay.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netclust_cachesim::{simulate, Entry, LruCache, PcvProxy, ResourceModel, SimConfig};
use netclust_core::Clustering;
use netclust_netgen::{standard_merged, Universe, UniverseConfig};
use netclust_weblog::{generate, LogSpec, ZipfSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_lru(c: &mut Criterion) {
    let zipf = ZipfSampler::new(5_000, 0.9);
    let mut rng = StdRng::seed_from_u64(3);
    let ops: Vec<u32> = (0..100_000).map(|_| zipf.sample(&mut rng) as u32).collect();

    let mut group = c.benchmark_group("cache_ops");
    group.throughput(Throughput::Elements(ops.len() as u64));
    group.bench_function("lru_get_insert", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(4 << 20);
            let mut hits = 0u64;
            for (i, &url) in ops.iter().enumerate() {
                if cache.get(url).is_some() {
                    hits += 1;
                } else {
                    cache.insert(
                        url,
                        Entry {
                            size: 4096,
                            cached_at: i as u32,
                            validated_at: i as u32,
                            version: 0,
                        },
                    );
                }
            }
            hits
        })
    });
    group.bench_function("pcv_request", |b| {
        b.iter(|| {
            let mut proxy = PcvProxy::new(4 << 20, 3_600, ResourceModel::default_web(1));
            for (i, &url) in ops.iter().enumerate() {
                proxy.request(url, 4096, i as u32);
            }
            proxy.stats().hits
        })
    });
    group.finish();
}

fn bench_trace_replay(c: &mut Criterion) {
    let universe = Universe::generate(UniverseConfig {
        seed: 7,
        ..UniverseConfig::default()
    });
    let merged = standard_merged(&universe, 0);
    let mut spec = LogSpec::tiny("bench", 5);
    spec.total_requests = 150_000;
    spec.target_clients = 3_000;
    let log = generate(&universe, &spec);
    let clustering = Clustering::network_aware(&log, &merged);

    let mut group = c.benchmark_group("trace_replay");
    group.throughput(Throughput::Elements(log.requests.len() as u64));
    group.sample_size(10);
    group.bench_function("per_cluster_proxies_1MB", |b| {
        b.iter(|| simulate(&log, &clustering, &SimConfig::paper(1 << 20)).server_hit_ratio())
    });
    group.finish();
}

criterion_group!(benches, bench_lru, bench_trace_replay);
criterion_main!(benches);
