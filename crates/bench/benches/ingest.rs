//! End-to-end ingest throughput: raw Common Log Format bytes in,
//! clusters out, at production scale.
//!
//! Compares the classic route — `clf::from_clf` builds a `Log` (per-line
//! `String` splits, interned paths/agents), then
//! `Clustering::network_aware_compiled` clusters it — against the fused
//! zero-copy pipeline (`IngestPipeline`: chunked byte parsing straight
//! into sharded per-client accumulators and batch LPM). Parse-only
//! stages are measured separately to show where the time goes.
//!
//! Results are persisted machine-readably to `BENCH_ingest.json` at the
//! repo root with both end-to-end numbers and their ratio — the
//! headline fused-over-baseline speedup.

use std::collections::BTreeSet;

use criterion::{quick_mode, BenchmarkId, Criterion, Throughput};
use netclust_core::{Clustering, IngestPipeline};
use netclust_prefix::Ipv4Net;
use netclust_rtable::{MergedTable, RoutingTable, TableKind};
use netclust_weblog::{clf, clf_bytes, Log, LogTruth, Request, UrlMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizes `n` unique prefixes with a BGP-like length mix (same
/// model as the flat_lpm bench).
fn synth_prefixes(n: usize, seed: u64) -> Vec<Ipv4Net> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set: BTreeSet<Ipv4Net> = BTreeSet::new();
    while set.len() < n {
        let roll: u32 = rng.gen_range(0..100);
        let len: u8 = if roll < 55 {
            24
        } else if roll < 85 {
            rng.gen_range(16..=23)
        } else if roll < 95 {
            rng.gen_range(25..=28)
        } else {
            rng.gen_range(8..=15)
        };
        set.insert(Ipv4Net::new(rng.gen::<u32>(), len).expect("len <= 32"));
    }
    set.into_iter().collect()
}

/// A synthetic access log whose clients live inside the table's prefixes.
fn synth_log(prefixes: &[Ipv4Net], requests: usize, clients: usize, seed: u64) -> Log {
    let mut rng = StdRng::seed_from_u64(seed);
    let client_addrs: Vec<u32> = (0..clients)
        .map(|_| {
            let net = prefixes[rng.gen_range(0..prefixes.len())];
            net.addr_u32() | (rng.gen::<u32>() & !net.netmask_u32())
        })
        .collect();
    let n_urls = 2_000u32;
    let requests: Vec<Request> = (0..requests)
        .map(|i| Request {
            time: i as u32,
            client: client_addrs[rng.gen_range(0..client_addrs.len())],
            url: rng.gen_range(0..n_urls),
            bytes: rng.gen_range(200..20_000),
            status: 200,
            ua: 0,
        })
        .collect();
    Log {
        name: "ingest-bench".into(),
        requests,
        urls: (0..n_urls)
            .map(|i| UrlMeta {
                path: format!("/docs/section-{}/page-{i}.html", i % 37),
                size: 4_096,
            })
            .collect(),
        user_agents: vec!["Mozilla/4.0 (compatible; MSIE 5.0; Windows 98)".into()],
        start_time: 887_328_000,
        duration_s: u32::MAX,
        truth: LogTruth::default(),
    }
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let (n_prefixes_synth, n_requests, n_clients) = if quick_mode() {
        (8_000, 50_000, 5_000)
    } else {
        (110_000, 500_000, 40_000)
    };

    let prefixes = synth_prefixes(n_prefixes_synth, 0xF1A7);
    let split = prefixes.len() * 92 / 100;
    let bgp = RoutingTable::new(
        "SYNTH-BGP",
        "d0",
        TableKind::Bgp,
        prefixes[..split].to_vec(),
    );
    let dump = RoutingTable::new(
        "SYNTH-ARIN",
        "d0",
        TableKind::NetworkDump,
        prefixes[split..].to_vec(),
    );
    let merged = MergedTable::merge([&bgp, &dump]);
    let compiled = merged.compile();

    // The corpus: a generated log serialized to CLF once; every bench
    // consumes the same bytes.
    let log = synth_log(&prefixes, n_requests, n_clients, 0xC10C);
    let corpus = clf::to_clf(&log);
    let bytes = corpus.as_bytes();
    let lines = corpus.lines().count();
    println!(
        "corpus: {} lines, {:.1} MiB, {} table prefixes\n",
        lines,
        bytes.len() as f64 / (1024.0 * 1024.0),
        merged.len()
    );

    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Bytes(bytes.len() as u64));

    // Baseline (the pre-existing route, String parse then clustering) vs
    // the fused pipeline, measured as an interleaved pair: the persisted
    // speedup is their ratio, and separate measurement windows would
    // charge any within-process clock drift entirely to the later bench.
    let pipeline = IngestPipeline::new(&compiled);
    group.bench_pair(
        BenchmarkId::new("baseline_string", lines),
        || {
            let (log, _) = clf::from_clf("bench", &corpus);
            Clustering::network_aware_compiled(&log, &compiled).len()
        },
        BenchmarkId::new("fused", lines),
        || pipeline.run(bytes).clustering.len(),
    );
    // Parse-only stages, to locate the cost.
    group.bench_function(BenchmarkId::new("parse_only_string", lines), |b| {
        b.iter(|| clf::from_clf("bench", &corpus).0.requests.len())
    });
    group.bench_function(BenchmarkId::new("parse_only_bytes", lines), |b| {
        b.iter(|| clf_bytes::from_clf_bytes("bench", bytes).0.requests.len())
    });
    // The fused pipeline without unique-URL tracking.
    let pipeline_no_urls = IngestPipeline::new(&compiled).url_stats(false);
    group.bench_function(BenchmarkId::new("fused_no_urls", lines), |b| {
        b.iter(|| pipeline_no_urls.run(bytes).clustering.len())
    });
    group.finish();

    // Sanity: the fused route reproduces the baseline clustering.
    {
        let (blog, berrs) = clf::from_clf("bench", &corpus);
        let expect = Clustering::network_aware_compiled(&blog, &compiled);
        let report = pipeline.run(bytes);
        assert!(berrs.is_empty() && report.errors.is_empty());
        assert_eq!(report.clustering.len(), expect.len());
        assert_eq!(report.clustering.total_requests, expect.total_requests);
    }

    // Persist machine-readable results.
    let results = c.take_results();
    let rate = |needle: &str| {
        results
            .iter()
            .find(|r| r.id.contains(needle))
            .and_then(|r| r.per_second())
            .unwrap_or(f64::NAN)
    };
    let baseline = rate("ingest/baseline_string");
    let fused = rate("ingest/fused/");
    let speedup = fused / baseline;

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"per_second\": {}, \"threads_used\": {}}}{}\n",
            r.id,
            r.ns_per_iter,
            r.per_second().map_or("null".into(), |p| format!("{p:.1}")),
            r.threads_used,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    json.push_str(&format!("  \"host_threads\": {threads},\n"));
    json.push_str(&format!("  \"corpus_bytes\": {},\n", bytes.len()));
    json.push_str(&format!("  \"corpus_lines\": {lines},\n"));
    json.push_str(&format!("  \"table_prefixes\": {},\n", merged.len()));
    json.push_str(&format!("  \"baseline_bytes_per_sec\": {baseline:.1},\n"));
    json.push_str(&format!("  \"fused_bytes_per_sec\": {fused:.1},\n"));
    json.push_str(&format!(
        "  \"fused_no_urls_bytes_per_sec\": {:.1},\n",
        rate("ingest/fused_no_urls")
    ));
    json.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    json.push_str(&format!(
        "  \"fused_over_baseline_speedup\": {speedup:.2}\n"
    ));
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(out, &json).expect("write BENCH_ingest.json");
    println!("\nfused-over-baseline speedup: {speedup:.2}x");
    println!("wrote {out}");
}
