//! Durability-layer costs at production scale: what a checkpoint of a
//! ~110K-prefix streaming state costs, what one fsync'd journal append
//! costs on the feed hot path, and how long a cold recovery (newest
//! snapshot + full journal replay) takes. The headline numbers land in
//! `BENCH_recovery.json`; the interesting ratio is journal-append vs
//! snapshot-write — the write-ahead journal only earns its keep if
//! appending is orders of magnitude cheaper than checkpointing.

use std::collections::BTreeMap;
use std::path::PathBuf;

use criterion::{host_threads, quick_mode, BenchmarkId, Criterion, Throughput};
use netclust_bgpsim::{DeltaStream, DeltaStreamConfig};
use netclust_core::persist::encode_state;
use netclust_core::{
    FeedProgress, FsyncPolicy, JournalBatch, PatchStats, StateStore, StreamState,
    StreamingClustering, SwapPolicy, SwapStats,
};
use netclust_obs::{ErrorCounts, Obs};
use netclust_prefix::Ipv4Net;
use netclust_rtable::{MergedTable, RoutingTable, TableKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizes `n` unique prefixes with a BGP-like length mix (same model
/// as the ingest and table-update benches).
fn synth_prefixes(n: usize, seed: u64) -> Vec<Ipv4Net> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set: std::collections::BTreeSet<Ipv4Net> = std::collections::BTreeSet::new();
    while set.len() < n {
        let roll: u32 = rng.gen_range(0..100);
        let len: u8 = if roll < 55 {
            24
        } else if roll < 85 {
            rng.gen_range(16..=23)
        } else if roll < 95 {
            rng.gen_range(25..=28)
        } else {
            rng.gen_range(8..=15)
        };
        set.insert(Ipv4Net::new(rng.gen::<u32>(), len).expect("len <= 32"));
    }
    set.into_iter().collect()
}

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "netclust_persist_bench_{name}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let (n_prefixes, n_clients, n_journal) = if quick_mode() {
        (8_000usize, 2_000usize, 16usize)
    } else {
        (110_000, 20_000, 64)
    };

    // A consistent StreamState at scale: the stored totals must agree with
    // what `restore` recomputes, so the unclustered tally is derived from
    // the same compiled table the recovery path rebuilds.
    let prefixes = synth_prefixes(n_prefixes, 0xD1CE);
    let bgp = RoutingTable::new("bench-bgp", "bench", TableKind::Bgp, prefixes.clone());
    let compiled = MergedTable::merge([&bgp]).compile();
    let mut rng = StdRng::seed_from_u64(0xC11E);
    let mut rows: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    while rows.len() < n_clients {
        rows.insert(rng.gen::<u32>(), (3, 900));
    }
    let per_client: Vec<(u32, u64, u64)> = rows.iter().map(|(&a, &(r, b))| (a, r, b)).collect();
    let addrs: Vec<u32> = per_client.iter().map(|&(a, _, _)| a).collect();
    let nets = compiled.net_for_batch(&addrs);
    let unclustered_requests: u64 = per_client
        .iter()
        .zip(&nets)
        .filter(|(_, net)| net.is_none())
        .map(|(&(_, r, _), _)| r)
        .sum();
    let total_requests: u64 = per_client.iter().map(|&(_, r, _)| r).sum();
    let state = StreamState {
        table_version: 0,
        feed_pos: 0,
        bgp_prefixes: prefixes.clone(),
        dump_prefixes: Vec::new(),
        per_client,
        total_requests,
        unclustered_requests,
        clf_counts: ErrorCounts::default(),
        swap_stats: SwapStats::default(),
        patch_stats: PatchStats::default(),
        last_rejection: None,
        correction: None,
        feed: FeedProgress::default(),
    };
    let snapshot_bytes = encode_state(&state).len();
    println!(
        "state: {} prefixes, {} clients -> {} byte snapshot\n",
        n_prefixes, n_clients, snapshot_bytes
    );

    // Journal material: realistic churn batches over the live prefix set.
    let mut feed = DeltaStream::new(0xFEED, prefixes.clone(), DeltaStreamConfig::default());
    let batches: Vec<JournalBatch> = (0..n_journal as u64)
        .map(|i| {
            let b = feed.next_batch();
            JournalBatch {
                feed_index: i,
                session_reset: b.session_reset,
                deltas: b.deltas,
            }
        })
        .collect();
    let append_batch = batches.first().expect("journal material").clone();

    let mut group = c.benchmark_group("persist");
    group.threads_used(1);

    // Checkpoint: encode + temp write + fsync + rename + fresh journal.
    let snap_dir = bench_dir("snapshot");
    let mut snap_store =
        StateStore::create(&snap_dir, FsyncPolicy::EveryBatch).expect("create snapshot store");
    group.throughput(Throughput::Bytes(snapshot_bytes as u64));
    group.bench_function(BenchmarkId::new("snapshot_write", n_prefixes), |b| {
        b.iter(|| snap_store.checkpoint(&state).expect("checkpoint"))
    });

    // Journal append under both durability policies: `every_batch` pays an
    // fsync per call (the default, what the feed loop does), `os` is the
    // raw buffered-write cost.
    let append_ns = |policy: FsyncPolicy, tag: &str, c: &mut criterion::BenchmarkGroup<'_>| {
        let dir = bench_dir(tag);
        let mut store = StateStore::create(&dir, policy).expect("create journal store");
        store.checkpoint(&state).expect("base checkpoint");
        c.throughput(Throughput::Elements(append_batch.deltas.len() as u64));
        c.bench_function(BenchmarkId::new(tag, append_batch.deltas.len()), |b| {
            b.iter(|| store.append_batch(&append_batch).expect("append"))
        });
        dir
    };
    let j1 = append_ns(FsyncPolicy::EveryBatch, "journal_append_fsync", &mut group);
    let j2 = append_ns(FsyncPolicy::Os, "journal_append_os", &mut group);

    // Cold recovery: newest snapshot + full journal replay into a serving
    // stream, exactly the `--resume` path.
    let rec_dir = bench_dir("recovery");
    {
        let mut store =
            StateStore::create(&rec_dir, FsyncPolicy::EveryBatch).expect("create recovery store");
        store.checkpoint(&state).expect("base checkpoint");
        for b in &batches {
            store.append_batch(b).expect("append");
        }
    }
    group.throughput(Throughput::Elements(1));
    group.bench_function(BenchmarkId::new("recovery", n_journal), |b| {
        b.iter(|| {
            let (_store, recovered, report) =
                StateStore::recover(&rec_dir, FsyncPolicy::EveryBatch).expect("recover");
            let mut stream =
                StreamingClustering::restore(&recovered, SwapPolicy::default(), Obs::disabled())
                    .expect("restore");
            for b in &report.batches {
                stream.apply_deltas(&b.deltas);
            }
            stream.table_version()
        })
    });
    group.finish();

    let results = c.take_results();
    let ns_of = |needle: &str| {
        results
            .iter()
            .find(|r| r.id.contains(needle))
            .map(|r| r.ns_per_iter)
            .unwrap_or(f64::NAN)
    };
    let snapshot_ns = ns_of("snapshot_write");
    let append_fsync_ns = ns_of("journal_append_fsync");
    let append_os_ns = ns_of("journal_append_os");
    let recovery_ns = ns_of("recovery");

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"threads_used\": {}}}{}\n",
            r.id,
            r.ns_per_iter,
            r.threads_used,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"host_threads\": {},\n", host_threads()));
    json.push_str("  \"threads_used\": 1,\n");
    json.push_str(&format!("  \"table_prefixes\": {n_prefixes},\n"));
    json.push_str(&format!("  \"clients\": {n_clients},\n"));
    json.push_str(&format!("  \"snapshot_bytes\": {snapshot_bytes},\n"));
    json.push_str(&format!("  \"snapshot_write_ns\": {snapshot_ns:.1},\n"));
    json.push_str(&format!(
        "  \"journal_append_fsync_ns\": {append_fsync_ns:.1},\n"
    ));
    json.push_str(&format!("  \"journal_append_os_ns\": {append_os_ns:.1},\n"));
    json.push_str(&format!("  \"recovery_journal_batches\": {n_journal},\n"));
    json.push_str(&format!("  \"recovery_ns\": {recovery_ns:.1},\n"));
    json.push_str(&format!("  \"quick\": {}\n", quick_mode()));
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(out, &json).expect("write BENCH_recovery.json");
    println!(
        "\nsnapshot {:.2} ms ({} KiB), append {:.1} µs fsync'd / {:.2} µs buffered, \
         recovery {:.2} ms ({} batches)",
        snapshot_ns / 1e6,
        snapshot_bytes / 1024,
        append_fsync_ns / 1e3,
        append_os_ns / 1e3,
        recovery_ns / 1e6,
        n_journal
    );
    println!("wrote {out}");

    for dir in [snap_dir, j1, j2, rec_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
