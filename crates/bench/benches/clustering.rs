//! End-to-end clustering throughput: how fast a server log's clients are
//! grouped by each method. The paper stresses the pipeline is
//! "computationally non-intensive" — this bench quantifies that.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netclust_core::Clustering;
use netclust_netgen::{standard_merged, Universe, UniverseConfig};
use netclust_weblog::{generate, LogSpec};

fn bench_clustering(c: &mut Criterion) {
    let universe = Universe::generate(UniverseConfig {
        seed: 7,
        ..UniverseConfig::default()
    });
    let merged = standard_merged(&universe, 0);
    let mut spec = LogSpec::tiny("bench", 3);
    spec.total_requests = 200_000;
    spec.target_clients = 4_000;
    let log = generate(&universe, &spec);

    let mut group = c.benchmark_group("clustering");
    group.throughput(Throughput::Elements(log.requests.len() as u64));
    group.sample_size(20);
    group.bench_function("network_aware", |b| {
        b.iter(|| Clustering::network_aware(&log, &merged).len())
    });
    group.bench_function("simple24", |b| b.iter(|| Clustering::simple24(&log).len()));
    group.bench_function("classful", |b| b.iter(|| Clustering::classful(&log).len()));
    group.finish();

    // Table merging itself.
    let tables = netclust_netgen::standard_collection(&universe, 0, 0);
    let total: usize = tables.iter().map(|t| t.len()).sum();
    let mut group = c.benchmark_group("table_merge");
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("merge_14_tables", |b| {
        b.iter(|| netclust_rtable::MergedTable::merge(tables.iter()).len())
    });
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
