//! Longest-prefix-match micro-benchmarks and data-structure ablation:
//! radix trie vs per-length hash maps vs linear scan, plus build cost.
//!
//! The trie is the workhorse of the clustering pipeline (§3.2.1 matches
//! every client "similar to what IP routers do"); this bench justifies it
//! over the simpler alternatives DESIGN.md lists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netclust_bench::{ByLengthLpm, LinearLpm};
use netclust_netgen::{snapshot, Universe, UniverseConfig, VantageSpec};
use netclust_prefix::Ipv4Net;
use netclust_rtable::PrefixTrie;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(n_ases: usize) -> (Vec<Ipv4Net>, Vec<u32>) {
    let universe = Universe::generate(UniverseConfig {
        seed: 7,
        num_ases: n_ases,
        ..UniverseConfig::default()
    });
    let table = snapshot(&universe, &VantageSpec::new("BENCH", 0.9, 0.05), 0, 0);
    let prefixes = table.prefixes().to_vec();
    // Probe addresses: real hosts (hits) mixed with random space (misses).
    let mut rng = StdRng::seed_from_u64(1);
    let mut probes = Vec::with_capacity(10_000);
    for i in 0..10_000u32 {
        if i % 4 == 0 {
            probes.push(rng.gen::<u32>());
        } else {
            let org = &universe.orgs()[rng.gen_range(0..universe.orgs().len())];
            probes.push(u32::from(org.host_addr(0).expect("active host")));
        }
    }
    (prefixes, probes)
}

fn bench_lpm(c: &mut Criterion) {
    let (prefixes, probes) = setup(220);
    let trie: PrefixTrie<()> = prefixes.iter().map(|&n| (n, ())).collect();
    let bylen = ByLengthLpm::new(&prefixes);
    let linear = LinearLpm::new(prefixes.clone());

    let mut group = c.benchmark_group("lpm_lookup");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function(BenchmarkId::new("radix_trie", prefixes.len()), |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&a| trie.longest_match_u32(a).is_some())
                .count()
        })
    });
    group.bench_function(BenchmarkId::new("bylen_hashmaps", prefixes.len()), |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&a| bylen.lookup(a).is_some())
                .count()
        })
    });
    group.finish();

    // Linear scan over thousands of prefixes is orders slower; probe fewer
    // (and account throughput for exactly those probes).
    let few = &probes[..200];
    let mut group = c.benchmark_group("lpm_lookup_linear");
    group.throughput(Throughput::Elements(few.len() as u64));
    group.bench_function(BenchmarkId::new("linear_scan", prefixes.len()), |b| {
        b.iter(|| few.iter().filter(|&&a| linear.lookup(a).is_some()).count())
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let (prefixes, _) = setup(220);
    let mut group = c.benchmark_group("lpm_build");
    group.throughput(Throughput::Elements(prefixes.len() as u64));
    group.bench_function("radix_trie", |b| {
        b.iter(|| {
            let trie: PrefixTrie<()> = prefixes.iter().map(|&n| (n, ())).collect();
            trie.len()
        })
    });
    group.bench_function("bylen_hashmaps", |b| b.iter(|| ByLengthLpm::new(&prefixes)));
    group.finish();
}

criterion_group!(benches, bench_lpm, bench_build);
criterion_main!(benches);
