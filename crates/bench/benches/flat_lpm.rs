//! Compiled flat LPM (DIR-24-8) vs radix trie, and serial vs parallel
//! clustering, at production table scale (≥100k prefixes).
//!
//! Beyond the console table, results are persisted machine-readably to
//! `BENCH_lpm.json` at the repo root — lookups/sec per engine, requests
//! clustered/sec per strategy, and the compiled-over-trie speedup — so CI
//! and docs can quote the numbers without scraping bench output.

use std::collections::BTreeSet;

use criterion::{quick_mode, BenchmarkId, Criterion, Throughput};
use netclust_core::Clustering;
use netclust_prefix::Ipv4Net;
use netclust_rtable::{Handle, MergedTable, RoutingTable, TableKind};
use netclust_weblog::{Log, LogTruth, Request, UrlMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizes `n` unique prefixes with a BGP-like length mix (dominated
/// by /24 and /16–/23, a tail of longer and shorter entries).
fn synth_prefixes(n: usize, seed: u64) -> Vec<Ipv4Net> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set: BTreeSet<Ipv4Net> = BTreeSet::new();
    while set.len() < n {
        let roll: u32 = rng.gen_range(0..100);
        let len: u8 = if roll < 55 {
            24
        } else if roll < 85 {
            rng.gen_range(16..=23)
        } else if roll < 95 {
            rng.gen_range(25..=28)
        } else {
            rng.gen_range(8..=15)
        };
        set.insert(Ipv4Net::new(rng.gen::<u32>(), len).expect("len <= 32"));
    }
    set.into_iter().collect()
}

/// Probe addresses: mostly inside table prefixes (hits), rest random.
fn synth_probes(prefixes: &[Ipv4Net], n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 4 == 0 {
                rng.gen::<u32>()
            } else {
                let net = prefixes[rng.gen_range(0..prefixes.len())];
                net.addr_u32() | (rng.gen::<u32>() & !net.netmask_u32())
            }
        })
        .collect()
}

/// A synthetic access log whose clients live inside the table's prefixes.
fn synth_log(prefixes: &[Ipv4Net], requests: usize, clients: usize, seed: u64) -> Log {
    let mut rng = StdRng::seed_from_u64(seed);
    let client_addrs: Vec<u32> = (0..clients)
        .map(|_| {
            let net = prefixes[rng.gen_range(0..prefixes.len())];
            net.addr_u32() | (rng.gen::<u32>() & !net.netmask_u32())
        })
        .collect();
    let n_urls = 1_000u32;
    let requests: Vec<Request> = (0..requests)
        .map(|i| Request {
            time: i as u32,
            client: client_addrs[rng.gen_range(0..client_addrs.len())],
            url: rng.gen_range(0..n_urls),
            bytes: rng.gen_range(200..20_000),
            status: 200,
            ua: 0,
        })
        .collect();
    Log {
        name: "flat-lpm-bench".into(),
        requests,
        urls: (0..n_urls)
            .map(|i| UrlMeta {
                path: format!("/u/{i}"),
                size: 4_096,
            })
            .collect(),
        user_agents: vec!["bench".into()],
        start_time: 0,
        duration_s: u32::MAX,
        truth: LogTruth::default(),
    }
}

fn json_escape_free(id: &str) -> String {
    // Bench ids here are ASCII without quotes/backslashes by construction.
    id.to_string()
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    // Quick mode (CI smoke): shrink workloads so the whole bench runs in
    // seconds; the JSON then carries "quick": true and is not meaningful.
    let (n_prefixes_synth, n_probes, n_requests, n_clients) = if quick_mode() {
        (8_000, 20_000, 60_000, 6_000)
    } else {
        (110_000, 100_000, 400_000, 40_000)
    };

    // ≥100k-prefix merged table: 92% BGP tier, 8% registry-dump tier.
    let prefixes = synth_prefixes(n_prefixes_synth, 0xF1A7);
    let split = prefixes.len() * 92 / 100;
    let bgp = RoutingTable::new(
        "SYNTH-BGP",
        "d0",
        TableKind::Bgp,
        prefixes[..split].to_vec(),
    );
    let dump = RoutingTable::new(
        "SYNTH-ARIN",
        "d0",
        TableKind::NetworkDump,
        prefixes[split..].to_vec(),
    );
    let merged = MergedTable::merge([&bgp, &dump]);
    let compiled = merged.compile();
    let probes = synth_probes(&prefixes, n_probes, 0x9A0B);
    let n_prefixes = merged.len();

    let mut group = c.benchmark_group("flat_lpm");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function(BenchmarkId::new("trie", n_prefixes), |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&a| merged.lookup_u32(a).is_some())
                .count()
        })
    });
    group.bench_function(BenchmarkId::new("compiled", n_prefixes), |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&a| compiled.net_for_u32(a).is_some())
                .count()
        })
    });
    let mut handles = vec![Handle::NONE; probes.len()];
    group.bench_function(BenchmarkId::new("compiled_batch", n_prefixes), |b| {
        b.iter(|| {
            compiled.bgp().lookup_batch(&probes, &mut handles);
            handles.iter().filter(|h| h.is_some()).count()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("compile");
    group.throughput(Throughput::Elements(n_prefixes as u64));
    group.bench_function(BenchmarkId::new("merged", n_prefixes), |b| {
        b.iter(|| merged.compile().memory_bytes())
    });
    group.finish();

    // Clustering: serial vs parallel over one log, compiled LPM.
    // "parallel" is the dispatching entry point (delegates to serial on a
    // single-threaded pool, so it never loses); "parallel_forced" pins
    // the sharded machinery to expose its raw overhead/win.
    let log = synth_log(&prefixes, n_requests, n_clients, 0xC10C);
    let assign = |a: std::net::Ipv4Addr| compiled.net_for_u32(u32::from(a));
    let mut group = c.benchmark_group("clustering");
    group.throughput(Throughput::Elements(log.requests.len() as u64));
    // Serial vs the *forced* sharded machinery, measured as an
    // interleaved pair: the shard count and span granularity now adapt
    // to the pool, so forced must not lose to serial — and that claim is
    // only meaningful when both sample the same measurement window
    // (separate windows charge clock/thermal drift to whichever runs
    // later, which reads as a phantom sharding cost or win).
    group.bench_pair(
        BenchmarkId::new("serial", log.requests.len()),
        || Clustering::build_serial(&log, "bench", assign).len(),
        BenchmarkId::new("parallel_forced", log.requests.len()),
        || Clustering::build_sharded(&log, "bench", assign).len(),
    );
    // The dispatching entry point (delegates to serial below the
    // request-count threshold or on a single-threaded pool).
    group.bench_function(BenchmarkId::new("parallel", log.requests.len()), |b| {
        b.iter(|| Clustering::build_parallel(&log, "bench", assign).len())
    });
    group.bench_function(
        BenchmarkId::new("network_aware_compiled", log.requests.len()),
        |b| b.iter(|| Clustering::network_aware_compiled(&log, &compiled).len()),
    );
    group.finish();

    // Persist machine-readable results.
    let results = c.take_results();
    let rate = |needle: &str| {
        results
            .iter()
            .find(|r| r.id.contains(needle))
            .and_then(|r| r.per_second())
            .unwrap_or(f64::NAN)
    };
    let trie_rate = rate("flat_lpm/trie");
    let compiled_rate = rate("flat_lpm/compiled/");
    let speedup = compiled_rate / trie_rate;

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"per_second\": {}, \"threads_used\": {}}}{}\n",
            json_escape_free(&r.id),
            r.ns_per_iter,
            r.per_second().map_or("null".into(), |p| format!("{p:.1}")),
            r.threads_used,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    json.push_str(&format!("  \"host_threads\": {threads},\n"));
    json.push_str(&format!("  \"table_prefixes\": {n_prefixes},\n"));
    json.push_str(&format!(
        "  \"compiled_memory_bytes\": {},\n",
        compiled.memory_bytes()
    ));
    json.push_str(&format!("  \"trie_lookups_per_sec\": {trie_rate:.1},\n"));
    json.push_str(&format!(
        "  \"compiled_lookups_per_sec\": {compiled_rate:.1},\n"
    ));
    json.push_str(&format!(
        "  \"compiled_batch_lookups_per_sec\": {:.1},\n",
        rate("compiled_batch")
    ));
    json.push_str(&format!(
        "  \"serial_requests_per_sec\": {:.1},\n",
        rate("clustering/serial")
    ));
    json.push_str(&format!(
        "  \"parallel_requests_per_sec\": {:.1},\n",
        rate("clustering/parallel/")
    ));
    json.push_str(&format!(
        "  \"parallel_forced_requests_per_sec\": {:.1},\n",
        rate("clustering/parallel_forced")
    ));
    json.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    json.push_str(&format!("  \"compiled_over_trie_speedup\": {speedup:.2}\n"));
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lpm.json");
    std::fs::write(out, &json).expect("write BENCH_lpm.json");
    println!("\ncompiled-over-trie speedup: {speedup:.2}x");
    println!("wrote {out}");
}
