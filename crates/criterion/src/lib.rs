//! Offline shim for the subset of the `criterion` crate API that the
//! netclust benches use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a dependency-free micro-benchmark harness with the same
//! surface: [`Criterion`] (`bench_function`, `benchmark_group`),
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `finish`), [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up (~0.2 s), then timed
//! over adaptive batches until ~0.7 s of samples accumulate; the median
//! batch mean is reported in ns/iter, with derived throughput when the
//! group declared one. Results print as aligned plain text and accumulate
//! in-process (see [`Criterion::take_results`]) so benches can persist
//! machine-readable summaries.

//!
//! Setting `NETCLUST_BENCH_QUICK` in the environment switches to a smoke
//! budget (a few milliseconds per benchmark) so CI can check that every
//! bench still runs and persists its JSON without paying for stable
//! numbers; see [`quick_mode`].

#![warn(missing_docs)]

use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// `true` when `NETCLUST_BENCH_QUICK` is set: benchmarks run on a tiny
/// time budget (correctness smoke, not measurement). Benches can also
/// consult this to shrink their synthetic workloads.
pub fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::var_os("NETCLUST_BENCH_QUICK").is_some())
}

/// Per-batch warmup threshold.
fn batch_threshold() -> Duration {
    if quick_mode() {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(50)
    }
}

/// Total measurement budget per benchmark.
fn measure_budget() -> Duration {
    if quick_mode() {
        Duration::from_millis(25)
    } else {
        Duration::from_millis(700)
    }
}

/// Sample cap per benchmark.
fn max_samples() -> usize {
    if quick_mode() {
        5
    } else {
        100
    }
}

/// Units of work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many items each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark identifier: a function name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (used inside a named group).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark identifier (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing callback holder handed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: find an iteration count that lasts >= the per-batch
        // threshold (~50ms, or ~2ms in quick mode).
        let threshold = batch_threshold();
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= threshold || batch >= 1 << 30 {
                break;
            }
            // Aim just past the threshold next round (64x while far
            // below it — 1ms at the normal 50ms threshold — then 2x).
            let grow = if elapsed < threshold / 50 { 64 } else { 2 };
            batch = batch.saturating_mul(grow);
        }
        // Measurement: batches until the budget (~0.7s, quick: ~25ms)
        // accumulates — at least 3 samples, capped so fast routines stop
        // on time and slow ones stop early.
        let mut samples: Vec<f64> = Vec::new();
        let budget = Instant::now();
        while samples.len() < 3
            || (budget.elapsed() < measure_budget() && samples.len() < max_samples())
        {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// The host's available parallelism — the thread count a benchmark uses
/// unless its group pins one (see [`BenchmarkGroup::threads_used`]).
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/name` when grouped).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Declared per-iteration workload, if any.
    pub throughput: Option<Throughput>,
    /// Worker threads the routine ran with: the group's pinned value, or
    /// the host's available parallelism when nothing was declared.
    pub threads_used: usize,
}

impl BenchResult {
    /// Items (or bytes) processed per second, when a throughput was
    /// declared.
    pub fn per_second(&self) -> Option<f64> {
        self.throughput.map(|t| {
            let units = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
            };
            units * 1e9 / self.ns_per_iter
        })
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human_rate(per_s: f64, throughput: Throughput) -> String {
    let unit = match throughput {
        Throughput::Elements(_) => "elem/s",
        Throughput::Bytes(_) => "B/s",
    };
    if per_s >= 1e9 {
        format!("{:.3} G{unit}", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.3} M{unit}", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.3} K{unit}", per_s / 1e3)
    } else {
        format!("{per_s:.1} {unit}")
    }
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored: the shim
    /// has no baselines or filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn run_one(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        threads_used: usize,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher {
            ns_per_iter: f64::NAN,
        };
        f(&mut bencher);
        self.record(id, throughput, threads_used, bencher.ns_per_iter);
    }

    fn record(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        threads_used: usize,
        ns_per_iter: f64,
    ) {
        let result = BenchResult {
            id,
            ns_per_iter,
            throughput,
            threads_used,
        };
        match result.per_second() {
            Some(rate) => println!(
                "{:<44} time: {:>12}/iter   thrpt: {:>14}",
                result.id,
                human_time(result.ns_per_iter),
                human_rate(rate, result.throughput.expect("rate implies throughput")),
            ),
            None => println!(
                "{:<44} time: {:>12}/iter",
                result.id,
                human_time(result.ns_per_iter),
            ),
        }
        self.results.push(result);
    }

    /// Benchmarks one routine.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into_id(), None, host_threads(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            threads_used: None,
        }
    }

    /// Drains the accumulated results (for machine-readable persistence).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// A group of related benchmarks sharing throughput configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    threads_used: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the per-iteration workload for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Declares the worker-thread count subsequent routines actually run
    /// with (a pinned pool, `IngestPipeline::threads(n)`, …), persisted
    /// per result as [`BenchResult::threads_used`]. Unset, results carry
    /// the host's available parallelism.
    pub fn threads_used(&mut self, threads: usize) -> &mut Self {
        self.threads_used = Some(threads.max(1));
        self
    }

    fn effective_threads(&self) -> usize {
        self.threads_used.unwrap_or_else(host_threads)
    }

    /// Benchmarks one routine within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion
            .run_one(full, self.throughput, self.effective_threads(), &mut f);
        self
    }

    /// Benchmarks two routines as a counterbalanced interleaved pair:
    /// samples alternate within one measurement window in A B / B A
    /// cycles. Sequential `bench_function` calls give each routine its
    /// own window, so slow clock or thermal drift over a long bench
    /// process is charged entirely to whichever routine runs later — a
    /// systematic bias in any persisted ratio of the two. Interleaving
    /// drifts both medians equally, and alternating which routine leads
    /// each cycle cancels the residual position effect (the second
    /// routine of a back-to-back pair can run measurably different via
    /// cache and frequency state the first just set up). Each sample is
    /// one call (no batching): intended for routines that run
    /// milliseconds or more.
    pub fn bench_pair<A, OA, B, OB>(
        &mut self,
        id_a: impl IntoBenchmarkId,
        mut a: A,
        id_b: impl IntoBenchmarkId,
        mut b: B,
    ) -> &mut Self
    where
        A: FnMut() -> OA,
        B: FnMut() -> OB,
    {
        black_box(a());
        black_box(b());
        let mut samples_a: Vec<f64> = Vec::new();
        let mut samples_b: Vec<f64> = Vec::new();
        let mut a_leads = true;
        let budget = Instant::now();
        // Twice the single-bench budget: the window covers two routines.
        while samples_a.len() < 4
            || (budget.elapsed() < measure_budget() * 2 && samples_a.len() < max_samples())
        {
            let mut run_a = || {
                let t = Instant::now();
                black_box(a());
                samples_a.push(t.elapsed().as_nanos() as f64);
            };
            let mut run_b = || {
                let t = Instant::now();
                black_box(b());
                samples_b.push(t.elapsed().as_nanos() as f64);
            };
            if a_leads {
                run_a();
                run_b();
            } else {
                run_b();
                run_a();
            }
            a_leads = !a_leads;
        }
        let median = |mut s: Vec<f64>| {
            s.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
            s[s.len() / 2]
        };
        for (id, samples) in [(id_a.into_id(), samples_a), (id_b.into_id(), samples_b)] {
            let ns = median(samples);
            let full = format!("{}/{}", self.name, id);
            self.criterion
                .record(full, self.throughput, self.effective_threads(), ns);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop-ish", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].ns_per_iter.is_finite());
        assert!(results[0].ns_per_iter >= 0.0);
        assert!(results[0].per_second().is_none());
    }

    #[test]
    fn group_throughput_and_ids() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).throughput(Throughput::Elements(1000));
            g.bench_function(BenchmarkId::new("f", 32), |b| b.iter(|| black_box(1)));
            g.finish();
        }
        let results = c.take_results();
        assert_eq!(results[0].id, "g/f/32");
        let rate = results[0].per_second().expect("throughput declared");
        assert!(rate > 0.0);
        assert_eq!(results[0].threads_used, host_threads());
    }

    #[test]
    fn pinned_threads_are_persisted_per_result() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("t");
            g.threads_used(3);
            g.bench_function("pinned", |b| b.iter(|| black_box(1)));
            g.threads_used(1);
            g.bench_function("serial", |b| b.iter(|| black_box(1)));
            g.finish();
        }
        let results = c.take_results();
        assert_eq!(results[0].threads_used, 3);
        assert_eq!(results[1].threads_used, 1);
    }

    #[test]
    fn bench_pair_records_both_with_throughput() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("pair");
            g.throughput(Throughput::Bytes(1 << 20));
            g.bench_pair(
                BenchmarkId::new("a", 1),
                || black_box(1u64 + 1),
                BenchmarkId::new("b", 1),
                || black_box([0u8; 64].iter().map(|&x| x as u64).sum::<u64>()),
            );
            g.finish();
        }
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "pair/a/1");
        assert_eq!(results[1].id, "pair/b/1");
        for r in &results {
            assert!(r.ns_per_iter.is_finite() && r.ns_per_iter >= 0.0);
            assert!(r.per_second().expect("throughput declared") > 0.0);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(human_time(12.34), "12.3 ns");
        assert!(human_time(12_340.0).contains("µs"));
        assert!(human_rate(2.5e6, Throughput::Elements(1)).contains("Melem/s"));
    }
}
