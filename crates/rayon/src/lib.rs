//! Offline shim for the subset of the `rayon` crate API that netclust
//! uses for sharded parallel clustering.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a dependency-free data-parallelism layer with the same calling
//! conventions: [`prelude::ParallelSlice::par_chunks`] and
//! [`prelude::IntoParallelRefIterator::par_iter`] returning eager
//! map/collect pipelines, plus [`join`] and [`current_num_threads`].
//!
//! Unlike upstream rayon there is no global work-stealing pool: each
//! `collect()` runs on `std::thread::scope`-spawned workers, splitting the
//! input into contiguous spans (one per worker) and reassembling results
//! **in input order**, so pipelines are deterministic by construction.
//! For the table-driven LPM + aggregation workloads here, span-splitting
//! performs within noise of work-stealing.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Number of worker threads parallel pipelines will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        (ra, handle.join().expect("joined closure panicked"))
    })
}

/// Runs `f` over each index span `(start, len)` of a length-`len` input on
/// its own thread, returning per-span outputs in span order. The internal
/// engine behind the iterator facades.
fn run_spans<R, F>(len: usize, max_threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let workers = max_threads.min(len).max(1);
    if workers == 1 {
        return vec![f(0, len)];
    }
    let base = len / workers;
    let extra = len % workers;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut start = 0usize;
        let f = &f;
        for w in 0..workers {
            let span = base + usize::from(w < extra);
            let s = start;
            handles.push(scope.spawn(move || f(s, span)));
            start += span;
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Parallel-iterator facades.
pub mod iter {
    use std::marker::PhantomData;

    use super::{current_num_threads, run_spans};

    /// An eager parallel iterator over `&[T]` items.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Maps each item through `f` (runs at `collect` time).
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, R, F>
        where
            R: Send,
            F: Fn(&'a T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
                _out: PhantomData,
            }
        }
    }

    /// The pending `map` stage of a [`ParIter`].
    pub struct ParMap<'a, T, R, F> {
        items: &'a [T],
        f: F,
        _out: PhantomData<R>,
    }

    impl<'a, T, R, F> ParMap<'a, T, R, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        /// Runs the pipeline and collects results in input order.
        pub fn collect<C>(self) -> C
        where
            C: FromIterator<R>,
        {
            let items = self.items;
            let f = &self.f;
            run_spans(items.len(), current_num_threads(), |start, len| {
                items[start..start + len].iter().map(f).collect::<Vec<R>>()
            })
            .into_iter()
            .flatten()
            .collect()
        }
    }

    /// An eager parallel iterator over contiguous chunks of a slice.
    pub struct ParChunks<'a, T> {
        items: &'a [T],
        chunk: usize,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Maps each chunk through `f` (runs at `collect` time).
        pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, R, F>
        where
            R: Send,
            F: Fn(&'a [T]) -> R + Sync,
        {
            ParChunksMap {
                items: self.items,
                chunk: self.chunk,
                f,
                _out: PhantomData,
            }
        }
    }

    /// The pending `map` stage of a [`ParChunks`].
    pub struct ParChunksMap<'a, T, R, F> {
        items: &'a [T],
        chunk: usize,
        f: F,
        _out: PhantomData<R>,
    }

    impl<'a, T, R, F> ParChunksMap<'a, T, R, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        /// Runs the pipeline and collects per-chunk results in chunk
        /// order.
        pub fn collect<C>(self) -> C
        where
            C: FromIterator<R>,
        {
            let items = self.items;
            let f = &self.f;
            let n_chunks = items.len().div_ceil(self.chunk).max(1);
            let chunk = self.chunk;
            run_spans(n_chunks, current_num_threads(), |start, len| {
                items
                    .chunks(chunk)
                    .skip(start)
                    .take(len)
                    .map(f)
                    .collect::<Vec<R>>()
            })
            .into_iter()
            .flatten()
            .collect()
        }
    }

    /// Slices (and anything derefing to them) gain `par_chunks`.
    pub trait ParallelSlice<T: Sync> {
        /// A parallel iterator over `chunk_size`-sized contiguous chunks
        /// (the last may be shorter).
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunks {
                items: self,
                chunk: chunk_size,
            }
        }
    }

    /// Collections referencably iterable in parallel.
    pub trait IntoParallelRefIterator<'a> {
        /// The item type.
        type Item: 'a;
        /// A parallel iterator over `&Item`.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_everything_in_order() {
        let v: Vec<u32> = (0..1_000).collect();
        let sums: Vec<u64> = v
            .par_chunks(64)
            .map(|c| c.iter().map(|&x| x as u64).sum())
            .collect();
        assert_eq!(sums.len(), 1_000usize.div_ceil(64));
        assert_eq!(sums.iter().sum::<u64>(), (0..1_000u64).sum());
        // First chunk is exactly the first 64 elements.
        assert_eq!(sums[0], (0..64u64).sum());
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let chunked: Vec<usize> = v.par_chunks(8).map(|c| c.len()).collect();
        // One empty span over an empty input.
        assert!(chunked.iter().sum::<usize>() == 0);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
        assert!(super::current_num_threads() >= 1);
    }
}
