//! Error type for prefix parsing and construction.

use std::error::Error;
use std::fmt;

/// Errors produced when parsing or constructing IPv4 prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// The dotted-quad address part could not be parsed.
    InvalidAddress(String),
    /// The prefix length is outside `0..=32`.
    InvalidLength(u32),
    /// A dotted netmask whose bit pattern is not contiguous ones followed by
    /// zeroes (e.g. `255.0.255.0`).
    NonContiguousMask(String),
    /// The entry string has an unrecognized shape (wrong number of `/`
    /// separators, empty components, etc.).
    MalformedEntry(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::InvalidAddress(s) => write!(f, "invalid IPv4 address: {s:?}"),
            PrefixError::InvalidLength(l) => {
                write!(f, "invalid prefix length: {l} (must be 0..=32)")
            }
            PrefixError::NonContiguousMask(s) => write!(f, "non-contiguous netmask: {s:?}"),
            PrefixError::MalformedEntry(s) => write!(f, "malformed prefix/netmask entry: {s:?}"),
        }
    }
}

impl Error for PrefixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        assert!(PrefixError::InvalidAddress("x".into())
            .to_string()
            .contains("x"));
        assert!(PrefixError::InvalidLength(33).to_string().contains("33"));
        assert!(PrefixError::NonContiguousMask("255.0.255.0".into())
            .to_string()
            .contains("255.0.255.0"));
        assert!(PrefixError::MalformedEntry("a/b/c".into())
            .to_string()
            .contains("a/b/c"));
    }
}
